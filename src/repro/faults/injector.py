"""Seedable fault injection for the simulated storage stack.

The injector is the single source of misfortune: the disk consults it
before serving every block read, the WAL consults it on every append,
and the chaos harness routes controller windows through it to simulate
stats blackouts.  All decisions come from one private
:class:`random.Random` seeded at construction, so a fault schedule is a
pure function of ``(seed, sequence of hook calls)`` — two runs of the
same workload see the identical fault sequence, which is what lets the
chaos harness assert byte-identical results against a clean run.

Fault types:

* **transient read errors** — the read attempt raises
  :class:`~repro.errors.TransientIOError`; the data is fine and a retry
  succeeds (unless it rolls a new fault).
* **permanent block corruption** — the target block's stored checksum is
  tampered via :meth:`~repro.lsm.sstable.SSTable.corrupt_block`; every
  subsequent read fails verification until the disk repairs it.
* **torn WAL appends** — the record's checksum is spoiled at append
  time, so crash-recovery replay treats it as the end of the log.
* **stats blackouts** — a contiguous span of controller windows has its
  statistics poisoned with non-finite values, exercising the
  controller's degraded mode.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigError, TransientIOError
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, Recorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stats import WindowStats
    from repro.lsm.block import BlockHandle
    from repro.lsm.sstable import SSTable


@dataclass
class FaultConfig:
    """Fault rates and schedule for one :class:`FaultInjector`.

    Rates are per-attempt probabilities in [0, 1].  ``blackout_start``
    (a window index) and ``blackout_len`` schedule a controller stats
    blackout; None disables it.
    """

    transient_read_rate: float = 0.0
    corruption_rate: float = 0.0
    torn_wal_rate: float = 0.0
    blackout_start: Optional[int] = None
    blackout_len: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_read_rate", "corruption_rate", "torn_wal_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate!r}")
        if self.blackout_len < 0:
            raise ConfigError("blackout_len must be >= 0")


@dataclass
class FaultStats:
    """Everything the injector did, for reports and assertions."""

    reads_seen: int = 0
    transient_injected: int = 0
    corruptions_injected: int = 0
    wal_appends_seen: int = 0
    torn_injected: int = 0
    blackouts_injected: int = 0

    @property
    def total_injected(self) -> int:
        """All faults of every kind."""
        return (
            self.transient_injected
            + self.corruptions_injected
            + self.torn_injected
            + self.blackouts_injected
        )


class FaultInjector:
    """Deterministic, seedable source of storage faults."""

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config or FaultConfig()
        self.stats = FaultStats()
        self._rng = Random(self.config.seed ^ 0xFA17)
        self.recorder: Recorder = NULL_RECORDER

    # -- disk hook -----------------------------------------------------------

    def before_block_read(self, handle: "BlockHandle", table: "SSTable") -> None:
        """Called by the disk before serving every block read attempt.

        May raise :class:`TransientIOError` (this attempt fails) or
        corrupt the target block in place (the disk's checksum
        verification then fails until the block is repaired).
        """
        self.stats.reads_seen += 1
        cfg = self.config
        if cfg.transient_read_rate and self._rng.random() < cfg.transient_read_rate:
            self.stats.transient_injected += 1
            recorder = self.recorder
            if recorder.enabled:
                recorder.inc(N.FAULT_TRANSIENT)
                recorder.event(
                    N.EV_FAULT_TRANSIENT, sst=handle.sst_id, block=handle.block_no
                )
            raise TransientIOError(f"injected transient fault reading {handle}")
        if cfg.corruption_rate and self._rng.random() < cfg.corruption_rate:
            if not table.is_block_corrupt(handle.block_no):
                table.corrupt_block(handle.block_no)
                self.stats.corruptions_injected += 1
                recorder = self.recorder
                if recorder.enabled:
                    recorder.inc(N.FAULT_CORRUPTION)
                    recorder.event(
                        N.EV_FAULT_CORRUPTION, sst=handle.sst_id, block=handle.block_no
                    )

    # -- WAL hook ------------------------------------------------------------

    def on_wal_append(self) -> bool:
        """Whether this append lands torn (checksum spoiled)."""
        self.stats.wal_appends_seen += 1
        cfg = self.config
        if cfg.torn_wal_rate and self._rng.random() < cfg.torn_wal_rate:
            self.stats.torn_injected += 1
            recorder = self.recorder
            if recorder.enabled:
                recorder.inc(N.FAULT_TORN_WAL)
                recorder.event(N.EV_FAULT_TORN_WAL)
            return True
        return False

    # -- controller hook -------------------------------------------------------

    def maybe_blackout(self, window: "WindowStats") -> "WindowStats":
        """Poison a window's stats if it falls in the blackout span.

        Models a stats-collector outage: the window arrives with
        non-finite counters, which the controller's degraded-mode guard
        must detect rather than feed into the RL update.
        """
        start = self.config.blackout_start
        if start is not None and start <= window.window_index < start + self.config.blackout_len:
            window.io_miss = float("nan")
            window.scan_length_sum = float("nan")
            window.range_occupancy = float("inf")
            self.stats.blackouts_injected += 1
            recorder = self.recorder
            if recorder.enabled:
                recorder.inc(N.FAULT_BLACKOUT)
                recorder.event(N.EV_FAULT_BLACKOUT, window=window.window_index)
        return window
