"""Seeded, bounded retry policy for fault-absorbing read paths.

Every retry loop in the simulator must satisfy two disciplines (lint
rule EXC002 enforces them statically):

* **bounded** — a retry loop without an attempt budget turns a
  persistent fault into a hang; the policy owns the budget and the
  caller re-raises when :meth:`RetryPolicy.should_retry` says no.
* **sim-clock charged** — a retry's backoff is *simulated* latency; it
  must be charged to the sim clock's accounting (never ``time.sleep``),
  so faulted runs cost latency the bench/serve clocks can see while the
  host never stalls.

Backoff is exponential with optional *seeded* jitter: a private
``random.Random`` makes the stall sequence a pure function of
``(seed, attempt sequence)``, so two same-seed runs reproduce identical
retry latency byte for byte.  ``jitter_frac=0`` (the default) reproduces
the historical deterministic ``backoff * 2**attempt`` schedule exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random

from repro.errors import ConfigError


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    Parameters
    ----------
    max_attempts:
        Retries allowed after the first try (0 disables retrying).
    backoff_us:
        Simulated stall charged for the first retry.
    multiplier:
        Growth factor between consecutive stalls (2.0 = doubling).
    jitter_frac:
        Fraction of each stall drawn as symmetric seeded jitter; a
        stall becomes ``base * (1 + U(-jitter_frac, +jitter_frac))``.
        0 keeps the schedule fully deterministic per attempt index.
    seed:
        Seed for the jitter stream (unused when ``jitter_frac`` is 0,
        but always seeded so enabling jitter never reshuffles other
        RNG consumers).
    """

    max_attempts: int = 4
    backoff_us: float = 50.0
    multiplier: float = 2.0
    jitter_frac: float = 0.0
    seed: int = 0
    _rng: Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ConfigError("max_attempts must be >= 0")
        if self.backoff_us < 0 or not math.isfinite(self.backoff_us):
            raise ConfigError("backoff_us must be finite and >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigError("jitter_frac must lie in [0, 1)")
        self._rng = Random(self.seed ^ 0x5E77)

    def should_retry(self, attempts_so_far: int) -> bool:
        """Whether another retry fits the budget after ``attempts_so_far``."""
        return attempts_so_far < self.max_attempts

    def stall_us(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (0-based).

        The caller charges this to its sim-clock accounting; the policy
        never sleeps.
        """
        base = self.backoff_us * self.multiplier**attempt
        if self.jitter_frac:
            base *= 1.0 + self.jitter_frac * (2.0 * self._rng.random() - 1.0)
        return base
