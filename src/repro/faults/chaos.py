"""Chaos harness: same workload, one clean engine, one faulted engine.

The resilience claim the harness checks is end-to-end: with transient
read faults, block corruption, crash/restart cycles and controller
stats blackouts injected, the engine must return **byte-identical**
query results to a fault-free run of the same seeded workload — faults
may only cost latency and I/O, never correctness.  A torn-WAL rate can
additionally be configured; torn tails legitimately lose acknowledged
writes at the next crash, so result divergence is then reported in
``wrong_reads`` and the caller decides what to assert.

Used by ``repro.cli chaos`` and ``benchmarks/test_chaos_resilience.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bench.harness import estimated_hit_rate, seed_database
from repro.bench.report import percentile
from repro.bench.strategies import build_engine
from repro.core.engine import KVEngine
from repro.faults.injector import FaultConfig, FaultInjector, FaultStats
from repro.lsm.options import LSMOptions
from repro.workloads.generator import Operation, WorkloadGenerator, WorkloadSpec
from repro.workloads.generator import balanced_workload


@dataclass
class ChaosReport:
    """Everything one chaos run observed, clean run vs faulted run."""

    ops: int = 0
    wrong_reads: int = 0
    faults: FaultStats = field(default_factory=FaultStats)
    read_retries: int = 0
    corruption_recoveries: int = 0
    crashes: int = 0
    wal_records_replayed: int = 0
    wal_records_lost: int = 0
    degraded_windows: int = 0
    degraded_activations: int = 0
    degraded_recoveries: int = 0
    clean_hit_rate: float = 0.0
    faulty_hit_rate: float = 0.0
    clean_sst_reads: int = 0
    faulty_sst_reads: int = 0
    retry_latency_us: float = 0.0
    retry_stall_p50_us: float = 0.0
    retry_stall_p99_us: float = 0.0

    @property
    def hit_rate_regression(self) -> float:
        """How much estimated hit rate the faults cost (positive = worse)."""
        return self.clean_hit_rate - self.faulty_hit_rate


def _apply_compared(engine: KVEngine, op: Operation):
    """Run one op; return its observable result (None for writes)."""
    if op.kind == "get":
        return engine.get(op.key)
    if op.kind == "scan":
        return tuple(engine.scan(op.key, op.length))
    if op.kind == "put":
        engine.put(op.key, op.value or "")
        return None
    if op.kind == "delete":
        engine.delete(op.key)
        return None
    raise ValueError(f"unknown operation kind {op.kind!r}")


def run_chaos(
    ops: int = 20_000,
    num_keys: int = 4_000,
    cache_kb: int = 256,
    strategy: str = "adcache",
    spec: Optional[WorkloadSpec] = None,
    options: Optional[LSMOptions] = None,
    transient_read_rate: float = 0.01,
    corruption_rate: float = 0.001,
    torn_wal_rate: float = 0.0,
    crash_every: int = 0,
    blackout_window: Optional[int] = None,
    blackout_len: int = 3,
    window_size: Optional[int] = None,
    seed: int = 0,
) -> ChaosReport:
    """Drive the same seeded workload through a clean and a faulted engine.

    ``crash_every > 0`` crashes and recovers the faulted engine every
    that many operations (the clean engine never crashes, so recovery
    correctness is checked against uninterrupted execution).
    ``blackout_window`` poisons ``blackout_len`` controller windows
    starting at that index, exercising degraded mode.
    """
    options = options or LSMOptions(memtable_entries=32, entries_per_sstable=64)
    spec = spec or balanced_workload(num_keys)
    cache_bytes = cache_kb * 1024

    clean_tree = seed_database(num_keys, options, seed=7)
    faulty_tree = seed_database(num_keys, LSMOptions(**vars(options)), seed=7)
    clean_engine = build_engine(strategy, clean_tree, cache_bytes, seed=seed)
    faulty_engine = build_engine(strategy, faulty_tree, cache_bytes, seed=seed)
    if window_size is not None:
        # Shorten the control cadence (both engines alike) so short chaos
        # runs still cross enough window boundaries to exercise the
        # controller and any scheduled blackout.
        clean_engine.window_size = window_size
        faulty_engine.window_size = window_size

    injector = FaultInjector(
        FaultConfig(
            transient_read_rate=transient_read_rate,
            corruption_rate=corruption_rate,
            torn_wal_rate=torn_wal_rate,
            blackout_start=blackout_window,
            blackout_len=blackout_len,
            seed=seed,
        )
    )
    faulty_tree.attach_fault_injector(injector)
    if blackout_window is not None and faulty_engine.on_window is not None:
        downstream = faulty_engine.on_window
        faulty_engine.on_window = lambda window: downstream(
            injector.maybe_blackout(window)
        )

    op_list: List[Operation] = list(WorkloadGenerator(spec, seed=seed + 1).ops(ops))
    report = ChaosReport(ops=len(op_list))
    for i, op in enumerate(op_list, start=1):
        clean_result = _apply_compared(clean_engine, op)
        faulty_result = _apply_compared(faulty_engine, op)
        if clean_result != faulty_result:
            report.wrong_reads += 1
        if crash_every and i % crash_every == 0:
            report.wal_records_replayed += faulty_engine.crash_and_recover()
            report.crashes += 1

    clean_engine.flush_window()
    faulty_engine.flush_window()

    report.faults = injector.stats
    report.read_retries = faulty_tree.read_retries_total
    report.corruption_recoveries = faulty_tree.corruption_recoveries_total
    report.retry_latency_us = faulty_tree.retry_latency_us_total
    report.retry_stall_p50_us = percentile(faulty_tree.retry_stalls_us, 0.50)
    report.retry_stall_p99_us = percentile(faulty_tree.retry_stalls_us, 0.99)
    report.wal_records_lost = faulty_tree.wal_records_lost_total
    report.clean_hit_rate = estimated_hit_rate(clean_engine)[0]
    report.faulty_hit_rate = estimated_hit_rate(faulty_engine)[0]
    report.clean_sst_reads = clean_tree.disk.block_reads_total
    report.faulty_sst_reads = faulty_tree.disk.block_reads_total
    controller = getattr(faulty_engine, "controller", None)
    if controller is not None:
        report.degraded_windows = controller.degraded_windows_total
        report.degraded_activations = controller.degraded_activations_total
        report.degraded_recoveries = controller.degraded_recoveries_total
    return report


def report_rows(report: ChaosReport) -> List[Tuple[str, str]]:
    """(metric, value) rows for tabular display of a chaos run."""
    return [
        ("operations", f"{report.ops:,}"),
        ("wrong reads", f"{report.wrong_reads}"),
        ("transient faults injected", f"{report.faults.transient_injected:,}"),
        ("corruptions injected", f"{report.faults.corruptions_injected:,}"),
        ("torn WAL appends", f"{report.faults.torn_injected:,}"),
        ("read retries", f"{report.read_retries:,}"),
        ("corruption recoveries", f"{report.corruption_recoveries:,}"),
        ("retry stall p50 (us)", f"{report.retry_stall_p50_us:,.0f}"),
        ("retry stall p99 (us)", f"{report.retry_stall_p99_us:,.0f}"),
        ("crashes", f"{report.crashes}"),
        ("WAL records replayed", f"{report.wal_records_replayed:,}"),
        ("WAL records lost (torn)", f"{report.wal_records_lost:,}"),
        ("degraded windows", f"{report.degraded_windows}"),
        ("degraded activations", f"{report.degraded_activations}"),
        ("degraded recoveries", f"{report.degraded_recoveries}"),
        ("hit rate (clean)", f"{report.clean_hit_rate:.3f}"),
        ("hit rate (faulted)", f"{report.faulty_hit_rate:.3f}"),
        ("hit-rate regression", f"{report.hit_rate_regression:+.3f}"),
        ("SST reads (clean)", f"{report.clean_sst_reads:,}"),
        ("SST reads (faulted)", f"{report.faulty_sst_reads:,}"),
    ]
