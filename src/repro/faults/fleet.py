"""Seeded fleet-level fault plans: whole-shard crashes for the simulator.

Block-level faults (:mod:`repro.faults.injector`) exercise a *single*
engine's resilience; the serving fleet needs failures one level up — a
shard process dying mid-run, taking its memtable and caches with it.  A
:class:`FleetFaultPlan` is the deterministic schedule of those deaths:
given a config and the shard count, it draws distinct victim shards and
sorted crash times from one seeded generator, so the same seed produces
the same fleet obituary byte for byte.

The plan is *pure data* — the serving simulator schedules each
:class:`ShardCrash` on its discrete-event loop and drives failover
(replica promotion via WAL replay) itself.  Recovery cost knobs live
here so the chaos CLI and tests share one vocabulary for how expensive
a failover is in simulated microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List

from repro.errors import ConfigError


@dataclass(frozen=True)
class ShardCrash:
    """One scheduled shard death: who dies and when (simulated us)."""

    shard_id: int
    at_us: float


@dataclass
class FleetFaultConfig:
    """Knobs for a seeded fleet fault plan.

    Attributes
    ----------
    crashes:
        How many distinct shards to kill (0 disables fleet faults).
        Must leave at least one shard standing.
    earliest_us / latest_us:
        Simulated-time window the crash times are drawn from
        (uniformly, then sorted).
    seed:
        Seed for the victim/time draws; independent of every other
        generator in the run.
    failover_detect_us:
        Simulated time between a crash and the router *noticing* it
        (health-check interval stand-in); charged before replay starts.
    replay_per_record_us:
        Simulated cost of replaying one shipped WAL record during
        replica promotion — failover time scales with the replication
        backlog, like a real log-structured store.
    """

    crashes: int = 1
    earliest_us: float = 10_000.0
    latest_us: float = 200_000.0
    seed: int = 0
    failover_detect_us: float = 2_000.0
    replay_per_record_us: float = 25.0

    def __post_init__(self) -> None:
        if self.crashes < 0:
            raise ConfigError("crashes must be >= 0")
        if self.earliest_us < 0:
            raise ConfigError("earliest_us must be >= 0")
        if self.latest_us < self.earliest_us:
            raise ConfigError("latest_us must be >= earliest_us")
        if self.failover_detect_us < 0:
            raise ConfigError("failover_detect_us must be >= 0")
        if self.replay_per_record_us < 0:
            raise ConfigError("replay_per_record_us must be >= 0")


class FleetFaultPlan:
    """Deterministic shard-crash schedule for one serving run."""

    __slots__ = ("config", "crashes")

    def __init__(self, config: FleetFaultConfig, num_shards: int) -> None:
        if config.crashes >= num_shards:
            raise ConfigError(
                f"cannot crash {config.crashes} of {num_shards} shards: "
                "at least one shard must survive"
            )
        self.config = config
        rng = Random(config.seed ^ 0xF1EE7)
        victims = sorted(rng.sample(range(num_shards), config.crashes))
        times = sorted(
            rng.uniform(config.earliest_us, config.latest_us)
            for _ in range(config.crashes)
        )
        # Pair sorted victims with sorted times: each shard dies at most
        # once and the schedule is a pure function of (seed, num_shards).
        self.crashes: List[ShardCrash] = [
            ShardCrash(shard_id, at_us)
            for shard_id, at_us in zip(victims, times)
        ]

    def __iter__(self):
        return iter(self.crashes)

    def __len__(self) -> int:
        return len(self.crashes)
