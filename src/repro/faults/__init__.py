"""Deterministic fault injection and chaos testing for the LSM + cache stack.

* :mod:`repro.faults.injector` — a seedable :class:`FaultInjector` that
  hooks into the simulated disk's read path and the WAL's append path to
  produce transient read errors, permanent block corruption, and torn
  log tails, plus controller stats blackouts.
* :mod:`repro.faults.chaos` — the chaos harness: run the same seeded
  workload against a fault-free and a fault-injected engine and verify
  the results are byte-identical while faults are absorbed.
"""

from repro.faults.chaos import ChaosReport, run_chaos
from repro.faults.injector import FaultConfig, FaultInjector, FaultStats

__all__ = [
    "ChaosReport",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "run_chaos",
]
