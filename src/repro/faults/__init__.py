"""Deterministic fault injection and chaos testing for the LSM + cache stack.

* :mod:`repro.faults.injector` — a seedable :class:`FaultInjector` that
  hooks into the simulated disk's read path and the WAL's append path to
  produce transient read errors, permanent block corruption, and torn
  log tails, plus controller stats blackouts.
* :mod:`repro.faults.retry` — the seeded, bounded :class:`RetryPolicy`
  every retry loop must use (lint rule EXC002).
* :mod:`repro.faults.fleet` — seeded fleet-level fault plans that crash
  whole shards mid-run for the serving simulator's failover path.
* :mod:`repro.faults.chaos` — the chaos harness: run the same seeded
  workload against a fault-free and a fault-injected engine and verify
  the results are byte-identical while faults are absorbed.

``chaos`` is re-exported lazily: it pulls in the bench harness (which
imports :mod:`repro.lsm.tree`), while the tree itself imports
:class:`RetryPolicy` from this package — eager re-export would cycle.
"""

from typing import Any

from repro.faults.fleet import FleetFaultConfig, FleetFaultPlan, ShardCrash
from repro.faults.injector import FaultConfig, FaultInjector, FaultStats
from repro.faults.retry import RetryPolicy

__all__ = [
    "ChaosReport",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FleetFaultConfig",
    "FleetFaultPlan",
    "RetryPolicy",
    "ShardCrash",
    "run_chaos",
]


def __getattr__(name: str) -> Any:
    if name in ("ChaosReport", "run_chaos"):
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
