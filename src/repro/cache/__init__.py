"""Cache substrate: eviction policies, sketches, and the LSM cache zoo.

Building blocks
---------------
* :mod:`repro.cache.base` — budgeted cache container + policy interface.
* :mod:`repro.cache.lru` / :mod:`lfu` / :mod:`clock` — classic policies.
* :mod:`repro.cache.arc` — Adaptive Replacement Cache (AC-Key heritage).
* :mod:`repro.cache.lecar` / :mod:`cacheus` — learning-based policies
  used as the paper's "naive RL eviction" baselines.
* :mod:`repro.cache.sketch` — decaying Count-Min sketch (TinyLFU-style).
* :mod:`repro.cache.admission` — frequency admission for point lookups
  and partial admission for scans (the paper's ``a``/``b`` policy).

LSM-facing caches
-----------------
* :mod:`repro.cache.block_cache` — RocksDB-style sharded block cache.
* :mod:`repro.cache.kv_cache` — point-lookup result cache (row cache).
* :mod:`repro.cache.range_cache` — result-based cache over a skip list
  with complete-interval tracking (Range Cache reimplementation).
"""

from repro.cache.base import BudgetedCache, CacheStats, EvictionPolicy
from repro.cache.block_cache import BlockCache
from repro.cache.kv_cache import KVCache
from repro.cache.range_cache import RangeCache

__all__ = [
    "BudgetedCache",
    "CacheStats",
    "EvictionPolicy",
    "BlockCache",
    "KVCache",
    "RangeCache",
]
