"""Admission control: frequency gating for points, partial for scans.

Section 3.4 of the paper.  Two independent mechanisms, both with
RL-tunable parameters:

* :class:`FrequencyAdmission` — on every point-lookup miss the key's
  count in a decaying Count-Min sketch is incremented; the key is
  admitted only when its *normalized* frequency (count / global sum of
  missed-key counts) reaches a threshold.  The threshold is the RL
  action; 0 admits everything non-pathological, higher values admit
  only the persistently hot tail.
* :class:`PartialScanAdmission` — a scan of length ``l`` is fully
  admitted when ``l <= a``; otherwise only ``round(b * (l - a))``
  entries are admitted per access.  Overlapping scans accumulate
  coverage across accesses, so ``b`` sets how many repetitions it takes
  for a hot range to become fully resident.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.sketch import CountMinSketch
from repro.errors import CacheError
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, Recorder


class FrequencyAdmission:
    """TinyLFU-style frequency filter for point-lookup results.

    Parameters
    ----------
    sketch:
        Count-Min sketch used for frequency estimates (owns decay).
    threshold:
        Normalized-frequency admission bar in [0, 1].  Adjusted at
        runtime by the RL controller via :meth:`set_threshold`.
    """

    def __init__(self, sketch: CountMinSketch, threshold: float = 0.0) -> None:
        self._sketch = sketch
        self._threshold = 0.0
        self.recorder: Recorder = NULL_RECORDER
        self.set_threshold(threshold)
        self.admitted_total = 0
        self.rejected_total = 0

    @property
    def threshold(self) -> float:
        """Current normalized-frequency bar."""
        return self._threshold

    def set_threshold(self, threshold: float) -> None:
        """Clamp and apply a new admission bar."""
        if threshold != threshold:  # NaN guard
            raise CacheError("threshold must not be NaN")
        clamped = min(1.0, max(0.0, threshold))
        if clamped != self._threshold and self.recorder.enabled:
            self.recorder.event(
                N.EV_ADMISSION_RETUNE,
                policy="frequency",
                threshold=clamped,
                previous=self._threshold,
            )
        self._threshold = clamped

    def observe_and_decide(self, key: str) -> bool:  # hot-path
        """Count one miss of ``key`` and decide whether to admit it.

        Always admits when the bar is zero (but still counts, keeping
        the sketch warm for when the controller raises the bar).  The
        estimate-then-increment pair runs as one sketch pass — the
        sketch hashes the key's row columns once (and memoizes them),
        so a miss never pays the row hashes twice.
        """
        count = self._sketch.increment(key)
        total = max(1, self._sketch.total)
        admit = (count / total) >= self._threshold
        if admit:
            self.admitted_total += 1
        else:
            self.rejected_total += 1
        return admit

    def observe_and_decide_batch(self, keys: Sequence[str]) -> List[bool]:  # hot-path
        """Per-key :meth:`observe_and_decide` for a whole miss batch.

        The row hashes for every key are computed in one vectorized
        pass (:meth:`~repro.cache.sketch.CountMinSketch.columns_batch`,
        which warms the sketch's column memo); the increments and
        decisions then replay in arrival order, because each decision
        divides by the sketch total *as of that key's update* and a
        mid-batch decay must halve the counters before later keys are
        judged.  Decisions and admitted/rejected counters are
        bit-identical to a scalar loop over ``keys``.
        """
        sketch = self._sketch
        sketch.columns_batch(keys)
        threshold = self._threshold
        increment = sketch.increment
        out: List[bool] = []
        admitted_count = 0
        for key in keys:
            count = increment(key)
            total = max(1, sketch.total)
            admit = (count / total) >= threshold
            if admit:
                admitted_count += 1
            out.append(admit)
        self.admitted_total += admitted_count
        self.rejected_total += len(keys) - admitted_count
        return out

    @property
    def sketch(self) -> CountMinSketch:
        """The underlying frequency sketch."""
        return self._sketch


class PartialScanAdmission:
    """The paper's ``a``/``b`` partial caching policy for scan results.

    Parameters
    ----------
    a:
        Full-admission length threshold (initialised to the workload's
        typical short-scan length; learned thereafter).
    b:
        Partial-admission aggressiveness in [0, 1].
    """

    def __init__(self, a: float = 16.0, b: float = 0.5) -> None:
        self._a = 0.0
        self._b = 0.0
        self.recorder: Recorder = NULL_RECORDER
        self.set_params(a, b)

    @property
    def a(self) -> float:
        """Full-admission length threshold."""
        return self._a

    @property
    def b(self) -> float:
        """Partial-admission slope."""
        return self._b

    def set_params(self, a: float, b: float) -> None:
        """Clamp and apply new (a, b)."""
        if a != a or b != b:  # NaN guard
            raise CacheError("a and b must not be NaN")
        new_a = max(0.0, a)
        new_b = min(1.0, max(0.0, b))
        if (new_a, new_b) != (self._a, self._b) and self.recorder.enabled:
            self.recorder.event(
                N.EV_ADMISSION_RETUNE, policy="partial_scan", a=new_a, b=new_b
            )
        self._a = new_a
        self._b = new_b

    def admit_count(self, scan_length: int) -> int:
        """How many of a ``scan_length`` result's entries to admit.

        ``l <= a`` admits everything; longer scans admit
        ``round(b * (l - a))`` entries, capped at ``l``.
        """
        if scan_length <= 0:
            return 0
        if scan_length <= self._a:
            return scan_length
        return min(scan_length, int(round(self._b * (scan_length - self._a))))

    def effective_threshold(self, scan_length: int) -> float:
        """Diagnostic: per-access admitted length for a given scan length.

        This is the "scan threshold" series plotted in the paper's
        Figure 10 (third panel), which stabilizes near the workload's
        scan length when the policy converges to full admission.
        """
        return float(self.admit_count(scan_length))
