"""Complete-interval bookkeeping for the Range Cache.

A *complete interval* ``[start, end]`` (inclusive string bounds) records
that every live database key within the bounds is currently resident in
the cache, so a range scan beginning inside it can be answered without
touching the LSM-tree.  Inserting a scan result adds (and merges)
intervals; evicting a cached key splits the interval around it using
the evicted key's cached neighbours as the new bounds.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.errors import InvariantError

Interval = Tuple[str, str]  # inclusive (start, end), start <= end


class IntervalSet:
    """Sorted, disjoint set of inclusive string-key intervals."""

    def __init__(self) -> None:
        self._starts: List[str] = []
        self._ends: List[str] = []

    def __len__(self) -> int:
        return len(self._starts)

    def intervals(self) -> List[Interval]:
        """All intervals in order."""
        return list(zip(self._starts, self._ends))

    def clear(self) -> None:
        """Drop all intervals."""
        self._starts.clear()
        self._ends.clear()

    # -- queries ----------------------------------------------------------------

    def covering(self, point: str) -> Optional[Interval]:
        """The interval containing ``point``, or None."""
        idx = bisect.bisect_right(self._starts, point) - 1
        if idx >= 0 and self._ends[idx] >= point:
            return self._starts[idx], self._ends[idx]
        return None

    def index_covering(self, point: str) -> Optional[int]:
        """Index of the interval containing ``point``, or None."""
        idx = bisect.bisect_right(self._starts, point) - 1
        if idx >= 0 and self._ends[idx] >= point:
            return idx
        return None

    # -- mutation ----------------------------------------------------------------

    def add(self, start: str, end: str) -> None:  # hot-path
        """Insert ``[start, end]``, merging any overlapping intervals.

        The absorbed span is replaced with one slice assignment — a
        single memmove — instead of a ``del`` + ``insert`` pair, each
        of which would shift the list tail separately.
        """
        if start > end:
            raise ValueError(f"interval start {start!r} > end {end!r}")
        # Find the span of existing intervals that overlap [start, end].
        lo = bisect.bisect_left(self._ends, start)
        hi = bisect.bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = (start,)
        self._ends[lo:hi] = (end,)

    def split_around(
        self,
        key: str,
        left_neighbor: Optional[str],
        right_neighbor: Optional[str],
    ) -> bool:
        """Shrink/split the interval containing evicted ``key``.

        ``left_neighbor``/``right_neighbor`` are the evicted key's
        still-resident cache neighbours (or None at the extremes).  The
        interval ``[a, b]`` containing ``key`` becomes up to two pieces:
        ``[a, left_neighbor]`` and ``[right_neighbor, b]``, each kept
        only when its bound still lies inside the original interval.

        Returns True when an interval was modified.
        """
        idx = self.index_covering(key)
        if idx is None:
            return False
        a, b = self._starts[idx], self._ends[idx]
        new_starts: List[str] = []
        new_ends: List[str] = []
        if left_neighbor is not None and a <= left_neighbor:
            new_starts.append(a)
            new_ends.append(left_neighbor)
        if right_neighbor is not None and right_neighbor <= b:
            new_starts.append(right_neighbor)
            new_ends.append(b)
        # One splice per list: replace the covering interval with its
        # surviving pieces instead of del-then-insert tail shifts.
        self._starts[idx : idx + 1] = new_starts
        self._ends[idx : idx + 1] = new_ends
        return True

    def total_span_count(self) -> int:
        """Number of tracked intervals (diagnostics)."""
        return len(self._starts)

    def check_invariants(self) -> None:
        """Intervals must be well-formed, sorted, and disjoint."""
        if len(self._starts) != len(self._ends):
            raise InvariantError(
                f"IntervalSet: {len(self._starts)} starts but "
                f"{len(self._ends)} ends"
            )
        for i, (start, end) in enumerate(zip(self._starts, self._ends)):
            if start > end:
                raise InvariantError(
                    f"IntervalSet: interval {i} inverted: [{start!r}, {end!r}]"
                )
            if i > 0 and self._ends[i - 1] >= start:
                raise InvariantError(
                    f"IntervalSet: intervals {i - 1} and {i} overlap or touch "
                    f"out of order: end {self._ends[i - 1]!r} >= start {start!r}"
                )
