"""RocksDB-style sharded block cache.

Caches :class:`~repro.lsm.block.DataBlock` objects keyed by
:class:`~repro.lsm.block.BlockHandle` ``(sst_id, block_no)``.  Because
handles embed the SSTable id, compaction output never aliases old
entries — cached blocks of compacted-away files simply stop hitting and
age out, reproducing the invalidation behaviour that motivates the
paper.

The cache is sharded by handle hash with a lock per shard, like
RocksDB's ``LRUCache``; an optional admission hook lets AdCache limit
how many blocks of one scan are admitted (the paper notes its partial
admission "can also be applied to the block cache").
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.cache.base import BudgetedCache, CacheBase, CacheStats, EvictionPolicy
from repro.cache.lru import LRUPolicy
from repro.errors import CacheError, InvariantError
from repro.lsm.block import BlockHandle, DataBlock
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, Recorder

BlockFetch = Callable[[BlockHandle], DataBlock]
#: Admission hook: called with the missed handle; False rejects the fill.
AdmissionHook = Callable[[BlockHandle], bool]
PolicyFactory = Callable[[], EvictionPolicy[BlockHandle]]


class BlockCache(CacheBase):
    """Sharded, byte-budgeted cache of data blocks.

    Parameters
    ----------
    budget_bytes:
        Total capacity across shards.
    block_size:
        Charge per cached block (the paper's 4 KB).
    backing_fetch:
        Where misses are served from (normally ``disk.read_block``).
    num_shards:
        Shard count; 1 gives a single lock-free-path cache.
    policy_factory:
        Builds one eviction policy per shard (default LRU).
    """

    def __init__(
        self,
        budget_bytes: int,
        block_size: int,
        backing_fetch: BlockFetch,
        num_shards: int = 1,
        policy_factory: Optional[PolicyFactory] = None,
    ) -> None:
        if num_shards <= 0:
            raise CacheError("num_shards must be positive")
        self.block_size = block_size
        self._backing_fetch = backing_fetch
        self._num_shards = num_shards
        factory = policy_factory or LRUPolicy
        charge = lambda _key, _value: block_size  # noqa: E731 - tiny closure
        self._shards: List[BudgetedCache[BlockHandle, DataBlock]] = [
            BudgetedCache(budget_bytes // num_shards, factory(), charge)
            for _ in range(num_shards)
        ]
        # Give any remainder to shard 0 so budgets sum exactly.
        self._shards[0].resize(
            budget_bytes - (budget_bytes // num_shards) * (num_shards - 1)
        )
        self._locks = [threading.Lock() for _ in range(num_shards)]
        self.admission_hook: Optional[AdmissionHook] = None
        self.recorder: Recorder = NULL_RECORDER

    def _shard_of(self, handle: BlockHandle) -> int:
        return hash(handle) % self._num_shards

    def set_backing_fetch(self, fetch: BlockFetch) -> None:
        """Rewire where misses are served from (e.g. a shared L2 tier)."""
        self._backing_fetch = fetch

    def set_eviction_listener(
        self, listener: Optional[Callable[[BlockHandle, DataBlock], None]]
    ) -> None:
        """Observe every capacity eviction (the L2 demotion feed)."""
        for shard in self._shards:
            shard.on_evict = listener

    # -- the read path hook ------------------------------------------------------

    def fetch_through(self, handle: BlockHandle) -> DataBlock:  # hot-path
        """Serve a block read: cache hit, or backing fetch + admission.

        This is what gets installed as the LSM tree's ``block_fetch``.
        """
        idx = hash(handle) % self._num_shards
        shard = self._shards[idx]
        lock = self._locks[idx]
        with lock:
            block = shard.get(handle)
        if block is not None:
            return block
        block = self._backing_fetch(handle)
        hook = self.admission_hook
        if hook is None or hook(handle):
            with lock:
                shard.put(handle, block)
            if self._sanitizer is not None:
                self._sanitizer.after_mutation(self)
        else:
            shard.stats.rejections += 1
            if self.recorder.enabled:
                self.recorder.event(
                    N.EV_CACHE_REJECT,
                    cache="block",
                    sst=handle.sst_id,
                    block=handle.block_no,
                )
        return block

    def get(self, handle: BlockHandle) -> Optional[DataBlock]:
        """Probe without filling on miss."""
        idx = self._shard_of(handle)
        with self._locks[idx]:
            return self._shards[idx].get(handle)

    def put(self, handle: BlockHandle, block: DataBlock) -> bool:
        """Directly insert a block (prefetch-style fill)."""
        idx = self._shard_of(handle)
        with self._locks[idx]:
            admitted = self._shards[idx].put(handle, block)
        self._after_mutation()
        return admitted

    def __contains__(self, handle: BlockHandle) -> bool:
        idx = self._shard_of(handle)
        return handle in self._shards[idx]

    # -- capacity ------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """Total capacity across shards."""
        return sum(s.budget_bytes for s in self._shards)

    @property
    def used_bytes(self) -> int:
        """Total bytes charged across shards."""
        return sum(s.used_bytes for s in self._shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def resize(self, budget_bytes: int) -> int:
        """Repartition a new total budget across shards, evicting to fit;
        returns the evictions the resize forced."""
        per_shard = budget_bytes // self._num_shards
        remainder = budget_bytes - per_shard * (self._num_shards - 1)
        evicted = 0
        for i, shard in enumerate(self._shards):
            with self._locks[i]:
                evicted += shard.resize(remainder if i == 0 else per_shard)
        self._after_mutation()
        return evicted

    def clear(self) -> None:
        """Invalidate every cached block (e.g. after a crash/restart)."""
        for i, shard in enumerate(self._shards):
            with self._locks[i]:
                shard.clear()

    def purge_sst(self, sst_id: int) -> int:
        """Actively drop all cached blocks of one SSTable (optional mode).

        RocksDB leaves dead blocks to age out; this exists to quantify
        that choice in ablations.  Returns blocks dropped.
        """
        dropped = 0
        for i, shard in enumerate(self._shards):
            with self._locks[i]:
                dead = [h for h in shard.keys() if h.sst_id == sst_id]
                for handle in dead:
                    shard.remove(handle)
                    dropped += 1
        return dropped

    @property
    def stats(self) -> CacheStats:
        """Aggregated stats across shards."""
        total = CacheStats()
        for shard in self._shards:
            s = shard.stats
            total.hits += s.hits
            total.misses += s.misses
            total.insertions += s.insertions
            total.evictions += s.evictions
            total.rejections += s.rejections
            total.invalidations += s.invalidations
        return total

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self) -> None:
        """Per-shard accounting plus handle-to-shard routing consistency."""
        if len(self._shards) != self._num_shards or len(self._locks) != self._num_shards:
            raise InvariantError(
                f"BlockCache shard bookkeeping drift: {len(self._shards)} "
                f"shards / {len(self._locks)} locks for num_shards "
                f"{self._num_shards}"
            )
        for idx, shard in enumerate(self._shards):
            with self._locks[idx]:
                shard.check_invariants()
                for handle in shard.keys():
                    owner = self._shard_of(handle)
                    if owner != idx:
                        raise InvariantError(
                            f"BlockCache misrouted entry: handle {handle!r} "
                            f"lives in shard {idx} but hashes to shard {owner}"
                        )
