"""Fleet-shared second cache tier with ghost-directed admission.

The serving fleet's per-shard block/range caches (L1) are partitioned:
a byte granted to one shard is invisible to every other, so a skewed
tenant can thrash its own shard's L1 while the rest of the fleet holds
cold bytes.  :class:`Tier2Cache` is a single shared tier between every
shard's L1 and the simulated disk — slower than an L1 hit (the sim
clock charges a configurable fetch latency), far cheaper than a disk
read — that turns one shard's evicted-but-hot blocks into fleet-wide
capacity, the motivation LSbM-tree (arXiv:1606.02015) gives for a
dedicated second buffer under compaction churn.

Structure is ARC-flavoured (Megiddo & Modha, FAST'03): resident blocks
live in a recency list T1 or a frequency list T2; two
:class:`~repro.cache.ghost.GhostList`\\ s B1/B2 remember recent
evictions and steer the adaptive recency target ``p``.  Admission is
*filtered*: an L1 victim enters only with proven reuse — a ghost hit
(the block was here before and was re-demanded) or a decaying
Count-Min sketch count of at least two across the fleet (the sketch
observes every L2 probe miss).  Everything else is rejected, which is
what keeps one scan-heavy shard from flushing the shared tier.

Keys are ``(shard_id, BlockHandle)``: each serving shard owns its own
simulated disk, so raw handles collide across shards and must be
namespaced.  When a shard's engine is replaced (replica promotion),
:meth:`tier2_drop_shard` purges its namespace — the new engine's
SSTable ids would otherwise alias the dead primary's cached blocks.

Determinism and ownership: the cache draws no randomness (the sketch
is seeded) and every mutation happens through the ``tier2_*`` methods,
which only the owning serve-side coordinator
(:class:`repro.serve.tier2.Tier2Coordinator`) may call from inside the
event loop — lint rule OWN004 enforces the call-site restriction
program-wide.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.cache.base import CacheBase
from repro.cache.ghost import GhostList
from repro.cache.sketch import CountMinSketch
from repro.errors import CacheError, InvariantError
from repro.lsm.block import BlockHandle, DataBlock

#: One entry's key: the owning serve shard plus its block handle.
Tier2Key = Tuple[int, BlockHandle]


class Tier2Cache(CacheBase):
    """Shared L2 block cache: ARC ghosts + double-hit admission.

    Parameters
    ----------
    budget_bytes:
        Shared capacity across the whole fleet.
    block_size:
        Charge per cached block (one LSM data block).
    sketch_seed:
        Salt for the admission sketch's row hashes.
    ghost_capacity:
        Keys each ghost list remembers; defaults to the resident
        capacity in blocks (the classic ARC bound).
    """

    def __init__(
        self,
        budget_bytes: int,
        block_size: int,
        sketch_seed: int = 0,
        ghost_capacity: Optional[int] = None,
    ) -> None:
        if budget_bytes < 0:
            raise CacheError("budget_bytes must be >= 0")
        if block_size <= 0:
            raise CacheError("block_size must be positive")
        self.block_size = block_size
        self._budget = budget_bytes
        capacity = max(1, budget_bytes // block_size)
        self._capacity = capacity
        self._p = 0.0  # adaptive target size of T1, in blocks
        self._t1: "OrderedDict[Tier2Key, DataBlock]" = OrderedDict()
        self._t2: "OrderedDict[Tier2Key, DataBlock]" = OrderedDict()
        ghosts = ghost_capacity if ghost_capacity is not None else capacity
        self._b1: GhostList[Tier2Key] = GhostList(max(1, ghosts))
        self._b2: GhostList[Tier2Key] = GhostList(max(1, ghosts))
        self._sketch = CountMinSketch(
            width=2048, depth=4, saturation=16, seed=sketch_seed
        )
        # Fleet-visible outcome counters (single writer: the serve
        # coordinator mutates, everyone else reads).
        self.hits = 0
        self.misses = 0
        self.ghost_hits_recency = 0  # B1 hits at admission
        self.ghost_hits_frequency = 0  # B2 hits at admission
        self.demotions = 0  # L1 victims offered
        self.admits = 0
        self.rejects = 0
        self.evictions = 0
        self.invalidations = 0

    # -- capacity ---------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """Current shared capacity in bytes."""
        return self._budget

    @property
    def used_bytes(self) -> int:
        """Bytes charged by resident blocks."""
        return (len(self._t1) + len(self._t2)) * self.block_size

    @property
    def ghost_hits(self) -> int:
        """Total admission-time ghost hits (recency + frequency)."""
        return self.ghost_hits_recency + self.ghost_hits_frequency

    @property
    def reuse_signal(self) -> int:
        """Monotone evidence the shared tier is earning its bytes.

        Hits are realised savings; ghost hits are savings a larger L2
        would have realised.  The budget arbiter reads the deltas of
        this signal to learn the fleet L1/L2 split.
        """
        return self.hits + self.ghost_hits_recency + self.ghost_hits_frequency

    # -- reads ------------------------------------------------------------

    @staticmethod
    def _sketch_key(key: Tier2Key) -> str:
        shard_id, handle = key
        return f"{shard_id}:{handle.sst_id}:{handle.block_no}"

    def tier2_probe(self, key: Tier2Key) -> Optional[DataBlock]:  # hot-path
        """Serve one L1-miss lookup; observes demand for admission.

        A T1 hit promotes the block to T2 (its second touch proves
        reuse); a T2 hit refreshes recency.  A miss feeds the sketch —
        the fleet-wide demand count the double-hit filter consults when
        this block is later demoted out of some shard's L1.
        """
        block = self._t1.pop(key, None)
        if block is not None:
            self._t2[key] = block
            self.hits += 1
            return block
        block = self._t2.get(key)
        if block is not None:
            self._t2.move_to_end(key)
            self.hits += 1
            return block
        self.misses += 1
        self._sketch.increment(self._sketch_key(key))
        return None

    # -- admission (L1 demotion) -------------------------------------------

    def tier2_offer(self, key: Tier2Key, block: DataBlock) -> bool:
        """Offer an L1 victim; admits only blocks seen twice fleet-wide.

        Admission evidence, in priority order:

        * **B1 ghost hit** — the block was evicted from L2's recency
          side and demanded again: grow ``p`` and seat it in T2;
        * **B2 ghost hit** — evicted from the frequency side and back:
          shrink ``p``, seat in T2;
        * **sketch count >= 2** — at least two L2 misses for this block
          across the fleet: seat in T1 (first residency, unproven).

        Anything else is rejected — a single cold read does not earn
        shared bytes.  Returns whether the block was admitted.
        """
        self.demotions += 1
        if self.block_size > self._budget:
            self.rejects += 1
            return False
        if key in self._t1 or key in self._t2:
            # Already resident (another shard re-fetched it first or a
            # probe raced a demotion through the loop); refresh only.
            self.rejects += 1
            return False
        if key in self._b1:
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(float(self._capacity), self._p + delta)
            self._b1.discard(key)
            self.ghost_hits_recency += 1
            self._t2[key] = block
        elif key in self._b2:
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - delta)
            self._b2.discard(key)
            self.ghost_hits_frequency += 1
            self._t2[key] = block
        elif self._sketch.estimate(self._sketch_key(key)) >= 2:
            self._t1[key] = block
        else:
            self.rejects += 1
            return False
        self.admits += 1
        self._evict_to_fit()
        self._after_mutation()
        return True

    def _evict_to_fit(self) -> int:
        """REPLACE: evict T1 past target ``p`` (else T2) into ghosts."""
        evicted = 0
        while self.used_bytes > self._budget and (self._t1 or self._t2):
            if self._t1 and (len(self._t1) > self._p or not self._t2):
                victim, _ = self._t1.popitem(last=False)
                self._b1.record(victim)
            else:
                victim, _ = self._t2.popitem(last=False)
                self._b2.record(victim)
            self.evictions += 1
            evicted += 1
        return evicted

    # -- maintenance -------------------------------------------------------

    def tier2_resize(self, budget_bytes: int) -> int:
        """Rebound the shared budget; returns evictions forced."""
        if budget_bytes < 0:
            raise CacheError("budget_bytes must be >= 0")
        self._budget = budget_bytes
        self._capacity = max(1, budget_bytes // self.block_size)
        self._p = min(self._p, float(self._capacity))
        evicted = self._evict_to_fit()
        self._after_mutation()
        return evicted

    def tier2_drop_shard(self, shard_id: int) -> int:
        """Purge one shard's namespace (its engine was replaced).

        A promoted replica allocates SSTable ids from its own simulated
        disk, so the dead primary's cached blocks would alias fresh
        handles with stale bytes.  Ghosts and sketch history go too:
        the signal they encode belongs to the dead namespace.
        """
        dropped = 0
        for resident in (self._t1, self._t2):
            stale = [key for key in resident if key[0] == shard_id]
            for key in stale:
                del resident[key]
                dropped += 1
        for ghost in (self._b1, self._b2):
            for key in [k for k in ghost if k[0] == shard_id]:
                ghost.discard(key)
        self.invalidations += dropped
        self._after_mutation()
        return dropped

    def tier2_clear(self) -> None:
        """Drop every resident block and all history."""
        self.invalidations += len(self._t1) + len(self._t2)
        self._t1.clear()
        self._t2.clear()
        for ghost in (self._b1, self._b2):
            for key in list(ghost):
                ghost.discard(key)
        self._after_mutation()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: Tier2Key) -> bool:
        return key in self._t1 or key in self._t2

    # -- sanitizer protocol -------------------------------------------------

    def check_invariants(self) -> None:
        """Budget conservation, list disjointness, ghost bounds, p range."""
        if self.used_bytes > self._budget:
            raise InvariantError(
                f"Tier2Cache over budget at rest: used_bytes "
                f"{self.used_bytes} > budget_bytes {self._budget}"
            )
        lists = {
            "T1": self._t1.keys(),
            "T2": self._t2.keys(),
            "B1": self._b1.keys(),
            "B2": self._b2.keys(),
        }
        names = list(lists)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                overlap = lists[a] & lists[b]
                if overlap:
                    raise InvariantError(
                        f"Tier2Cache: {a} and {b} share keys "
                        f"{sorted(map(repr, overlap))[:3]}"
                    )
        self._b1.check_invariants()
        self._b2.check_invariants()
        if not 0.0 <= self._p <= float(self._capacity):
            raise InvariantError(
                f"Tier2Cache adaptive target p={self._p} outside "
                f"[0, {self._capacity}]"
            )
        if self.admits + self.rejects != self.demotions:
            raise InvariantError(
                f"Tier2Cache admission accounting drift: {self.admits} "
                f"admits + {self.rejects} rejects != {self.demotions} offers"
            )
