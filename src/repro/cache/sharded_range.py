"""Range-partitioned sharded Range Cache (paper Section 4.4).

"We implemented a sharded range cache architecture ... the database key
space is partitioned into multiple shards, each guarded by its own lock
to manage concurrent access."

Hash sharding (as the block cache uses) would scatter a scan's adjacent
keys across shards, so the range cache shards by *key range*: shard
boundaries split the key space, each shard owns an independent
:class:`~repro.cache.range_cache.RangeCache` (with its own lock), and a
scan is served by the shard owning its start key.  Scans that would
cross a shard boundary fall through to the LSM-tree (boundaries are
chosen so this is rare when the key space is known).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence

from repro import sanitize
from repro.cache.base import CacheBase, CacheStats, EvictionPolicy
from repro.cache.range_cache import Entry, RangeCache
from repro.errors import CacheError, InvariantError

PolicyFactory = Callable[[], Optional[EvictionPolicy[str]]]


class ShardedRangeCache(CacheBase):
    """Key-range-partitioned Range Cache with per-shard budgets.

    Parameters
    ----------
    budget_bytes:
        Total budget, split evenly across shards.
    boundaries:
        Sorted split keys; ``len(boundaries) + 1`` shards are created.
        Shard ``i`` owns keys in ``[boundaries[i-1], boundaries[i])``.
    entry_charge:
        Logical bytes per entry.
    policy_factory:
        Builds each shard's eviction policy (None -> per-shard LRU).
    seed:
        Base seed for the shards' skip lists.
    """

    def __init__(
        self,
        budget_bytes: int,
        boundaries: Sequence[str],
        entry_charge: int = 1024,
        policy_factory: Optional[PolicyFactory] = None,
        seed: int = 0,
    ) -> None:
        if budget_bytes < 0:
            raise CacheError("budget_bytes must be >= 0")
        self._boundaries: List[str] = list(boundaries)
        if self._boundaries != sorted(set(self._boundaries)):
            raise CacheError("boundaries must be sorted and unique")
        num_shards = len(self._boundaries) + 1
        factory = policy_factory or (lambda: None)
        per_shard = budget_bytes // num_shards
        remainder = budget_bytes - per_shard * (num_shards - 1)
        self._shards: List[RangeCache] = [
            RangeCache(
                remainder if i == 0 else per_shard,
                entry_charge=entry_charge,
                policy=factory(),
                seed=seed + i,
            )
            for i in range(num_shards)
        ]
        self.entry_charge = entry_charge
        self.cross_shard_misses = 0

    # -- routing ----------------------------------------------------------------

    def shard_index(self, key: str) -> int:
        """Which shard owns ``key``."""
        return bisect.bisect_right(self._boundaries, key)

    def _shard(self, key: str) -> RangeCache:
        return self._shards[self.shard_index(key)]

    def _upper_bound(self, shard_idx: int) -> Optional[str]:
        if shard_idx < len(self._boundaries):
            return self._boundaries[shard_idx]
        return None

    @property
    def num_shards(self) -> int:
        """Number of key-range partitions."""
        return len(self._shards)

    def shards(self) -> List[RangeCache]:
        """The underlying per-range caches (diagnostics/tests)."""
        return list(self._shards)

    # -- cache interface (mirrors RangeCache) ----------------------------------

    def get_point(self, key: str) -> Optional[str]:
        """Point lookup routed to the owning shard."""
        return self._shard(key).get_point(key)

    def insert_point(self, key: str, value: str) -> bool:
        """Point-result admission routed to the owning shard."""
        return self._shard(key).insert_point(key, value)

    def insert_points(self, pairs: List[Entry]) -> int:
        """Batch point admission: the batch is split by owning shard
        (arrival order preserved within each group) and each shard
        splices its group in one sorted pass — see
        :meth:`RangeCache.insert_points`.  A batch of one routes
        through the owning shard's scalar :meth:`insert_point` path."""
        if len(pairs) == 1:
            key, value = pairs[0]
            return 1 if self._shard(key).insert_point(key, value) else 0
        groups: Dict[int, List[Entry]] = {}
        shard_index = self.shard_index
        for pair in pairs:
            groups.setdefault(shard_index(pair[0]), []).append(pair)
        shards = self._shards
        return sum(
            shards[idx].insert_points(group) for idx, group in groups.items()
        )

    def contains(self, key: str) -> bool:
        """Residency probe."""
        return self._shard(key).contains(key)

    def get_range(self, start: str, length: int) -> Optional[List[Entry]]:
        """Serve a scan if it stays within the owning shard.

        A hit whose entries would cross the shard's upper boundary is
        treated as a miss (and counted), since the neighbouring shard's
        completeness cannot be combined lock-free.
        """
        idx = self.shard_index(start)
        result = self._shards[idx].get_range(start, length)
        if result is None:
            return None
        bound = self._upper_bound(idx)
        if bound is not None and result[-1][0] >= bound:
            self.cross_shard_misses += 1
            return None
        return result

    def insert_range(
        self, start: str, entries: List[Entry], admit_count: Optional[int] = None
    ) -> int:
        """Admit the prefix of a scan result that fits the owning shard."""
        idx = self.shard_index(start)
        bound = self._upper_bound(idx)
        if bound is not None:
            entries = [e for e in entries if e[0] < bound]
        if not entries:
            return 0
        return self._shards[idx].insert_range(start, entries, admit_count)

    def on_write(self, key: str, value: str) -> None:
        """Write-coherence hook."""
        self._shard(key).on_write(key, value)

    def on_delete(self, key: str) -> None:
        """Delete-coherence hook."""
        self._shard(key).on_delete(key)

    def clear(self) -> None:
        """Drop every shard's entries and intervals."""
        for shard in self._shards:
            shard.clear()

    # -- capacity ----------------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """Total capacity across shards."""
        return sum(s.budget_bytes for s in self._shards)

    @property
    def used_bytes(self) -> int:
        """Total charged bytes across shards."""
        return sum(s.used_bytes for s in self._shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def resize(self, budget_bytes: int) -> int:
        """Re-split a new total budget evenly; returns evictions made."""
        num = self.num_shards
        per_shard = budget_bytes // num
        remainder = budget_bytes - per_shard * (num - 1)
        evicted = 0
        for i, shard in enumerate(self._shards):
            evicted += shard.resize(remainder if i == 0 else per_shard)
        return evicted

    @property
    def stats(self) -> CacheStats:
        """Aggregated hit/miss stats across shards."""
        total = CacheStats()
        for shard in self._shards:
            s = shard.stats
            total.hits += s.hits
            total.misses += s.misses
            total.insertions += s.insertions
            total.evictions += s.evictions
            total.rejections += s.rejections
            total.invalidations += s.invalidations
        return total

    # -- sanitizer protocol -----------------------------------------------------

    def enable_sanitizer(
        self, period: int = sanitize.DEFAULT_PERIOD, seed: int = 0
    ) -> None:
        """Enable per-shard sanitizers (mutations bypass this facade)."""
        super().enable_sanitizer(period=period, seed=seed)
        for i, shard in enumerate(self._shards):
            shard.enable_sanitizer(period=period, seed=seed + i)

    def check_invariants(self) -> None:
        """Per-shard health plus every resident key inside its shard's range."""
        if len(self._shards) != len(self._boundaries) + 1:
            raise InvariantError(
                f"ShardedRangeCache shard bookkeeping drift: "
                f"{len(self._shards)} shards for {len(self._boundaries)} "
                f"boundaries"
            )
        for idx, shard in enumerate(self._shards):
            shard.check_invariants()
            lower = self._boundaries[idx - 1] if idx > 0 else None
            upper = self._upper_bound(idx)
            for key in shard.resident_keys():
                if (lower is not None and key < lower) or (
                    upper is not None and key >= upper
                ):
                    raise InvariantError(
                        f"ShardedRangeCache misrouted entry: key {key!r} "
                        f"lives in shard {idx} but its range is "
                        f"[{lower!r}, {upper!r})"
                    )


def even_boundaries(num_keys: int, num_shards: int, key_of) -> List[str]:
    """Evenly spaced shard boundaries for a known integer key space."""
    if num_shards <= 0:
        raise CacheError("num_shards must be positive")
    step = num_keys // num_shards
    return [key_of(step * i) for i in range(1, num_shards)]
