"""Leaper-style post-compaction block prefetching.

The paper cites Leaper (VLDB'20) as the block-cache world's answer to
compaction invalidation: after a compaction rewrites files, repopulate
the cache with the new blocks that correspond to previously-hot data.

This implementation piggybacks on the compaction itself, as Leaper
does: when a compaction event fires, the key ranges of the *cached*
blocks belonging to the compaction's inputs are collected, and output
blocks overlapping those ranges are inserted into the block cache
directly from the just-written tables (no metered disk read — the data
was in the compaction buffer moments ago).

Attach with :meth:`CompactionPrefetcher.attach`; an ablation benchmark
(`benchmarks/test_abl_prefetch.py`) quantifies the effect.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cache.block_cache import BlockCache
from repro.lsm.block import BlockHandle
from repro.lsm.compaction import CompactionEvent
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree

KeyRange = Tuple[str, str]


class CompactionPrefetcher:
    """Re-warms the block cache after each compaction.

    Parameters
    ----------
    block_cache:
        The cache to re-warm.
    disk:
        Where the compaction's output tables live.
    max_blocks_per_compaction:
        Safety cap so one huge compaction cannot flush the cache with
        prefetched blocks.
    """

    def __init__(
        self,
        block_cache: BlockCache,
        disk: SimulatedDisk,
        max_blocks_per_compaction: int = 64,
    ) -> None:
        self._cache = block_cache
        self._disk = disk
        self._max_blocks = max_blocks_per_compaction
        self.prefetched_total = 0
        self.compactions_seen = 0

    @classmethod
    def attach(
        cls,
        tree: LSMTree,
        block_cache: BlockCache,
        max_blocks_per_compaction: int = 64,
    ) -> "CompactionPrefetcher":
        """Create a prefetcher and register it on ``tree``'s compactor."""
        prefetcher = cls(block_cache, tree.disk, max_blocks_per_compaction)
        tree.add_compaction_listener(prefetcher.on_compaction)
        return prefetcher

    def _hot_ranges(self, input_sst_ids: List[int]) -> List[KeyRange]:
        """Key ranges of cached blocks that the compaction invalidated."""
        inputs = set(input_sst_ids)
        ranges: List[KeyRange] = []
        for shard in self._cache._shards:
            for handle in list(shard.keys()):
                if handle.sst_id in inputs:
                    block = shard.peek(handle)
                    if block is not None:
                        ranges.append((block.first_key, block.last_key))
        return ranges

    def on_compaction(self, event: CompactionEvent) -> int:
        """Compaction-listener hook; returns blocks prefetched."""
        self.compactions_seen += 1
        hot = self._hot_ranges(event.input_sst_ids)
        if not hot:
            return 0
        prefetched = 0
        for sst_id in event.output_sst_ids:
            table = self._disk.table(sst_id)
            if table is None:
                continue
            for block_no in range(table.num_blocks):
                if prefetched >= self._max_blocks:
                    break
                block = table.block_at(block_no)
                if any(
                    block.first_key <= hi and block.last_key >= lo
                    for lo, hi in hot
                ):
                    # Direct insert: the block was just written by the
                    # compaction, so no metered disk read is charged.
                    self._cache.put(BlockHandle(sst_id, block_no), block)
                    prefetched += 1
        self.prefetched_total += prefetched
        return prefetched
