"""Point-lookup result cache (RocksDB row-cache analogue).

Stores ``key -> value`` pairs produced by point lookups.  Scans never
consult it — the paper's KV Cache baseline exists precisely to show
that a pure point-result cache is blind to range traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.base import BudgetedCache, CacheBase, CacheStats, EvictionPolicy
from repro.cache.lru import LRUPolicy
from repro.errors import InvariantError


class KVCache(CacheBase):
    """Byte-budgeted key-value result cache.

    Parameters
    ----------
    budget_bytes:
        Capacity.
    entry_charge:
        Logical bytes per entry (key + value size).
    policy:
        Eviction policy (default LRU).
    """

    def __init__(
        self,
        budget_bytes: int,
        entry_charge: int = 1024,
        policy: Optional[EvictionPolicy[str]] = None,
    ) -> None:
        self.entry_charge = entry_charge
        self._cache: BudgetedCache[str, str] = BudgetedCache(
            budget_bytes,
            policy if policy is not None else LRUPolicy(),
            lambda _key, _value: entry_charge,
        )

    def get(self, key: str) -> Optional[str]:
        """Serve a point lookup; None on miss."""
        return self._cache.get(key)

    def put(self, key: str, value: str) -> bool:
        """Admit a point-lookup result."""
        return self._cache.put(key, value)

    def on_write(self, key: str, value: str) -> None:
        """Refresh a resident entry after an upstream put (stale otherwise)."""
        if key in self._cache:
            self._cache.put(key, value)

    def on_delete(self, key: str) -> None:
        """Invalidate after an upstream delete."""
        self._cache.remove(key)

    def contains(self, key: str) -> bool:
        """Residency probe without stats side effects."""
        return key in self._cache

    def clear(self) -> None:
        """Invalidate everything (e.g. after a crash/restart)."""
        self._cache.clear()

    def resize(self, budget_bytes: int) -> int:
        """Change capacity; returns evictions made."""
        return self._cache.resize(budget_bytes)

    @property
    def budget_bytes(self) -> int:
        """Current capacity."""
        return self._cache.budget_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes charged."""
        return self._cache.used_bytes

    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters."""
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    def check_invariants(self) -> None:
        """Inner cache health plus the uniform per-entry charge."""
        self._cache.check_invariants()
        for key, charge in self._cache.entry_charges():
            if charge != self.entry_charge:
                raise InvariantError(
                    f"KVCache entry {key!r} charged {charge} bytes, expected "
                    f"uniform charge {self.entry_charge}"
                )
