"""Core cache abstractions: stats, eviction-policy interface, container.

The container/policy split mirrors how RocksDB separates the sharded
hash table from its LRU/Clock policies: :class:`BudgetedCache` owns the
key->value map and the byte budget, and delegates *which* resident key
to sacrifice to an :class:`EvictionPolicy`.  LeCaR and Cacheus plug in
through the same interface, receiving eviction/ghost feedback via
``record_evict``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Iterator, Optional, Tuple, TypeVar

from repro import sanitize
from repro.errors import CacheError, InvariantError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/admission accounting for one cache component."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejections: int = 0  # admission-control refusals
    invalidations: int = 0  # removals not driven by capacity

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when no lookups yet."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        """Copy of the current counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            insertions=self.insertions,
            evictions=self.evictions,
            rejections=self.rejections,
            invalidations=self.invalidations,
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            insertions=self.insertions - earlier.insertions,
            evictions=self.evictions - earlier.evictions,
            rejections=self.rejections - earlier.rejections,
            invalidations=self.invalidations - earlier.invalidations,
        )


class CacheBase(ABC):
    """Uniform surface every cache container exposes.

    Concrete caches (block, range, kv, kp, sharded-range, and the
    generic :class:`BudgetedCache`) all present the same capacity pair —
    :attr:`budget_bytes` / :attr:`used_bytes` — so the sanitizer, the
    controller, and metrics read one interface regardless of which
    composition is running.  Every subclass must also implement the
    ``check_invariants()`` protocol (lint rule CACHE001 enforces this
    statically; :mod:`repro.sanitize` invokes it at runtime).
    """

    #: Sampled invariant-check gate; None when sanitizing is disabled.
    _sanitizer: Optional[sanitize.Sanitizer] = None

    @property
    @abstractmethod
    def budget_bytes(self) -> int:
        """Current capacity in (logical) bytes."""

    @property
    @abstractmethod
    def used_bytes(self) -> int:
        """Bytes currently charged against the budget."""

    @abstractmethod
    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.InvariantError` on corrupt state."""

    @property
    def occupancy(self) -> float:
        """used/budget in [0, 1]; 0 when the budget is zero."""
        budget = self.budget_bytes
        return self.used_bytes / budget if budget else 0.0

    def enable_sanitizer(
        self, period: int = sanitize.DEFAULT_PERIOD, seed: int = 0
    ) -> None:
        """Turn on sampled invariant checking for this cache instance."""
        self._sanitizer = sanitize.Sanitizer(period, seed)

    @property
    def sanitizing(self) -> bool:
        """Whether sampled invariant checking is enabled on this cache."""
        return self._sanitizer is not None

    def _after_mutation(self) -> None:
        """Hot-path hook: run a sampled invariant check when enabled."""
        if self._sanitizer is not None:
            self._sanitizer.after_mutation(self)


class EvictionPolicy(ABC, Generic[K]):
    """Decides which resident key a cache should evict.

    The container calls ``record_insert`` when a key becomes resident,
    ``record_access`` on every hit, ``select_victim`` when over budget,
    ``record_evict`` when the chosen victim leaves (capacity pressure,
    so learning policies may ghost-list it), and ``record_remove`` for
    non-capacity removals (invalidation), which must not count as a
    policy mistake.
    """

    @abstractmethod
    def record_insert(self, key: K) -> None:
        """A key became resident."""

    @abstractmethod
    def record_access(self, key: K) -> None:
        """A resident key was hit."""

    @abstractmethod
    def select_victim(self) -> K:
        """Choose the resident key to evict; raises CacheError if empty."""

    @abstractmethod
    def record_evict(self, key: K) -> None:
        """The victim left due to capacity pressure."""

    @abstractmethod
    def record_remove(self, key: K) -> None:
        """A key left for a non-capacity reason (e.g. invalidation)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident keys the policy tracks."""

    @abstractmethod
    def __contains__(self, key: K) -> bool:
        """Whether the policy tracks ``key`` as resident."""

    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.InvariantError` on corrupt state.

        Policies override this with structure-specific checks; the
        default accepts anything so simple policies stay simple.
        """


class BudgetedCache(CacheBase, Generic[K, V]):
    """Byte-budgeted key-value cache with a pluggable eviction policy.

    Parameters
    ----------
    budget_bytes:
        Capacity.  May be resized at runtime (the dynamic boundary).
    policy:
        Eviction policy instance; owns no values, only key ordering.
    charge_of:
        Size function applied to ``(key, value)`` on insert.
    """

    def __init__(
        self,
        budget_bytes: int,
        policy: EvictionPolicy[K],
        charge_of: Callable[[K, V], int],
    ) -> None:
        if budget_bytes < 0:
            raise CacheError("budget_bytes must be >= 0")
        self._budget = budget_bytes
        self._policy = policy
        self._charge_of = charge_of
        self._data: Dict[K, Tuple[V, int]] = {}
        self._used = 0
        self.stats = CacheStats()
        #: Capacity-eviction listener ``(key, value)``; invalidations do
        #: not fire it (a removed key is dead, not demoted).  The tiered
        #: serving cache uses this as its L1 demotion feed.
        self.on_evict: Optional[Callable[[K, V], None]] = None
        self._sanitizer = sanitize.from_env()

    # -- capacity ---------------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """Current capacity in (logical) bytes."""
        return self._budget

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged."""
        return self._used

    def resize(self, budget_bytes: int) -> int:
        """Change capacity, evicting as needed; returns evictions made."""
        if budget_bytes < 0:
            raise CacheError("budget_bytes must be >= 0")
        self._budget = budget_bytes
        evicted = self._evict_to_fit()
        self._after_mutation()
        return evicted

    # -- lookups ---------------------------------------------------------------

    def get(self, key: K) -> Optional[V]:  # hot-path
        """Value for ``key`` (promoting it), or None; counts hit/miss."""
        entry = self._data.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._policy.record_access(key)
        return entry[0]

    def peek(self, key: K) -> Optional[V]:
        """Value for ``key`` without touching stats or recency."""
        entry = self._data.get(key)
        return entry[0] if entry else None

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[K]:
        """Resident keys (unordered)."""
        return iter(self._data)

    # -- mutation ---------------------------------------------------------------

    def put(self, key: K, value: V) -> bool:  # hot-path
        """Insert or overwrite ``key``; returns False if it can never fit."""
        charge = self._charge_of(key, value)
        if charge > self._budget:
            self.stats.rejections += 1
            return False
        data = self._data
        old = data.get(key)
        if old is not None:
            self._used -= old[1]
            data[key] = (value, charge)
            self._used += charge
            self._policy.record_access(key)
        else:
            data[key] = (value, charge)
            self._used += charge
            self._policy.record_insert(key)
            self.stats.insertions += 1
        if self._used > self._budget:
            self._evict_to_fit()
        if self._sanitizer is not None:
            self._sanitizer.after_mutation(self)
        return True

    def remove(self, key: K) -> bool:
        """Invalidate ``key`` (not an eviction); returns whether present."""
        entry = self._data.pop(key, None)
        if entry is None:
            return False
        self._used -= entry[1]
        self._policy.record_remove(key)
        self.stats.invalidations += 1
        self._after_mutation()
        return True

    def clear(self) -> None:
        """Invalidate everything."""
        for key in list(self._data):
            self.remove(key)

    def _evict_to_fit(self) -> int:
        evicted = 0
        on_evict = self.on_evict
        while self._used > self._budget and self._data:
            victim = self._policy.select_victim()
            entry = self._data.pop(victim, None)
            if entry is None:
                raise CacheError(f"policy chose non-resident victim {victim!r}")
            self._used -= entry[1]
            self._policy.record_evict(victim)
            self.stats.evictions += 1
            evicted += 1
            if on_evict is not None:
                on_evict(victim, entry[0])
        return evicted

    # -- sanitizer protocol ------------------------------------------------------

    def entry_charges(self) -> Iterator[Tuple[K, int]]:
        """``(key, charge)`` of every resident entry (sanitizer/diagnostics)."""
        return ((key, charge) for key, (_, charge) in self._data.items())

    def check_invariants(self) -> None:
        """Byte-accounting conservation and policy/dict cross-consistency."""
        total = sum(charge for _, charge in self._data.values())
        if total != self._used:
            raise InvariantError(
                f"BudgetedCache byte accounting drift: sum of entry charges "
                f"{total} != used_bytes {self._used} ({len(self._data)} entries)"
            )
        if self._used > self._budget:
            raise InvariantError(
                f"BudgetedCache over budget at rest: used_bytes {self._used} "
                f"> budget_bytes {self._budget}"
            )
        policy_len = len(self._policy)
        if policy_len != len(self._data):
            raise InvariantError(
                f"BudgetedCache policy/dict divergence: policy tracks "
                f"{policy_len} keys, cache holds {len(self._data)} "
                f"(a ghost entry leaked or a resident key went untracked)"
            )
        for key in self._data:
            if key not in self._policy:
                raise InvariantError(
                    f"BudgetedCache resident key {key!r} is unknown to the "
                    f"eviction policy"
                )
        self._policy.check_invariants()
