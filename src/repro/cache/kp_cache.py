"""Key-pointer (KP) cache, per AC-Key (Wu et al., ATC'20).

The paper's related work describes AC-Key's middle tier: alongside a
KV cache (full results, most memory per entry) and the block cache, a
**KP cache** stores ``key -> block handle`` pointers.  A KP hit does
not avoid the data-block read, but it skips the whole multi-level
search — bloom probes, index lookups, and the newest-to-oldest file
walk — for one cheap pointer dereference.  Pointers are tiny, so a KP
cache covers far more keys per byte than a KV cache.

Unlike result caches, pointers *are* invalidated by compaction (they
name physical blocks).  Stale pointers are detected lazily: a hit whose
SSTable is no longer live is dropped and reported as a miss, and a hit
whose block no longer contains the key (the key moved within a live
file — impossible here, but checked defensively) falls back too.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.cache.base import BudgetedCache, CacheBase, CacheStats, EvictionPolicy
from repro.cache.lru import LRUPolicy
from repro.errors import InvariantError
from repro.lsm.block import BlockHandle, DataBlock

BlockFetch = Callable[[BlockHandle], DataBlock]
IsLive = Callable[[int], bool]

#: Logical charge per pointer entry: key (24 B) + handle (~16 B).
DEFAULT_POINTER_CHARGE = 40


class KPCache(CacheBase):
    """Byte-budgeted ``key -> BlockHandle`` cache with lazy invalidation.

    Parameters
    ----------
    budget_bytes:
        Capacity.
    is_live:
        Predicate telling whether an SSTable id is still on disk
        (normally ``disk.has``).
    entry_charge:
        Logical bytes per pointer entry.
    policy:
        Eviction policy (default LRU).
    """

    def __init__(
        self,
        budget_bytes: int,
        is_live: IsLive,
        entry_charge: int = DEFAULT_POINTER_CHARGE,
        policy: Optional[EvictionPolicy[str]] = None,
    ) -> None:
        self.entry_charge = entry_charge
        self._is_live = is_live
        self._cache: BudgetedCache[str, BlockHandle] = BudgetedCache(
            budget_bytes,
            policy if policy is not None else LRUPolicy(),
            lambda _key, _value: entry_charge,
        )
        self.stale_hits = 0

    def lookup(self, key: str, fetch: BlockFetch) -> Tuple[bool, Optional[str]]:
        """Resolve ``key`` through its cached pointer.

        Returns ``(hit, value)``; ``hit`` is False when there is no
        pointer, the pointer is stale (compacted away), or the block no
        longer holds the key — all of which drop the entry.
        """
        handle = self._cache.get(key)
        if handle is None:
            return False, None
        if not self._is_live(handle.sst_id):
            self._cache.remove(key)
            self.stale_hits += 1
            return False, None
        block = fetch(handle)
        found, value = block.get(key)
        if not found or value is None:
            # Defensive: the pointer no longer resolves to a live value.
            self._cache.remove(key)
            self.stale_hits += 1
            return False, None
        return True, value

    def remember(self, key: str, handle: BlockHandle) -> bool:
        """Record where ``key`` was found."""
        return self._cache.put(key, handle)

    def on_write(self, key: str) -> None:
        """A put supersedes the pointed-to version: drop the pointer."""
        self._cache.remove(key)

    def on_delete(self, key: str) -> None:
        """A delete removes the key entirely: drop the pointer."""
        self._cache.remove(key)

    def contains(self, key: str) -> bool:
        """Residency probe without stats side effects."""
        return key in self._cache

    def clear(self) -> None:
        """Invalidate every pointer (e.g. after a crash/restart)."""
        self._cache.clear()

    def resize(self, budget_bytes: int) -> int:
        """Change capacity; returns evictions made."""
        return self._cache.resize(budget_bytes)

    @property
    def budget_bytes(self) -> int:
        """Current capacity."""
        return self._cache.budget_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes charged."""
        return self._cache.used_bytes

    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters (stale hits count as misses downstream)."""
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    def check_invariants(self) -> None:
        """Inner cache health plus the uniform per-pointer charge."""
        self._cache.check_invariants()
        for key, charge in self._cache.entry_charges():
            if charge != self.entry_charge:
                raise InvariantError(
                    f"KPCache pointer {key!r} charged {charge} bytes, "
                    f"expected uniform charge {self.entry_charge}"
                )
