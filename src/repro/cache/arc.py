"""Adaptive Replacement Cache (ARC) eviction policy.

ARC (Megiddo & Modha, FAST'03) is the policy AC-Key builds its
hierarchical caching on; we provide it as an optional policy for the
block and KV caches.  Resident keys live in T1 (seen once recently) or
T2 (seen at least twice); ghost lists B1/B2 remember recent evictions
and steer the adaptive target ``p`` (the desired size of T1).

This implementation adapts ARC to the container/policy split: ghost-list
consultation happens in :meth:`record_insert` (which the container calls
on every admitted miss), and :meth:`select_victim` implements REPLACE.
Sizes are tracked in keys rather than bytes; for the fixed-size entries
used in this simulator the two are proportional.  The ghost bookkeeping
is the shared :class:`~repro.cache.ghost.GhostList` (also the promotion
signal for the fleet L2 tier, :mod:`repro.cache.tier2`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.cache.base import EvictionPolicy
from repro.cache.ghost import GhostList
from repro.errors import CacheError, InvariantError

K = TypeVar("K", bound=Hashable)


class ARCPolicy(EvictionPolicy[K], Generic[K]):
    """ARC with T1/T2 resident lists and B1/B2 ghost lists.

    Parameters
    ----------
    capacity_hint:
        Expected resident capacity ``c`` in keys; bounds the ghost lists
        and scales the adaptation of ``p``.
    """

    def __init__(self, capacity_hint: int = 1024) -> None:
        if capacity_hint <= 0:
            raise CacheError("capacity_hint must be positive")
        self._c = capacity_hint
        self._p = 0.0  # adaptive target size of T1
        self._t1: "OrderedDict[K, None]" = OrderedDict()
        self._t2: "OrderedDict[K, None]" = OrderedDict()
        self._b1: GhostList[K] = GhostList(capacity_hint)
        self._b2: GhostList[K] = GhostList(capacity_hint)

    @property
    def p(self) -> float:
        """Current adaptive target for |T1|."""
        return self._p

    def record_insert(self, key: K) -> None:
        if key in self._b1:
            # Ghost hit in B1: T1 was evicted too eagerly -> grow p.
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(float(self._c), self._p + delta)
            self._b1.discard(key)
            self._t2[key] = None
        elif key in self._b2:
            # Ghost hit in B2 -> shrink p.
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - delta)
            self._b2.discard(key)
            self._t2[key] = None
        else:
            self._t1[key] = None

    def record_access(self, key: K) -> None:
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
        elif key in self._t2:
            self._t2.move_to_end(key)

    def select_victim(self) -> K:
        if not self._t1 and not self._t2:
            raise CacheError("ARC policy has no resident keys")
        # REPLACE: evict from T1 when it exceeds the target p (or T2 empty).
        if self._t1 and (len(self._t1) > self._p or not self._t2):
            return next(iter(self._t1))
        return next(iter(self._t2))

    def record_evict(self, key: K) -> None:
        if key in self._t1:
            del self._t1[key]
            self._b1.record(key)
        elif key in self._t2:
            del self._t2[key]
            self._b2.record(key)

    def record_remove(self, key: K) -> None:
        # Invalidation: forget entirely, no ghost (not a policy mistake).
        self._t1.pop(key, None)
        self._t2.pop(key, None)
        self._b1.discard(key)
        self._b2.discard(key)

    def check_invariants(self) -> None:
        """T1/T2/B1/B2 pairwise disjointness, ghost bounds, and p's range."""
        lists = {
            "T1": self._t1.keys(),
            "T2": self._t2.keys(),
            "B1": self._b1.keys(),
            "B2": self._b2.keys(),
        }
        names = list(lists)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                overlap = lists[a] & lists[b]
                if overlap:
                    raise InvariantError(
                        f"ARCPolicy: {a} and {b} share keys {sorted(map(repr, overlap))[:3]}"
                    )
        self._b1.check_invariants()
        self._b2.check_invariants()
        if len(self._b1) > self._c or len(self._b2) > self._c:
            raise InvariantError(
                f"ARCPolicy ghost lists exceed capacity {self._c}: "
                f"|B1|={len(self._b1)}, |B2|={len(self._b2)}"
            )
        if not 0.0 <= self._p <= float(self._c):
            raise InvariantError(
                f"ARCPolicy adaptive target p={self._p} outside [0, {self._c}]"
            )

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: K) -> bool:
        return key in self._t1 or key in self._t2
