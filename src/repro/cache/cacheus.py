"""Cacheus: LeCaR's successor with scan- and churn-resistant experts.

Reimplementation of Cacheus (Rodriguez et al., FAST'21) at the fidelity
the AdCache paper uses it: a regret-weighted mixture (like LeCaR) whose
two experts are

* **SR-LRU** — scan-resistant LRU.  Resident keys split into a
  probationary list R (seen once) and a safe list S (re-referenced).
  One-shot scan keys never leave R and are evicted first; keys
  returning from the ghost history are inserted straight into S.
* **CR-LFU** — churn-resistant LFU.  Among the minimum-frequency
  bucket it evicts the *most recently used* key, so under churn the
  same few victims cycle while older keys keep their slots and
  accumulate frequency.

Cacheus also replaces LeCaR's fixed learning rate with a hill-climbing
adaptive rate: after every adaptation window the miss count is compared
with the previous window's, and the learning rate keeps moving in the
direction that reduced misses (reversing otherwise).  That mechanism is
reproduced here in simplified form; the full paper also anneals toward
a restart value, which we omit.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from random import Random
from typing import Dict, Generic, Hashable, Optional, Tuple, TypeVar

from repro.cache.base import EvictionPolicy
from repro.cache.lfu import check_freq_buckets
from repro.errors import CacheError, InvariantError

K = TypeVar("K", bound=Hashable)

_SRLRU, _CRLFU = 0, 1


class SRLRUPolicy(EvictionPolicy[K], Generic[K]):
    """Scan-resistant LRU with probationary (R) and safe (S) lists."""

    def __init__(self) -> None:
        self._r: "OrderedDict[K, None]" = OrderedDict()
        self._s: "OrderedDict[K, None]" = OrderedDict()

    def record_insert(self, key: K, safe: bool = False) -> None:
        target = self._s if safe else self._r
        target[key] = None
        self._rebalance()

    def record_access(self, key: K) -> None:
        if key in self._r:
            del self._r[key]
            self._s[key] = None
            self._rebalance()
        elif key in self._s:
            self._s.move_to_end(key)

    def _rebalance(self) -> None:
        # Keep S at no more than half the resident keys (rounded up):
        # demote its LRU end back into R as most-recent there, so a
        # demoted key is not the immediate next victim.
        total = len(self._r) + len(self._s)
        while self._s and len(self._s) > (total + 1) // 2:
            key, _ = self._s.popitem(last=False)
            self._r[key] = None

    def select_victim(self) -> K:
        if self._r:
            return next(iter(self._r))
        if self._s:
            return next(iter(self._s))
        raise CacheError("SR-LRU policy has no resident keys")

    def record_evict(self, key: K) -> None:
        self._r.pop(key, None)
        self._s.pop(key, None)

    def record_remove(self, key: K) -> None:
        self._r.pop(key, None)
        self._s.pop(key, None)

    def check_invariants(self) -> None:
        """Probationary and safe lists must stay disjoint.

        (The rebalance bound on |S| is deliberately not asserted: an
        eviction from R shrinks the total without re-running the
        rebalance, so |S| may legitimately exceed it between inserts.)
        """
        overlap = self._r.keys() & self._s.keys()
        if overlap:
            raise InvariantError(
                f"SRLRUPolicy: keys in both R and S: {sorted(map(repr, overlap))[:3]}"
            )

    def __len__(self) -> int:
        return len(self._r) + len(self._s)

    def __contains__(self, key: K) -> bool:
        return key in self._r or key in self._s


class CRLFUPolicy(EvictionPolicy[K], Generic[K]):
    """Churn-resistant LFU: min-frequency bucket, most-recent first out."""

    def __init__(self) -> None:
        self._freq: Dict[K, int] = {}
        self._buckets: Dict[int, "OrderedDict[K, None]"] = {}
        self._min_freq = 0

    def _bucket(self, freq: int) -> "OrderedDict[K, None]":
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = OrderedDict()
            self._buckets[freq] = bucket
        return bucket

    def record_insert(self, key: K) -> None:
        self._freq[key] = 1
        self._bucket(1)[key] = None
        self._min_freq = 1

    def record_access(self, key: K) -> None:
        freq = self._freq.get(key)
        if freq is None:
            return
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._bucket(freq + 1)[key] = None

    def select_victim(self) -> K:
        if not self._freq:
            raise CacheError("CR-LFU policy has no resident keys")
        bucket = self._buckets[self._min_freq]
        # Churn resistance: sacrifice the *most recent* arrival in the
        # cold bucket so long-resident cold keys can ripen.
        return next(reversed(bucket))

    def _drop(self, key: K) -> None:
        freq = self._freq.pop(key, None)
        if freq is None:
            return
        bucket = self._buckets.get(freq)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[freq]
        if freq == self._min_freq and self._freq:
            while self._min_freq not in self._buckets:
                self._min_freq += 1
        if not self._freq:
            self._min_freq = 0

    def record_evict(self, key: K) -> None:
        self._drop(key)

    def record_remove(self, key: K) -> None:
        self._drop(key)

    def check_invariants(self) -> None:
        """Frequency-map/bucket cross-consistency (shared with LFU)."""
        check_freq_buckets("CRLFUPolicy", self._freq, self._buckets, self._min_freq)

    def __len__(self) -> int:
        return len(self._freq)

    def __contains__(self, key: K) -> bool:
        return key in self._freq


class CacheusPolicy(EvictionPolicy[K], Generic[K]):
    """Adaptive mixture of SR-LRU and CR-LFU with hill-climbed rate.

    Parameters
    ----------
    history_size:
        Ghost capacity per expert and the learning-rate window length.
    initial_learning_rate:
        Starting multiplicative penalty scale.
    discount_base:
        Regret discount (as in LeCaR).
    seed:
        RNG seed for expert sampling.
    """

    def __init__(
        self,
        history_size: int = 512,
        initial_learning_rate: float = 0.45,
        discount_base: float = 0.005,
        seed: int = 0,
    ) -> None:
        if history_size <= 0:
            raise CacheError("history_size must be positive")
        self._srlru: SRLRUPolicy[K] = SRLRUPolicy()
        self._crlfu: CRLFUPolicy[K] = CRLFUPolicy()
        self._history_size = history_size
        self._lr = initial_learning_rate
        self._lr_direction = 1.0
        self._discount = discount_base ** (1.0 / history_size)
        self._rng = Random(seed)
        self._weights = [0.5, 0.5]
        self._time = 0
        self._history: "OrderedDict[K, Tuple[int, int]]" = OrderedDict()
        self._pending_expert: Optional[int] = None
        # learning-rate window accounting
        self._window_misses = 0
        self._prev_window_misses: Optional[int] = None
        self._ops_in_window = 0

    @property
    def weights(self) -> Tuple[float, float]:
        """Current (w_srlru, w_crlfu)."""
        return self._weights[0], self._weights[1]

    @property
    def learning_rate(self) -> float:
        """Current adaptive learning rate."""
        return self._lr

    def record_insert(self, key: K) -> None:
        self._time += 1
        self._note_op(miss=True)
        ghost = self._history.pop(key, None)
        safe = ghost is not None
        if ghost is not None:
            expert, evicted_at = ghost
            regret = self._discount ** (self._time - evicted_at)
            self._weights[expert] *= math.exp(-self._lr * regret)
            total = self._weights[0] + self._weights[1]
            self._weights = [w / total for w in self._weights]
        # A key the cache has recently seen goes straight to the safe list.
        self._srlru.record_insert(key, safe=safe)
        self._crlfu.record_insert(key)

    def record_access(self, key: K) -> None:
        self._time += 1
        self._note_op(miss=False)
        self._srlru.record_access(key)
        self._crlfu.record_access(key)

    def select_victim(self) -> K:
        expert = _SRLRU if self._rng.random() < self._weights[_SRLRU] else _CRLFU
        self._pending_expert = expert
        policy = self._srlru if expert == _SRLRU else self._crlfu
        return policy.select_victim()

    def record_evict(self, key: K) -> None:
        expert = self._pending_expert if self._pending_expert is not None else _SRLRU
        self._pending_expert = None
        self._srlru.record_evict(key)
        self._crlfu.record_evict(key)
        self._history[key] = (expert, self._time)
        while len(self._history) > self._history_size:
            self._history.popitem(last=False)

    def record_remove(self, key: K) -> None:
        self._pending_expert = None
        self._srlru.record_remove(key)
        self._crlfu.record_remove(key)

    def check_invariants(self) -> None:
        """Expert sync, normalized weights, bounded history and rate."""
        if len(self._srlru) != len(self._crlfu):
            raise InvariantError(
                f"CacheusPolicy experts diverged: SR-LRU tracks "
                f"{len(self._srlru)} keys, CR-LFU tracks {len(self._crlfu)}"
            )
        total = self._weights[0] + self._weights[1]
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise InvariantError(
                f"CacheusPolicy weights not normalized: sum is {total!r}"
            )
        if len(self._history) > self._history_size:
            raise InvariantError(
                f"CacheusPolicy ghost history holds {len(self._history)} "
                f"entries, capacity is {self._history_size}"
            )
        if not 0.001 <= self._lr <= 1.0:
            raise InvariantError(
                f"CacheusPolicy learning rate {self._lr} left its "
                f"hill-climbing clamp [0.001, 1.0]"
            )
        self._srlru.check_invariants()
        self._crlfu.check_invariants()

    def _note_op(self, miss: bool) -> None:
        self._ops_in_window += 1
        if miss:
            self._window_misses += 1
        if self._ops_in_window >= self._history_size:
            self._adapt_learning_rate()
            self._ops_in_window = 0
            self._prev_window_misses = self._window_misses
            self._window_misses = 0

    def _adapt_learning_rate(self) -> None:
        """Hill climb: keep moving the rate the way that reduced misses."""
        if self._prev_window_misses is None:
            return
        if self._window_misses > self._prev_window_misses:
            self._lr_direction = -self._lr_direction
        self._lr = min(1.0, max(0.001, self._lr * (1.0 + 0.1 * self._lr_direction)))

    def __len__(self) -> int:
        return len(self._srlru)

    def __contains__(self, key: K) -> bool:
        return key in self._srlru
