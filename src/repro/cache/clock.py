"""CLOCK (second-chance) eviction policy.

RocksDB offers a Clock-based block cache as a lower-contention
alternative to LRU; we provide it for the same role.  Keys sit on a
circular list with a reference bit; the hand sweeps, clearing bits,
and evicts the first unreferenced key it meets.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Hashable, TypeVar

from repro.cache.base import EvictionPolicy
from repro.errors import CacheError

K = TypeVar("K", bound=Hashable)


class ClockPolicy(EvictionPolicy[K], Generic[K]):
    """Second-chance CLOCK over resident keys.

    The ring is an insertion-ordered dict; the "hand" rotates by moving
    referenced keys to the back with their bit cleared, which is
    behaviourally identical to a circular sweep.
    """

    def __init__(self) -> None:
        self._ring: "OrderedDict[K, bool]" = OrderedDict()  # key -> referenced bit

    def record_insert(self, key: K) -> None:
        self._ring[key] = False

    def record_access(self, key: K) -> None:
        if key in self._ring:
            self._ring[key] = True

    def select_victim(self) -> K:
        if not self._ring:
            raise CacheError("CLOCK policy has no resident keys")
        while True:
            key, referenced = next(iter(self._ring.items()))
            if not referenced:
                return key
            # Second chance: clear the bit and rotate the hand past it.
            del self._ring[key]
            self._ring[key] = False

    def record_evict(self, key: K) -> None:
        self._ring.pop(key, None)

    def record_remove(self, key: K) -> None:
        self._ring.pop(key, None)

    def __len__(self) -> int:
        return len(self._ring)

    def __contains__(self, key: K) -> bool:
        return key in self._ring
