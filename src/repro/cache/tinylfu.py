"""TinyLFU-gated eviction (Einziger, Friedman & Manes, ToS'17).

The paper's frequency admission (Section 3.4) descends directly from
TinyLFU, which it cites: "research such as TinyLFU demonstrated that
[admitting all misses] can significantly reduce cache efficiency".
This policy implements TinyLFU's core duel at eviction time:

* every insert and access feeds a decaying Count-Min sketch;
* when the cache must evict, the freshly-inserted *candidate* duels the
  LRU victim — whichever has the lower sketch frequency is evicted.

Admitting-then-dueling is behaviourally identical to TinyLFU's
reject-at-admission under this container (the container inserts first
and evicts to fit immediately after), and it means a cold key can never
displace a demonstrably hotter resident one.

This is the segment-free core of W-TinyLFU; the windowed/SLRU variant
adds recency protection that our LRU base already approximates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

from repro.cache.base import EvictionPolicy
from repro.cache.sketch import CountMinSketch
from repro.errors import CacheError, InvariantError

K = TypeVar("K", bound=Hashable)


class TinyLFUPolicy(EvictionPolicy[K], Generic[K]):
    """LRU order with a frequency duel protecting hot residents.

    Parameters
    ----------
    sketch:
        Optional pre-built frequency sketch (shared sketches allowed);
        a private one is created otherwise.
    sketch_width / sketch_depth / saturation / seed:
        Geometry for the private sketch (TinyLFU's aging via
        saturation halving, as in the paper's admission design).
    """

    def __init__(
        self,
        sketch: Optional[CountMinSketch] = None,
        sketch_width: int = 2048,
        sketch_depth: int = 4,
        saturation: int = 16,
        seed: int = 0,
    ) -> None:
        self._order: "OrderedDict[K, None]" = OrderedDict()
        self._sketch = sketch or CountMinSketch(
            width=sketch_width, depth=sketch_depth, saturation=saturation, seed=seed
        )
        self._candidate: Optional[K] = None
        self.duels_won_by_candidate = 0
        self.duels_won_by_victim = 0

    def _count(self, key: K) -> None:
        self._sketch.increment(str(key))

    def record_insert(self, key: K) -> None:
        self._order[key] = None
        self._order.move_to_end(key)
        self._count(key)
        self._candidate = key

    def record_access(self, key: K) -> None:
        if key in self._order:
            self._order.move_to_end(key)
            self._count(key)

    def select_victim(self) -> K:
        if not self._order:
            raise CacheError("TinyLFU policy has no resident keys")
        lru_victim = next(iter(self._order))
        candidate = self._candidate
        if (
            candidate is None
            or candidate == lru_victim
            or candidate not in self._order
        ):
            return lru_victim
        # The duel: keep whichever of (new candidate, LRU victim) the
        # sketch believes is hotter.
        if self._sketch.estimate(str(candidate)) <= self._sketch.estimate(
            str(lru_victim)
        ):
            self.duels_won_by_victim += 1
            return candidate
        self.duels_won_by_candidate += 1
        return lru_victim

    def record_evict(self, key: K) -> None:
        self._order.pop(key, None)
        if key == self._candidate:
            self._candidate = None

    def record_remove(self, key: K) -> None:
        self._order.pop(key, None)
        if key == self._candidate:
            self._candidate = None

    @property
    def sketch(self) -> CountMinSketch:
        """The frequency sketch (for introspection and tests)."""
        return self._sketch

    def check_invariants(self) -> None:
        """The duel candidate must be resident (or already cleared)."""
        if self._candidate is not None and self._candidate not in self._order:
            raise InvariantError(
                f"TinyLFUPolicy duel candidate {self._candidate!r} is not "
                f"resident (stale candidate survived an eviction)"
            )

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: K) -> bool:
        return key in self._order
