"""Result-based cache over a skip list: the Range Cache.

Reimplementation of Range Cache (Wang et al., ICDE'24) as the paper's
result-caching substrate.  Query results — single keys from point
lookups, runs of adjacent keys from scans — are stored in a skip list
in logical key order, decoupled from SSTable layout, so compactions
never invalidate them.

Correctness for scans needs more than resident keys: a scan must know
that *no* database key in the requested window is missing from the
cache.  The cache therefore tracks *complete intervals*
(:class:`~repro.cache.intervals.IntervalSet`): a scan starting at
``start`` is a hit only when ``start`` lies in a complete interval and
the requested number of entries is found without leaving it.  Evicting
any entry splits the interval around the evicted key.

Eviction policy is pluggable (LRU by default; LeCaR and Cacheus form
the paper's baseline variants) and works at single-entry granularity.
"""

from __future__ import annotations

import functools
import operator
import threading
from typing import Any, Callable, List, Optional, Tuple, TypeVar

from repro import sanitize
from repro.cache.base import CacheBase, CacheStats, EvictionPolicy
from repro.cache.intervals import IntervalSet
from repro.cache.lru import LRUPolicy
from repro.cache.skiplist import SkipList
from repro.errors import CacheError, InvariantError
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, Recorder

Entry = Tuple[str, str]

#: Stable batch sort key: by key only, so duplicate keys keep arrival
#: order and the last write wins as in a scalar insert loop.
_entry_key = operator.itemgetter(0)

F = TypeVar("F", bound=Callable[..., Any])


def _locked(method: F) -> F:
    """Guard a RangeCache method with the instance lock.

    The paper shards the range cache for multi-client deployments; at
    simulator scale a single re-entrant lock gives the same safety with
    negligible cost next to the simulated I/O.
    """

    @functools.wraps(method)
    def wrapper(self: "RangeCache", *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper  # type: ignore[return-value]


class RangeCache(CacheBase):
    """Sorted result cache with complete-interval tracking.

    Parameters
    ----------
    budget_bytes:
        Memory budget; resized at runtime by the adaptive boundary.
    entry_charge:
        Logical bytes charged per cached entry (key + value size).
    policy:
        Eviction policy over cached keys (default: fresh LRU).
    seed:
        Seed for the skip list's level RNG.
    """

    def __init__(
        self,
        budget_bytes: int,
        entry_charge: int = 1024,
        policy: Optional[EvictionPolicy[str]] = None,
        seed: int = 0,
    ) -> None:
        if budget_bytes < 0:
            raise CacheError("budget_bytes must be >= 0")
        if entry_charge <= 0:
            raise CacheError("entry_charge must be positive")
        self._budget = budget_bytes
        self.entry_charge = entry_charge
        self._entries = SkipList(seed=seed)
        self._intervals = IntervalSet()
        self._policy: EvictionPolicy[str] = policy if policy is not None else LRUPolicy()
        self._used = 0
        self._lock = threading.RLock()
        self.stats = CacheStats()
        self.point_hits = 0
        self.range_hits = 0
        self.recorder: Recorder = NULL_RECORDER
        self._sanitizer = sanitize.from_env(seed)

    # -- capacity -------------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """Current capacity in logical bytes."""
        return self._budget

    @property
    def used_bytes(self) -> int:
        """Bytes currently charged."""
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    @_locked
    def resize(self, budget_bytes: int) -> int:
        """Change capacity, evicting to fit; returns evictions made."""
        if budget_bytes < 0:
            raise CacheError("budget_bytes must be >= 0")
        self._budget = budget_bytes
        evicted = self._evict_to_fit()
        if evicted and self.recorder.enabled:
            self.recorder.event(
                N.EV_CACHE_EVICT,
                cache="range",
                evicted=evicted,
                budget_bytes=budget_bytes,
            )
        self._after_mutation()
        return evicted

    # -- point lookups -----------------------------------------------------------

    def get_point(self, key: str) -> Optional[str]:  # hot-path
        """Serve a point lookup from cache, or None on miss."""
        with self._lock:
            found, value = self._entries.get(key)
            if found:
                self.stats.hits += 1
                self.point_hits += 1
                self._policy.record_access(key)
                return value
            self.stats.misses += 1
            return None

    @_locked
    def contains(self, key: str) -> bool:
        """Residency probe without stats side effects."""
        return key in self._entries

    def insert_point(self, key: str, value: str) -> bool:  # hot-path
        """Admit one point-lookup result."""
        with self._lock:
            admitted = self._insert_entry(key, value)
            if self._sanitizer is not None:
                self._sanitizer.after_mutation(self)
            return admitted

    def insert_points(self, pairs: List[Entry]) -> int:  # hot-path
        """Admit a batch of point-lookup results in one sorted splice.

        ``pairs`` arrive in admission order; they are sorted by key so
        the skip list's ascending finger
        (:meth:`~repro.cache.skiplist.SkipList.insert_ascending`) can
        splice the whole batch with one full descent plus amortized
        forward steps, with eviction deferred to the end of the batch.
        Duplicate keys keep arrival order (stable sort), so the last
        write wins exactly as a scalar loop's would.  Unlike
        :meth:`insert_range` no complete interval is recorded — these
        are isolated keys.  A batch of one is :meth:`insert_point`'s
        exact effect sequence (same descent, same RNG draws, same
        eviction timing).  Returns the number of entries admitted
        (0 when the per-entry charge exceeds the budget).
        """
        with self._lock:
            if len(pairs) == 1:
                key, value = pairs[0]
                admitted = self._insert_entry(key, value)
                if self._sanitizer is not None:
                    self._sanitizer.after_mutation(self)
                return 1 if admitted else 0
            inserted = 0
            insert_entry = self._insert_entry
            ascending = False  # first entry needs a full descent
            for key, value in sorted(pairs, key=_entry_key):
                if insert_entry(key, value, True, ascending):
                    inserted += 1
                ascending = True
            self._evict_to_fit()
            if self._sanitizer is not None:
                self._sanitizer.after_mutation(self)
            return inserted

    # -- range scans -----------------------------------------------------------

    def get_range(self, start: str, length: int) -> Optional[List[Entry]]:  # hot-path
        """Serve ``scan(start, length)`` wholly from cache, else None.

        A hit requires a complete interval covering ``start`` that still
        contains ``length`` entries from ``start`` onward.  Partial
        coverage is a miss (a partial hit would still pay the full
        LSM-tree seek, as the paper notes).
        """
        with self._lock:
            interval = self._intervals.covering(start)
            if interval is None:
                self.stats.misses += 1
                return None
            _, end = interval
            result: List[Entry] = []
            append = result.append
            remaining = length
            for key, value in self._entries.items_from(start):
                if key > end or remaining <= 0:
                    break
                append((key, value))
                remaining -= 1
            if len(result) < length:
                # Fewer cached entries than requested before the
                # interval's end: keys beyond the interval are unknown,
                # so this is a miss even though a prefix was covered.
                self.stats.misses += 1
                return None
            record_access = self._policy.record_access
            for key, _ in result:
                record_access(key)
            self.stats.hits += 1
            self.range_hits += 1
            return result

    def insert_range(
        self, start: str, entries: List[Entry], admit_count: Optional[int] = None
    ) -> int:  # hot-path
        """Admit a scan result (optionally only its first ``admit_count``).

        ``entries`` must be the scan's result in key order; ``start`` is
        the scan's requested start key, which anchors the complete
        interval (all database keys in ``[start, last-admitted-key]``
        are in ``entries``).  Returns the number of entries admitted.
        """
        with self._lock:
            if admit_count is None:
                admit_count = len(entries)
            admit_count = max(0, min(admit_count, len(entries)))
            if admit_count == 0:
                self.stats.rejections += 1
                return 0
            admitted = entries if admit_count == len(entries) else entries[:admit_count]
            insert_entry = self._insert_entry
            ascending = False  # first entry needs a full descent
            for key, value in admitted:
                insert_entry(key, value, True, ascending)
                ascending = True
            self._intervals.add(start, admitted[-1][0])
            self._evict_to_fit()
            if self._sanitizer is not None:
                self._sanitizer.after_mutation(self)
            return admit_count

    # -- write-path hooks -----------------------------------------------------------

    def on_write(self, key: str, value: str) -> None:  # hot-path
        """Keep the cache coherent with an upstream put.

        Overwrites a resident entry; a *new* key landing inside a
        complete interval must be inserted to preserve completeness.
        The overwrite probe and the write share one skip-list descent.
        """
        with self._lock:
            if self._entries.update_if_present(key, value):
                self._policy.record_access(key)
            elif self._intervals.covering(key) is not None:
                self._insert_entry(key, value)
            if self._sanitizer is not None:
                self._sanitizer.after_mutation(self)

    def on_delete(self, key: str) -> None:  # hot-path
        """Keep the cache coherent with an upstream delete.

        Removing the entry preserves interval completeness: the key is
        no longer a live database key, so scans must not return it.
        """
        with self._lock:
            if self._drop_entry(key, split_interval=False):
                self.stats.invalidations += 1
            if self._sanitizer is not None:
                self._sanitizer.after_mutation(self)

    # -- internals -----------------------------------------------------------

    def _insert_entry(
        self,
        key: str,
        value: str,
        defer_eviction: bool = False,
        ascending: bool = False,
    ) -> bool:
        if self.entry_charge > self._budget:
            self.stats.rejections += 1
            return False
        if ascending:
            # Batch admission of a sorted scan result: resume the
            # previous entry's descent (see SkipList.insert_ascending).
            is_new = self._entries.insert_ascending(key, value)
        else:
            is_new = self._entries.insert(key, value)
        if is_new:
            self._used += self.entry_charge
            self._policy.record_insert(key)
            self.stats.insertions += 1
        else:
            self._policy.record_access(key)
        if not defer_eviction:
            self._evict_to_fit()
        return True

    def _drop_entry(
        self, key: str, split_interval: bool, evicted: bool = False
    ) -> bool:  # hot-path
        """Remove ``key``; returns whether it was resident.

        One skip-list descent yields the removal *and* the surviving
        neighbours the interval split needs (the old predecessor /
        successor / remove triple cost three descents per eviction).
        """
        removed, left, right = self._entries.remove_with_neighbors(key)
        if not removed:
            return False
        self._used -= self.entry_charge
        if evicted:
            self._policy.record_evict(key)
            self._intervals.split_around(key, left, right)
            self.stats.evictions += 1
        else:
            self._policy.record_remove(key)
            if split_interval:
                self._intervals.split_around(key, left, right)
        return True

    def _evict_to_fit(self) -> int:  # hot-path
        evicted = 0
        used = self._used
        budget = self._budget
        if used <= budget:
            return 0
        entries = self._entries
        select_victim = self._policy.select_victim
        while self._used > budget and len(entries):
            self._drop_entry(select_victim(), split_interval=True, evicted=True)
            evicted += 1
        return evicted

    # -- diagnostics -----------------------------------------------------------

    @property
    def num_complete_intervals(self) -> int:
        """Number of tracked complete intervals."""
        return len(self._intervals)

    def complete_intervals(self) -> List[Tuple[str, str]]:
        """Copy of the complete-interval list (diagnostics/tests)."""
        return self._intervals.intervals()

    @_locked
    def resident_keys(self) -> List[str]:
        """All cached keys in order (diagnostics/sanitizer)."""
        return [key for key, _ in self._entries.items()]

    @_locked
    def clear(self) -> None:
        """Drop all entries and intervals."""
        for key, _ in list(self._entries.items()):
            self._drop_entry(key, split_interval=False)
        self._intervals.clear()

    # -- sanitizer protocol -----------------------------------------------------

    @_locked
    def check_invariants(self) -> None:
        """Byte conservation, skip-list health, policy sync, intervals."""
        expected = len(self._entries) * self.entry_charge
        if expected != self._used:
            raise InvariantError(
                f"RangeCache byte accounting drift: {len(self._entries)} "
                f"entries x charge {self.entry_charge} = {expected} != "
                f"used_bytes {self._used}"
            )
        if self._used > self._budget:
            raise InvariantError(
                f"RangeCache over budget at rest: used_bytes {self._used} "
                f"> budget_bytes {self._budget}"
            )
        policy_len = len(self._policy)
        if policy_len != len(self._entries):
            raise InvariantError(
                f"RangeCache policy/skip-list divergence: policy tracks "
                f"{policy_len} keys, skip list holds {len(self._entries)} "
                f"(a ghost entry leaked or a resident key went untracked)"
            )
        for key, _ in self._entries.items():
            if key not in self._policy:
                raise InvariantError(
                    f"RangeCache resident key {key!r} is unknown to the "
                    f"eviction policy"
                )
        self._entries.check_invariants()
        self._intervals.check_invariants()
        self._policy.check_invariants()
