"""Decaying Count-Min sketch for frequency-based admission.

The paper's point-lookup admission (Section 3.4) counts missed keys "in
a compact data structure (e.g., Count-Min Sketch)" and normalizes a
key's frequency against the global sum of missed-key frequencies.  To
stay responsive it halves everything once any key's count reaches a
saturation point (default 8), exactly the TinyLFU aging scheme.

Counters are ``depth`` plain-Python integer rows of ``width`` columns;
increments use the conservative-update variant, which tightens the
classic overestimate bound without changing the "never underestimates"
guarantee.  Plain ints beat a numpy table here because every operation
touches exactly ``depth`` (= 4) scalars: array fancy-indexing costs
more per call than the whole plain-int update.  Row hashes are memoized
per key in a bounded FIFO map, so the miss path (estimate + increment
of the same key) and the TinyLFU victim duels hash each key once.

Invariant (relied on by :meth:`normalized`): conservative update raises
each touched counter to at most ``old_min + 1``, so every row's column
sum is bounded by ``total``; halving floors both sides in lockstep
(``sum(c_i // 2) <= total // 2``), so ``estimate(key) <= total`` holds
with or without decay.  A normalized frequency above 1.0 is therefore
always corrupted bookkeeping, never "decay skew", and is raised as
:class:`~repro.errors.CacheError` instead of being clamped away.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CacheError
from repro.lsm.bloom import fnv1a, fnv1a_batch_multi

#: Keys whose row columns are memoized before the FIFO starts evicting.
_MEMO_LIMIT = 8192

#: Batches at or below this size hash through the scalar loop — numpy's
#: fixed per-call overhead beats its per-key savings under ~8 keys.
_SCALAR_BATCH_MAX = 7


class CountMinSketch:
    """Conservative-update Count-Min sketch with saturation halving.

    Parameters
    ----------
    width:
        Counters per row; larger -> fewer collisions.
    depth:
        Number of hash rows.
    saturation:
        When a key's estimate reaches this after an increment, all
        counters and the global sum are halved (integer division).
    seed:
        Salt for the row hashes.
    """

    def __init__(
        self,
        width: int = 4096,
        depth: int = 4,
        saturation: int = 8,
        seed: int = 0,
    ) -> None:
        if width <= 0 or depth <= 0:
            raise CacheError("width and depth must be positive")
        if saturation < 2:
            raise CacheError("saturation must be >= 2")
        self.width = width
        self.depth = depth
        self.saturation = saturation
        self._salts = [seed ^ (0xA5A5_0000 + i * 0x1234_5677) for i in range(depth)]
        self._rows_tab: List[List[int]] = [[0] * width for _ in range(depth)]
        self._memo: Dict[str, Tuple[int, ...]] = {}
        self.total = 0  # global sum of observed increments (decayed with counters)
        self.decays_total = 0

    def columns(self, key: str) -> Tuple[int, ...]:  # hot-path
        """Per-row column indices for ``key`` (memoized, FIFO-bounded).

        Decay does not move keys between columns, so memo entries stay
        valid for the sketch's lifetime; the FIFO bound only limits
        memory, not correctness.
        """
        memo = self._memo
        cols = memo.get(key)
        if cols is None:
            data = key.encode("utf-8")
            width = self.width
            cols = tuple(fnv1a(data, salt) % width for salt in self._salts)
            if len(memo) >= _MEMO_LIMIT:
                del memo[next(iter(memo))]
            memo[key] = cols
        return cols

    def columns_batch(self, keys: Sequence[str]) -> List[Tuple[int, ...]]:
        """Per-row column indices for a whole key batch.

        Memoized keys are served from the FIFO map; the remainder are
        hashed in one vectorized numpy pass covering all ``depth`` row
        salts at once (:func:`~repro.lsm.bloom.fnv1a_batch_multi`)
        instead of a Python loop per key.  Every tuple equals
        :meth:`columns` bit-for-bit.
        """
        if len(keys) <= _SCALAR_BATCH_MAX:
            # Below the numpy crossover the scalar loop wins; it also
            # updates the FIFO memo in the identical order.
            columns = self.columns
            return [columns(key) for key in keys]
        memo = self._memo
        col_map: Dict[str, Tuple[int, ...]] = {}
        missing: List[str] = []
        for key in keys:
            if key not in col_map:
                cached = memo.get(key)
                if cached is None:
                    col_map[key] = ()  # placeholder; filled below
                    missing.append(key)
                else:
                    col_map[key] = cached
        if missing:
            datas = [key.encode("utf-8") for key in missing]
            width = self.width
            per_salt = (
                fnv1a_batch_multi(datas, self._salts) % np.uint64(width)
            ).tolist()
            limit = _MEMO_LIMIT
            for i, key in enumerate(missing):
                cols = tuple(row_cols[i] for row_cols in per_salt)
                col_map[key] = cols
                if len(memo) >= limit:
                    del memo[next(iter(memo))]
                memo[key] = cols
        return [col_map[key] for key in keys]

    def estimate(self, key: str) -> int:  # hot-path
        """Frequency estimate for ``key`` (never an underestimate)."""
        rows_tab = self._rows_tab
        estimate = None
        for row, col in zip(rows_tab, self.columns(key)):
            count = row[col]
            if estimate is None or count < estimate:
                estimate = count
        return estimate or 0

    def increment(self, key: str) -> int:  # hot-path
        """Count one occurrence of ``key``; returns the new estimate.

        Triggers a global halving when the estimate reaches saturation.
        The columns are hashed once and shared with the estimate taken
        here — the admission miss path never hashes a key twice.
        """
        rows_tab = self._rows_tab
        cols = self.columns(key)
        current = None
        for row, col in zip(rows_tab, cols):
            count = row[col]
            if current is None or count < current:
                current = count
        new_min = (current or 0) + 1
        # Conservative update: only raise counters below the new minimum.
        for row, col in zip(rows_tab, cols):
            if row[col] < new_min:
                row[col] = new_min
        self.total += 1
        if new_min >= self.saturation:
            self._decay()
            new_min //= 2
        return new_min

    def estimate_batch(self, keys: Sequence[str]) -> List[int]:  # hot-path
        """Frequency estimates for a whole batch of keys.

        Hashing is vectorized (:meth:`columns_batch`); the min-reduce
        stays a plain-int loop because each key touches exactly
        ``depth`` scalars.  Element i equals ``estimate(keys[i])``.
        """
        cols_list = self.columns_batch(keys)
        rows_tab = self._rows_tab
        out: List[int] = []
        for cols in cols_list:
            estimate = None
            for row, col in zip(rows_tab, cols):
                count = row[col]
                if estimate is None or count < estimate:
                    estimate = count
            out.append(estimate or 0)
        return out

    def update_batch(self, keys: Sequence[str]) -> List[int]:  # hot-path
        """Count one occurrence of every key; returns the new estimates.

        Hashing is vectorized across the batch; the counter updates
        replay strictly in arrival order because conservative update
        and saturation halving are order-dependent when a batch
        repeats a key (the second occurrence must see the first's
        counters, and a mid-batch decay must halve everything before
        later keys are counted).  The returned list — and every
        counter, ``total``, and ``decays_total`` — is bit-identical to
        ``[increment(k) for k in keys]``.
        """
        cols_list = self.columns_batch(keys)
        rows_tab = self._rows_tab
        saturation = self.saturation
        out: List[int] = []
        for cols in cols_list:
            current = None
            for row, col in zip(rows_tab, cols):
                count = row[col]
                if current is None or count < current:
                    current = count
            new_min = (current or 0) + 1
            for row, col in zip(rows_tab, cols):
                if row[col] < new_min:
                    row[col] = new_min
            self.total += 1
            if new_min >= saturation:
                self._decay()
                new_min //= 2
            out.append(new_min)
        return out

    def normalized(self, key: str) -> float:
        """``estimate(key) / total`` in [0, 1]; 0 when nothing counted.

        Conservative update plus lockstep halving guarantee
        ``estimate <= total`` (see the module docstring), so a ratio
        above 1.0 — with or without decays — means the counters and the
        global sum have diverged and is raised instead of clamped.
        """
        if self.total == 0:
            return 0.0
        ratio = self.estimate(key) / self.total
        if ratio > 1.0:
            raise CacheError(
                f"sketch estimate for {key!r} exceeds the global total "
                f"({self.estimate(key)} > {self.total} after "
                f"{self.decays_total} decays): counter bookkeeping corrupted"
            )
        return ratio

    def _decay(self) -> None:
        for row in self._rows_tab:
            for col, count in enumerate(row):
                if count:
                    row[col] = count >> 1
        self.total //= 2
        self.decays_total += 1

    def reset(self) -> None:
        """Zero all counters and the global sum."""
        for row in self._rows_tab:
            for col in range(self.width):
                row[col] = 0
        self.total = 0

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the counter table (8-byte counters)."""
        return self.width * self.depth * 8
