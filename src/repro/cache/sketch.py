"""Decaying Count-Min sketch for frequency-based admission.

The paper's point-lookup admission (Section 3.4) counts missed keys "in
a compact data structure (e.g., Count-Min Sketch)" and normalizes a
key's frequency against the global sum of missed-key frequencies.  To
stay responsive it halves everything once any key's count reaches a
saturation point (default 8), exactly the TinyLFU aging scheme.

Counters are a ``depth x width`` numpy array; increments use the
conservative-update variant, which tightens the classic overestimate
bound without changing the "never underestimates" guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CacheError
from repro.lsm.bloom import fnv1a


class CountMinSketch:
    """Conservative-update Count-Min sketch with saturation halving.

    Parameters
    ----------
    width:
        Counters per row; larger -> fewer collisions.
    depth:
        Number of hash rows.
    saturation:
        When a key's estimate reaches this after an increment, all
        counters and the global sum are halved (integer division).
    seed:
        Salt for the row hashes.
    """

    def __init__(
        self,
        width: int = 4096,
        depth: int = 4,
        saturation: int = 8,
        seed: int = 0,
    ) -> None:
        if width <= 0 or depth <= 0:
            raise CacheError("width and depth must be positive")
        if saturation < 2:
            raise CacheError("saturation must be >= 2")
        self.width = width
        self.depth = depth
        self.saturation = saturation
        self._salts = [seed ^ (0xA5A5_0000 + i * 0x1234_5677) for i in range(depth)]
        self._table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0  # global sum of observed increments (decayed with counters)
        self.decays_total = 0

    def _rows(self, key: str) -> np.ndarray:
        data = key.encode("utf-8")
        return np.array(
            [fnv1a(data, salt) % self.width for salt in self._salts], dtype=np.int64
        )

    def estimate(self, key: str) -> int:
        """Frequency estimate for ``key`` (never an underestimate)."""
        cols = self._rows(key)
        return int(self._table[np.arange(self.depth), cols].min())

    def increment(self, key: str) -> int:
        """Count one occurrence of ``key``; returns the new estimate.

        Triggers a global halving when the estimate reaches saturation.
        """
        rows = np.arange(self.depth)
        cols = self._rows(key)
        current = self._table[rows, cols]
        new_min = int(current.min()) + 1
        # Conservative update: only raise counters below the new minimum.
        np.maximum(current, new_min, out=current)
        self._table[rows, cols] = current
        self.total += 1
        if new_min >= self.saturation:
            self._decay()
            new_min //= 2
        return new_min

    def normalized(self, key: str) -> float:
        """``estimate(key) / total`` in [0, 1]; 0 when nothing counted."""
        if self.total == 0:
            return 0.0
        return min(1.0, self.estimate(key) / self.total)

    def _decay(self) -> None:
        self._table >>= 1
        self.total //= 2
        self.decays_total += 1

    def reset(self) -> None:
        """Zero all counters and the global sum."""
        self._table.fill(0)
        self.total = 0

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the counter table."""
        return int(self._table.nbytes)
