"""Least-frequently-used eviction policy with LRU tie-breaking.

Implemented with frequency buckets (the O(1) LFU construction): each
frequency maps to an ordered dict of keys, and a running minimum tracks
the lowest non-empty bucket.  Ties inside a bucket evict the least
recently used key, which is also what Cacheus' CR-LFU variant refines.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Hashable, TypeVar

from repro.cache.base import EvictionPolicy
from repro.errors import CacheError

K = TypeVar("K", bound=Hashable)


class LFUPolicy(EvictionPolicy[K], Generic[K]):
    """Frequency-bucketed LFU; ties broken by least-recent use."""

    def __init__(self) -> None:
        self._freq: Dict[K, int] = {}
        self._buckets: Dict[int, "OrderedDict[K, None]"] = {}
        self._min_freq = 0

    def frequency(self, key: K) -> int:
        """Current frequency count of a resident key (0 if absent)."""
        return self._freq.get(key, 0)

    def _bucket(self, freq: int) -> "OrderedDict[K, None]":
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = OrderedDict()
            self._buckets[freq] = bucket
        return bucket

    def record_insert(self, key: K) -> None:
        self._freq[key] = 1
        self._bucket(1)[key] = None
        self._min_freq = 1

    def record_access(self, key: K) -> None:
        freq = self._freq.get(key)
        if freq is None:
            return
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._bucket(freq + 1)[key] = None

    def select_victim(self) -> K:
        if not self._freq:
            raise CacheError("LFU policy has no resident keys")
        bucket = self._buckets[self._min_freq]
        return next(iter(bucket))

    def _drop(self, key: K) -> None:
        freq = self._freq.pop(key, None)
        if freq is None:
            return
        bucket = self._buckets.get(freq)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[freq]
        if freq == self._min_freq and self._freq:
            while self._min_freq not in self._buckets:
                self._min_freq += 1
        if not self._freq:
            self._min_freq = 0

    def record_evict(self, key: K) -> None:
        self._drop(key)

    def record_remove(self, key: K) -> None:
        self._drop(key)

    def __len__(self) -> int:
        return len(self._freq)

    def __contains__(self, key: K) -> bool:
        return key in self._freq
