"""Least-frequently-used eviction policy with LRU tie-breaking.

Implemented with frequency buckets (the O(1) LFU construction): each
frequency maps to an ordered dict of keys, and a running minimum tracks
the lowest non-empty bucket.  Ties inside a bucket evict the least
recently used key, which is also what Cacheus' CR-LFU variant refines.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Hashable, TypeVar

from repro.cache.base import EvictionPolicy
from repro.errors import CacheError, InvariantError

K = TypeVar("K", bound=Hashable)


def check_freq_buckets(
    name: str,
    freq: Dict[K, int],
    buckets: Dict[int, "OrderedDict[K, None]"],
    min_freq: int,
) -> None:
    """Shared frequency/bucket cross-consistency check (LFU and CR-LFU).

    Verifies that every tracked key sits in exactly the bucket its
    frequency names, that no empty bucket lingers, and that ``min_freq``
    points at the lowest non-empty bucket.
    """
    total = 0
    for f, bucket in buckets.items():
        if not bucket:
            raise InvariantError(f"{name}: empty bucket {f} was not pruned")
        total += len(bucket)
        for key in bucket:
            if freq.get(key) != f:
                raise InvariantError(
                    f"{name}: key {key!r} sits in bucket {f} but its "
                    f"frequency is {freq.get(key)}"
                )
    if total != len(freq):
        raise InvariantError(
            f"{name}: buckets hold {total} keys but {len(freq)} are tracked"
        )
    if freq:
        lowest = min(buckets)
        if min_freq != lowest:
            raise InvariantError(
                f"{name}: min_freq {min_freq} != lowest non-empty bucket {lowest}"
            )
    elif min_freq != 0:
        raise InvariantError(f"{name}: empty policy but min_freq is {min_freq}")


class LFUPolicy(EvictionPolicy[K], Generic[K]):
    """Frequency-bucketed LFU; ties broken by least-recent use."""

    def __init__(self) -> None:
        self._freq: Dict[K, int] = {}
        self._buckets: Dict[int, "OrderedDict[K, None]"] = {}
        self._min_freq = 0

    def frequency(self, key: K) -> int:
        """Current frequency count of a resident key (0 if absent)."""
        return self._freq.get(key, 0)

    def _bucket(self, freq: int) -> "OrderedDict[K, None]":
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = OrderedDict()
            self._buckets[freq] = bucket
        return bucket

    def record_insert(self, key: K) -> None:
        self._freq[key] = 1
        self._bucket(1)[key] = None
        self._min_freq = 1

    def record_access(self, key: K) -> None:
        freq = self._freq.get(key)
        if freq is None:
            return
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._bucket(freq + 1)[key] = None

    def select_victim(self) -> K:
        if not self._freq:
            raise CacheError("LFU policy has no resident keys")
        bucket = self._buckets[self._min_freq]
        return next(iter(bucket))

    def _drop(self, key: K) -> None:
        freq = self._freq.pop(key, None)
        if freq is None:
            return
        bucket = self._buckets.get(freq)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[freq]
        if freq == self._min_freq and self._freq:
            while self._min_freq not in self._buckets:
                self._min_freq += 1
        if not self._freq:
            self._min_freq = 0

    def record_evict(self, key: K) -> None:
        self._drop(key)

    def record_remove(self, key: K) -> None:
        self._drop(key)

    def check_invariants(self) -> None:
        """Frequency-map/bucket cross-consistency (see CACHE001 docs)."""
        check_freq_buckets("LFUPolicy", self._freq, self._buckets, self._min_freq)

    def __len__(self) -> int:
        return len(self._freq)

    def __contains__(self, key: K) -> bool:
        return key in self._freq
