"""Reusable bounded ghost list for recency/frequency history.

ARC-family policies (Megiddo & Modha, FAST'03) remember *recently
evicted* keys in ghost lists: a hit on a ghost is evidence the resident
list it shadows was sized too small, which is the signal that steers the
adaptive target.  The same structure is the promotion signal for the
fleet-shared second cache tier (:mod:`repro.cache.tier2`): a block whose
ghost is re-demanded has proven reuse and earns admission.

A :class:`GhostList` is a bounded, insertion-ordered set of keys — no
values, only identity and order — trimmed FIFO at capacity.  Extracted
from the private ``B1``/``B2`` bookkeeping :class:`~repro.cache.arc.ARCPolicy`
used to carry inline, so ARC and tier2 share one audited implementation
instead of two copies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, KeysView, TypeVar

from repro.errors import CacheError, InvariantError

K = TypeVar("K", bound=Hashable)


class GhostList(Generic[K]):
    """Bounded insertion-ordered key history with FIFO trimming.

    Parameters
    ----------
    capacity:
        Maximum keys remembered; recording beyond it drops the oldest.
    """

    __slots__ = ("_capacity", "_keys")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise CacheError("GhostList capacity must be positive")
        self._capacity = capacity
        self._keys: "OrderedDict[K, None]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum keys this ghost list remembers."""
        return self._capacity

    def record(self, key: K) -> None:
        """Remember ``key`` as most recent, trimming the oldest to fit."""
        self._keys[key] = None
        self._keys.move_to_end(key)
        while len(self._keys) > self._capacity:
            self._keys.popitem(last=False)

    def discard(self, key: K) -> bool:
        """Forget ``key``; returns whether it was remembered."""
        if key in self._keys:
            del self._keys[key]
            return True
        return False

    def set_capacity(self, capacity: int) -> None:
        """Rebound the list, trimming the oldest entries to fit."""
        if capacity <= 0:
            raise CacheError("GhostList capacity must be positive")
        self._capacity = capacity
        while len(self._keys) > self._capacity:
            self._keys.popitem(last=False)

    def keys(self) -> "KeysView[K]":
        """Remembered keys, oldest first (a live view)."""
        return self._keys.keys()

    def __contains__(self, key: K) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[K]:
        return iter(self._keys)

    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.InvariantError` on corrupt state."""
        if self._capacity <= 0:
            raise InvariantError(
                f"GhostList capacity {self._capacity} must be positive"
            )
        if len(self._keys) > self._capacity:
            raise InvariantError(
                f"GhostList over capacity: {len(self._keys)} keys remembered "
                f"for a bound of {self._capacity}"
            )
