"""LeCaR: learning cache replacement with regret minimization.

Reimplementation of LeCaR (Vietri et al., HotStorage'18), used by the
paper as the "Range Cache + naive ML eviction" baseline.  LeCaR keeps
two expert policies — LRU and LFU — with a probability weight each.
Evictions sample an expert by weight; the victim goes into that
expert's ghost history.  When a missed key is found in a history, the
expert that evicted it is penalized multiplicatively
(``w *= exp(-lr * d^age)``, weights renormalized), steering future
evictions toward the expert that would not have made the mistake.

Adapted to the container/policy interface: the regret update runs in
:meth:`record_insert`, which the container invokes on every admitted
miss (the baselines admit all misses, so this observes every miss).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from random import Random
from typing import Generic, Hashable, Optional, Tuple, TypeVar

from repro.cache.base import EvictionPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.errors import CacheError, InvariantError

K = TypeVar("K", bound=Hashable)

_LRU, _LFU = 0, 1


class LeCaRPolicy(EvictionPolicy[K], Generic[K]):
    """Regret-weighted mixture of LRU and LFU experts.

    Parameters
    ----------
    history_size:
        Ghost-list capacity per expert; the original sizes it to the
        cache's entry capacity.  Also sets the regret discount horizon.
    learning_rate:
        Multiplicative penalty scale (paper default 0.45).
    discount_base:
        ``d = discount_base ** (1 / history_size)`` per time step
        (paper default 0.005).
    seed:
        RNG seed for expert sampling.
    """

    def __init__(
        self,
        history_size: int = 512,
        learning_rate: float = 0.45,
        discount_base: float = 0.005,
        seed: int = 0,
    ) -> None:
        if history_size <= 0:
            raise CacheError("history_size must be positive")
        self._lru: LRUPolicy[K] = LRUPolicy()
        self._lfu: LFUPolicy[K] = LFUPolicy()
        self._history_size = history_size
        self._lr = learning_rate
        self._discount = discount_base ** (1.0 / history_size)
        self._rng = Random(seed)
        self._weights = [0.5, 0.5]
        self._time = 0
        # ghost: key -> (expert, eviction time)
        self._history: "OrderedDict[K, Tuple[int, int]]" = OrderedDict()
        self._pending_expert: Optional[int] = None

    @property
    def weights(self) -> Tuple[float, float]:
        """Current (w_lru, w_lfu)."""
        return self._weights[0], self._weights[1]

    def record_insert(self, key: K) -> None:
        self._time += 1
        ghost = self._history.pop(key, None)
        if ghost is not None:
            expert, evicted_at = ghost
            regret = self._discount ** (self._time - evicted_at)
            self._weights[expert] *= math.exp(-self._lr * regret)
            total = self._weights[0] + self._weights[1]
            self._weights = [w / total for w in self._weights]
        self._lru.record_insert(key)
        self._lfu.record_insert(key)

    def record_access(self, key: K) -> None:
        self._time += 1
        self._lru.record_access(key)
        self._lfu.record_access(key)

    def select_victim(self) -> K:
        expert = _LRU if self._rng.random() < self._weights[_LRU] else _LFU
        self._pending_expert = expert
        policy = self._lru if expert == _LRU else self._lfu
        return policy.select_victim()

    def record_evict(self, key: K) -> None:
        expert = self._pending_expert if self._pending_expert is not None else _LRU
        self._pending_expert = None
        self._lru.record_evict(key)
        self._lfu.record_evict(key)
        self._history[key] = (expert, self._time)
        while len(self._history) > self._history_size:
            self._history.popitem(last=False)

    def record_remove(self, key: K) -> None:
        # Invalidation is not an expert mistake: no ghost entry.
        self._pending_expert = None
        self._lru.record_remove(key)
        self._lfu.record_remove(key)

    def check_invariants(self) -> None:
        """Expert sync, normalized weights, and bounded ghost history."""
        if len(self._lru) != len(self._lfu):
            raise InvariantError(
                f"LeCaRPolicy experts diverged: LRU tracks {len(self._lru)} "
                f"keys, LFU tracks {len(self._lfu)}"
            )
        total = self._weights[0] + self._weights[1]
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise InvariantError(
                f"LeCaRPolicy weights not normalized: sum is {total!r}"
            )
        if min(self._weights) < 0.0:
            raise InvariantError(
                f"LeCaRPolicy negative expert weight: {self._weights!r}"
            )
        if len(self._history) > self._history_size:
            raise InvariantError(
                f"LeCaRPolicy ghost history holds {len(self._history)} entries, "
                f"capacity is {self._history_size}"
            )
        self._lru.check_invariants()
        self._lfu.check_invariants()

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: K) -> bool:
        return key in self._lru
