"""Least-recently-used eviction policy.

The default policy for every cache in the paper's baseline lineup
(RocksDB block cache, KV cache, vanilla Range Cache).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.cache.base import EvictionPolicy
from repro.errors import CacheError

K = TypeVar("K", bound=Hashable)


class LRUPolicy(EvictionPolicy[K], Generic[K]):
    """Classic LRU over resident keys."""

    def __init__(self) -> None:
        self._order: "OrderedDict[K, None]" = OrderedDict()

    def record_insert(self, key: K) -> None:  # hot-path
        order = self._order
        if key in order:
            order.move_to_end(key)
        else:
            order[key] = None  # new keys append at the end already

    def record_access(self, key: K) -> None:  # hot-path
        # Hits vastly outnumber misses here, so try the move directly
        # instead of paying a containment probe on every access.
        try:
            self._order.move_to_end(key)
        except KeyError:
            pass

    def select_victim(self) -> K:
        if not self._order:
            raise CacheError("LRU policy has no resident keys")
        return next(iter(self._order))

    def record_evict(self, key: K) -> None:
        self._order.pop(key, None)

    def record_remove(self, key: K) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: K) -> bool:
        return key in self._order
