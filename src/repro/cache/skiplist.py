"""Probabilistic skip list over string keys.

The Range Cache paper stores cached results "in a sorted structure
(e.g., a skip list)"; this is that structure.  Standard Pugh skip list
with geometric level promotion, supporting exact lookup, ordered
iteration from an arbitrary key, and predecessor/successor queries —
the latter two drive complete-interval splitting when entries are
evicted.
"""

from __future__ import annotations

from random import Random
from typing import Iterator, List, Optional, Set, Tuple

from repro.errors import InvariantError


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[str], value: Optional[str], level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Sorted string-key map with O(log n) expected operations.

    Parameters
    ----------
    p:
        Level-promotion probability (classic 0.5).
    max_level:
        Hard cap on tower height.
    seed:
        RNG seed so structures are reproducible across runs.
    """

    def __init__(self, p: float = 0.5, max_level: int = 24, seed: int = 0) -> None:
        self._p = p
        self._max_level = max_level
        self._rng = Random(seed)
        self._head = _Node(None, None, max_level)
        self._level = 1
        self._size = 0
        # Reused by _find_predecessors: one preallocated predecessor array
        # instead of a fresh max_level-list per mutation.  Entries at or
        # above the tracked height may be stale between calls; insert
        # explicitly re-points new top levels at the head before linking.
        self._update: List[_Node] = [self._head] * max_level

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: str) -> bool:
        return self.get(key)[0]

    def _random_level(self) -> int:  # hot-path
        level = 1
        max_level = self._max_level
        p = self._p
        random = self._rng.random
        while level < max_level and random() < p:
            level += 1
        return level

    def _find_predecessors(self, key: str) -> List[_Node]:  # hot-path
        """Per-level nodes immediately before ``key``.

        Returns the shared preallocated array; it is valid only until
        the next call, so callers must consume it before any further
        skip-list operation (all callers do so immediately).  Entries
        at levels >= the tracked height are not refreshed.
        """
        update = self._update
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
            update[lv] = node
        return update

    # -- mutation --------------------------------------------------------------

    def insert(self, key: str, value: str) -> bool:  # hot-path
        """Insert or overwrite; returns True when the key is new."""
        update = self._find_predecessors(key)
        return self._insert_at(update, key, value)

    def insert_ascending(self, key: str, value: str) -> bool:  # hot-path
        """Like :meth:`insert`, resuming the previous call's descent.

        Only valid when ``key`` is >= the key given to the immediately
        preceding ``insert``/``insert_ascending`` call *and* no other
        mutation touched the list in between (batch admission of a
        sorted scan result satisfies this).  Behaviourally identical to
        :meth:`insert` — same resulting structure, same RNG draws — it
        just advances each level's predecessor from where the previous
        search left it instead of descending from the head, making a
        sorted batch of ``b`` inserts cost one descent plus ``O(b)``
        amortised forward steps.
        """
        update = self._update
        for lv in range(self._level - 1, -1, -1):
            node = update[lv]
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
            update[lv] = node
        return self._insert_at(update, key, value)

    def _insert_at(self, update: List[_Node], key: str, value: str) -> bool:  # hot-path
        """Link ``key`` given its per-level predecessors."""
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return False
        level = self._random_level()
        if level > self._level:
            # New top levels: the shared update array may hold stale
            # nodes there, so re-point them at the head explicitly.
            for lv in range(self._level, level):
                update[lv] = self._head
            self._level = level
        node = _Node(key, value, level)
        forward = node.forward
        for lv in range(level):
            pred = update[lv]
            forward[lv] = pred.forward[lv]
            pred.forward[lv] = node
        self._size += 1
        return True

    def update_if_present(self, key: str, value: str) -> bool:  # hot-path
        """Overwrite ``key``'s value only when resident; one descent.

        Never allocates a node or consumes level randomness, so callers
        can probe-and-overwrite without perturbing the tower RNG.
        """
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
        node = node.forward[0]
        if node is not None and node.key == key:
            node.value = value
            return True
        return False

    def remove(self, key: str) -> bool:  # hot-path
        """Delete ``key``; returns whether it was present."""
        removed, _, _ = self.remove_with_neighbors(key)
        return removed

    def remove_with_neighbors(
        self, key: str
    ) -> Tuple[bool, Optional[str], Optional[str]]:  # hot-path
        """Delete ``key``; returns ``(removed, left_key, right_key)``.

        ``left_key`` is the largest stored key strictly less than
        ``key`` and ``right_key`` the smallest strictly greater (both
        evaluated after the removal, both None at the boundary).  One
        descent replaces the predecessor/remove/successor triple the
        range cache needs when splitting an interval around an evicted
        entry.
        """
        update = self._find_predecessors(key)
        pred = update[0]
        left = pred.key
        node = pred.forward[0]
        if node is None or node.key != key:
            right = node.key if node is not None else None
            return False, left, right
        node_forward = node.forward
        for lv in range(len(node_forward)):
            if update[lv].forward[lv] is node:
                update[lv].forward[lv] = node_forward[lv]
        head_forward = self._head.forward
        while self._level > 1 and head_forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        nxt = node_forward[0]
        right = nxt.key if nxt is not None else None
        return True, left, right

    # -- queries --------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Optional[str]]:
        """Exact lookup; ``(found, value)``."""
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
        node = node.forward[0]
        if node is not None and node.key == key:
            return True, node.value
        return False, None

    def predecessor(self, key: str) -> Optional[str]:
        """Largest stored key strictly less than ``key``."""
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
        return node.key  # None when node is the head sentinel

    def successor(self, key: str) -> Optional[str]:  # hot-path
        """Smallest stored key strictly greater than ``key``."""
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
        node = node.forward[0]
        if node is not None and node.key == key:
            node = node.forward[0]
        return node.key if node is not None else None

    def items_from(self, key: str) -> Iterator[Tuple[str, str]]:  # hot-path
        """Iterate ``(key, value)`` pairs with key >= ``key`` in order.

        Uses a private descent (not the shared predecessor array) so a
        paused generator can never observe another call's scratch state.
        """
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
        node = node.forward[0]
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.forward[0]

    def items(self) -> Iterator[Tuple[str, str]]:
        """Iterate all pairs in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.forward[0]

    def first_key(self) -> Optional[str]:
        """Smallest stored key, or None when empty."""
        node = self._head.forward[0]
        return node.key if node is not None else None

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering, size accounting, and level monotonicity.

        Raises :class:`~repro.errors.InvariantError` when the level-0
        chain is out of order or mis-sized (an unlinked or cycled node),
        when a node linked at level ``k`` is missing from level ``k-1``
        (towers must be contiguous from the ground up), or when the
        tracked height disagrees with the head pointers.
        """
        # Level 0: strictly increasing keys, exactly _size reachable nodes.
        reachable: Set[int] = set()
        prev_key: Optional[str] = None
        count = 0
        node = self._head.forward[0]
        while node is not None:
            count += 1
            if count > self._size:
                raise InvariantError(
                    f"SkipList level-0 chain has more than size={self._size} "
                    f"nodes (unaccounted node or cycle)"
                )
            if node.key is None:
                raise InvariantError("SkipList data node carries the sentinel key")
            if prev_key is not None and prev_key >= node.key:
                raise InvariantError(
                    f"SkipList level-0 ordering broken: {prev_key!r} >= {node.key!r}"
                )
            prev_key = node.key
            reachable.add(id(node))
            node = node.forward[0]
        if count != self._size:
            raise InvariantError(
                f"SkipList size drift: {count} nodes reachable at level 0, "
                f"size says {self._size} (node unlinked without accounting?)"
            )
        # Levels 1+: each chain ordered and a subset of the level below.
        below = reachable
        for lv in range(1, self._level):
            ids_here: Set[int] = set()
            prev_key = None
            node = self._head.forward[lv]
            while node is not None:
                if id(node) not in below:
                    raise InvariantError(
                        f"SkipList level monotonicity broken: node {node.key!r} "
                        f"is linked at level {lv} but not at level {lv - 1}"
                    )
                if prev_key is not None and prev_key >= node.key:  # type: ignore[operator]
                    raise InvariantError(
                        f"SkipList level-{lv} ordering broken: "
                        f"{prev_key!r} >= {node.key!r}"
                    )
                prev_key = node.key
                ids_here.add(id(node))
                node = node.forward[lv]
            below = ids_here
        # Nothing may be linked at or above the tracked height.
        for lv in range(self._level, self._max_level):
            if self._head.forward[lv] is not None:
                raise InvariantError(
                    f"SkipList head links a node at level {lv} but tracked "
                    f"height is {self._level}"
                )
