"""Probabilistic skip list over string keys.

The Range Cache paper stores cached results "in a sorted structure
(e.g., a skip list)"; this is that structure.  Standard Pugh skip list
with geometric level promotion, supporting exact lookup, ordered
iteration from an arbitrary key, and predecessor/successor queries —
the latter two drive complete-interval splitting when entries are
evicted.
"""

from __future__ import annotations

from random import Random
from typing import Iterator, List, Optional, Set, Tuple

from repro.errors import InvariantError


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[str], value: Optional[str], level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Sorted string-key map with O(log n) expected operations.

    Parameters
    ----------
    p:
        Level-promotion probability (classic 0.5).
    max_level:
        Hard cap on tower height.
    seed:
        RNG seed so structures are reproducible across runs.
    """

    def __init__(self, p: float = 0.5, max_level: int = 24, seed: int = 0) -> None:
        self._p = p
        self._max_level = max_level
        self._rng = Random(seed)
        self._head = _Node(None, None, max_level)
        self._level = 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: str) -> bool:
        return self.get(key)[0]

    def _random_level(self) -> int:
        level = 1
        while level < self._max_level and self._rng.random() < self._p:
            level += 1
        return level

    def _find_predecessors(self, key: str) -> List[_Node]:
        """Per-level nodes immediately before ``key``."""
        update: List[_Node] = [self._head] * self._max_level
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
            update[lv] = node
        return update

    # -- mutation --------------------------------------------------------------

    def insert(self, key: str, value: str) -> bool:
        """Insert or overwrite; returns True when the key is new."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for lv in range(level):
            node.forward[lv] = update[lv].forward[lv]
            update[lv].forward[lv] = node
        self._size += 1
        return True

    def remove(self, key: str) -> bool:
        """Delete ``key``; returns whether it was present."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for lv in range(len(node.forward)):
            if update[lv].forward[lv] is node:
                update[lv].forward[lv] = node.forward[lv]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True

    # -- queries --------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Optional[str]]:
        """Exact lookup; ``(found, value)``."""
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
        node = node.forward[0]
        if node is not None and node.key == key:
            return True, node.value
        return False, None

    def predecessor(self, key: str) -> Optional[str]:
        """Largest stored key strictly less than ``key``."""
        node = self._head
        for lv in range(self._level - 1, -1, -1):
            nxt = node.forward[lv]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lv]
        return node.key  # None when node is the head sentinel

    def successor(self, key: str) -> Optional[str]:
        """Smallest stored key strictly greater than ``key``."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node = node.forward[0]
        return node.key if node is not None else None

    def items_from(self, key: str) -> Iterator[Tuple[str, str]]:
        """Iterate ``(key, value)`` pairs with key >= ``key`` in order."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.forward[0]

    def items(self) -> Iterator[Tuple[str, str]]:
        """Iterate all pairs in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.forward[0]

    def first_key(self) -> Optional[str]:
        """Smallest stored key, or None when empty."""
        node = self._head.forward[0]
        return node.key if node is not None else None

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering, size accounting, and level monotonicity.

        Raises :class:`~repro.errors.InvariantError` when the level-0
        chain is out of order or mis-sized (an unlinked or cycled node),
        when a node linked at level ``k`` is missing from level ``k-1``
        (towers must be contiguous from the ground up), or when the
        tracked height disagrees with the head pointers.
        """
        # Level 0: strictly increasing keys, exactly _size reachable nodes.
        reachable: Set[int] = set()
        prev_key: Optional[str] = None
        count = 0
        node = self._head.forward[0]
        while node is not None:
            count += 1
            if count > self._size:
                raise InvariantError(
                    f"SkipList level-0 chain has more than size={self._size} "
                    f"nodes (unaccounted node or cycle)"
                )
            if node.key is None:
                raise InvariantError("SkipList data node carries the sentinel key")
            if prev_key is not None and prev_key >= node.key:
                raise InvariantError(
                    f"SkipList level-0 ordering broken: {prev_key!r} >= {node.key!r}"
                )
            prev_key = node.key
            reachable.add(id(node))
            node = node.forward[0]
        if count != self._size:
            raise InvariantError(
                f"SkipList size drift: {count} nodes reachable at level 0, "
                f"size says {self._size} (node unlinked without accounting?)"
            )
        # Levels 1+: each chain ordered and a subset of the level below.
        below = reachable
        for lv in range(1, self._level):
            ids_here: Set[int] = set()
            prev_key = None
            node = self._head.forward[lv]
            while node is not None:
                if id(node) not in below:
                    raise InvariantError(
                        f"SkipList level monotonicity broken: node {node.key!r} "
                        f"is linked at level {lv} but not at level {lv - 1}"
                    )
                if prev_key is not None and prev_key >= node.key:  # type: ignore[operator]
                    raise InvariantError(
                        f"SkipList level-{lv} ordering broken: "
                        f"{prev_key!r} >= {node.key!r}"
                    )
                prev_key = node.key
                ids_here.add(id(node))
                node = node.forward[lv]
            below = ids_here
        # Nothing may be linked at or above the tracked height.
        for lv in range(self._level, self._max_level):
            if self._head.forward[lv] is not None:
                raise InvariantError(
                    f"SkipList head links a node at level {lv} but tracked "
                    f"height is {self._level}"
                )
