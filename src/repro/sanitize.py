"""Runtime invariant sanitizer gating (the repo's ASan/TSan analogue).

Every core structure — caches, eviction policies, the skip list, the
LSM version — implements a ``check_invariants()`` method that raises
:class:`~repro.errors.InvariantError` when its internal state is
corrupted (byte-accounting drift, cross-structure inconsistency, broken
ordering).  Those checks are too expensive for every mutation in normal
runs, so this module provides the sampling gate that decides *when* to
run them, in the spirit of a sanitizer-instrumented debug build:

* ``REPRO_SANITIZE=1`` enables sampled checking everywhere (a check
  roughly every :data:`DEFAULT_PERIOD` mutations per structure, plus a
  full sweep at every engine window boundary);
* ``REPRO_SANITIZE=<n>`` sets the sampling period to ``n`` (``1`` checks
  after every mutation);
* :attr:`~repro.core.config.AdCacheConfig.sanitize` enables the same
  behaviour for one engine without touching the environment.

Sampling is probabilistic but *deterministic*: each :class:`Sanitizer`
draws check gaps from its own seeded :class:`random.Random`, so two runs
with the same seed check at identical points and reproduce identically —
the property the determinism harness asserts.
"""

from __future__ import annotations

import os
from random import Random
from typing import Optional, Protocol

#: Mutations per sampled check when ``REPRO_SANITIZE=1`` (prime, so the
#: sampling phase does not lock onto power-of-two workload periods).
DEFAULT_PERIOD = 53

_ENV_VAR = "REPRO_SANITIZE"
_FALSEY = ("", "0", "false", "False", "off", "no")


class Checkable(Protocol):
    """Anything exposing the ``check_invariants()`` protocol."""

    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.InvariantError` on corrupt state."""
        ...


def env_period() -> int:
    """Sampling period requested via ``REPRO_SANITIZE`` (0 = disabled)."""
    raw = os.environ.get(_ENV_VAR, "")
    if raw in _FALSEY:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_PERIOD
    if value <= 0:
        return 0
    return DEFAULT_PERIOD if value == 1 else value


def env_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitizer checks."""
    return env_period() > 0


class Sanitizer:
    """Deterministic sampled trigger for ``check_invariants()``.

    Parameters
    ----------
    period:
        Mean number of mutations between checks (>= 1; 1 checks after
        every mutation).
    seed:
        Seeds the gap-drawing RNG so the check schedule is a pure
        function of ``(seed, mutation count)``.
    """

    __slots__ = ("_period", "_rng", "_countdown", "checks_run")

    def __init__(self, period: int = DEFAULT_PERIOD, seed: int = 0) -> None:
        self._period = max(1, period)
        self._rng = Random(seed ^ 0x5A17)
        self._countdown = self._draw()
        self.checks_run = 0

    def _draw(self) -> int:
        if self._period == 1:
            return 1
        # Uniform on [1, 2p-1]: mean p, never degenerate.
        return self._rng.randint(1, 2 * self._period - 1)

    def after_mutation(self, target: Checkable) -> None:
        """Run ``target.check_invariants()`` if this mutation is sampled."""
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self._draw()
            self.checks_run += 1
            target.check_invariants()


def from_env(seed: int = 0) -> Optional["Sanitizer"]:
    """A :class:`Sanitizer` per ``REPRO_SANITIZE``, or None when disabled."""
    period = env_period()
    return Sanitizer(period, seed) if period else None
