"""Fleet-resilience primitives: circuit breakers and the degradation ladder.

Both are pure, deterministic state machines over *simulated* time — no
wall clock, no ambient randomness — so two same-seed runs drive them
through identical transition sequences.  Every transition is appended
to an audit log the simulator folds into the fleet fingerprint and
mirrors into the obs trace, making breaker flaps and degradation steps
first-class reproducible decisions, like cache admissions.

* :class:`CircuitBreaker` — one per shard, classic closed / open /
  half-open.  Failures (timeouts, crash-killed sub-requests) trip it
  open; after a cooldown it half-opens and a probe budget decides
  whether to close again.  The router consults ``allow()`` before
  dispatching point ops; scans route past an open breaker only as
  explicitly-partial results.
* :class:`DegradationLadder` — fleet-wide overload response.  Driven by
  aggregate queue pressure (and forced non-zero while any shard is
  down), it sheds progressively: scans first (L1), then non-resident
  point reads (L2), then everything but owner-tenant traffic (L3) —
  replacing the blunt everything-or-nothing queue shed with a policy
  that keeps the cheapest, most-valuable work flowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigError, InvariantError
from repro.faults.fleet import FleetFaultConfig
from repro.serve.base import ServeComponent

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATES = (CLOSED, OPEN, HALF_OPEN)

#: Degradation-ladder levels, lowest to highest severity.
LEVEL_NORMAL = 0
LEVEL_SHED_SCANS = 1
LEVEL_SHED_COLD_READS = 2
LEVEL_OWNERS_ONLY = 3

_MAX_LEVEL = LEVEL_OWNERS_ONLY


@dataclass
class ResilienceConfig:
    """Knobs for the serving fleet's failure handling.

    Attaching one of these to :class:`~repro.serve.simulator.ServeConfig`
    switches the resilience layer on; ``None`` (the default) keeps the
    legacy byte-identical behaviour.

    Attributes
    ----------
    replicas:
        Maintain a passive WAL-shipping replica per shard; required for
        crash failover and hedged reads.
    fleet_faults:
        Seeded shard-crash schedule (None = no crashes; breakers,
        hedging, and the ladder still run).
    breaker_window:
        Rolling outcome-window length per shard breaker.
    breaker_failure_threshold:
        Failure fraction over the window that trips the breaker.
    breaker_min_samples:
        Outcomes required before the threshold is consulted.
    breaker_open_us:
        Cooldown before an open breaker half-opens.
    breaker_half_open_probes:
        Consecutive successes required to close from half-open.
    op_timeout_us:
        Service time above which a sub-request counts as a breaker
        failure (0 disables; crashes still count).
    hedge_quantile:
        Per-tenant latency quantile after which a point read is hedged
        to the replica (0 disables hedging).
    hedge_floor_us:
        Lower bound on the hedge delay, guarding cold histograms.
    hedge_min_samples:
        Completed ops a tenant needs before its quantile is trusted.
    degrade_enter_frac / degrade_exit_frac:
        Fleet queue-pressure hysteresis band for stepping the ladder up
        / down (fractions of total queue capacity).
    degrade_dwell_us:
        Minimum simulated time between ladder moves (anti-flap).
    owner_tenants:
        The first N sessions are *owners* — the traffic L3 protects.
    """

    replicas: bool = True
    fleet_faults: Optional[FleetFaultConfig] = None
    breaker_window: int = 16
    breaker_failure_threshold: float = 0.5
    breaker_min_samples: int = 8
    breaker_open_us: float = 20_000.0
    breaker_half_open_probes: int = 4
    op_timeout_us: float = 0.0
    hedge_quantile: float = 0.0
    hedge_floor_us: float = 500.0
    hedge_min_samples: int = 32
    degrade_enter_frac: float = 0.75
    degrade_exit_frac: float = 0.40
    degrade_dwell_us: float = 5_000.0
    owner_tenants: int = 1

    def __post_init__(self) -> None:
        if self.breaker_window <= 0:
            raise ConfigError("breaker_window must be positive")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ConfigError("breaker_failure_threshold must lie in (0, 1]")
        if self.breaker_min_samples <= 0:
            raise ConfigError("breaker_min_samples must be positive")
        if self.breaker_open_us < 0:
            raise ConfigError("breaker_open_us must be >= 0")
        if self.breaker_half_open_probes <= 0:
            raise ConfigError("breaker_half_open_probes must be positive")
        if self.op_timeout_us < 0:
            raise ConfigError("op_timeout_us must be >= 0")
        if not 0.0 <= self.hedge_quantile < 1.0:
            raise ConfigError("hedge_quantile must lie in [0, 1)")
        if self.hedge_floor_us < 0:
            raise ConfigError("hedge_floor_us must be >= 0")
        if self.hedge_min_samples <= 0:
            raise ConfigError("hedge_min_samples must be positive")
        if not 0.0 < self.degrade_enter_frac <= 1.0:
            raise ConfigError("degrade_enter_frac must lie in (0, 1]")
        if not 0.0 <= self.degrade_exit_frac < self.degrade_enter_frac:
            raise ConfigError(
                "degrade_exit_frac must lie in [0, degrade_enter_frac)"
            )
        if self.degrade_dwell_us < 0:
            raise ConfigError("degrade_dwell_us must be >= 0")
        if self.owner_tenants < 0:
            raise ConfigError("owner_tenants must be >= 0")


class CircuitBreaker(ServeComponent):
    """Per-shard health gate: closed / open / half-open.

    All transitions are functions of recorded outcomes and simulated
    time passed in by the caller; the breaker never looks at a clock of
    its own.  The audit log (``transitions``) is part of the run's
    deterministic output.
    """

    __slots__ = (
        "_sanitizer",
        "shard_id",
        "config",
        "state",
        "_window",
        "_reopen_at_us",
        "_probes_left",
        "successes",
        "failures",
        "refusals",
        "transitions",
    )

    def __init__(self, shard_id: int, config: ResilienceConfig) -> None:
        super().__init__()
        self.shard_id = shard_id
        self.config = config
        self.state = CLOSED
        #: Rolling outcome window: True = failure.
        self._window: List[bool] = []
        self._reopen_at_us = 0.0
        self._probes_left = 0
        self.successes = 0
        self.failures = 0
        self.refusals = 0
        #: Audit log of ``(time_us, from, to, reason)``.
        self.transitions: List[Tuple[float, str, str, str]] = []

    # -- transitions -------------------------------------------------------

    def _transition(self, now_us: float, to: str, reason: str) -> None:
        self.transitions.append((now_us, self.state, to, reason))
        self.state = to
        if to == OPEN:
            self._reopen_at_us = now_us + self.config.breaker_open_us
            self._window.clear()
        elif to == HALF_OPEN:
            self._probes_left = self.config.breaker_half_open_probes
        elif to == CLOSED:
            self._window.clear()
        self._after_mutation()

    def _tick(self, now_us: float) -> None:
        """Lazy time-driven transition: open cools down to half-open."""
        if self.state == OPEN and now_us >= self._reopen_at_us:
            self._transition(now_us, HALF_OPEN, "cooldown")

    def force_open(self, now_us: float, reason: str) -> None:
        """Trip the breaker immediately (shard crash)."""
        if self.state != OPEN:
            self._transition(now_us, OPEN, reason)
        else:
            self._reopen_at_us = now_us + self.config.breaker_open_us

    def half_open(self, now_us: float, reason: str) -> None:
        """Move straight to half-open (replica promoted; probe it)."""
        if self.state != HALF_OPEN:
            self._transition(now_us, HALF_OPEN, reason)

    # -- outcomes ----------------------------------------------------------

    def record_success(self, now_us: float) -> None:
        """One sub-request served within its timeout."""
        self._tick(now_us)
        self.successes += 1
        if self.state == HALF_OPEN:
            self._probes_left -= 1
            if self._probes_left <= 0:
                self._transition(now_us, CLOSED, "probes_passed")
            return
        self._push(False, now_us)

    def record_failure(self, now_us: float, reason: str = "timeout") -> None:
        """One sub-request timed out or died with its shard."""
        self._tick(now_us)
        self.failures += 1
        if self.state == HALF_OPEN:
            self._transition(now_us, OPEN, f"probe_{reason}")
            return
        self._push(True, now_us)

    def _push(self, failed: bool, now_us: float) -> None:
        cfg = self.config
        window = self._window
        window.append(failed)
        if len(window) > cfg.breaker_window:
            del window[0]
        if (
            self.state == CLOSED
            and len(window) >= cfg.breaker_min_samples
            and sum(window) / len(window) >= cfg.breaker_failure_threshold
        ):
            self._transition(now_us, OPEN, "failure_rate")
        else:
            self._after_mutation()

    # -- gate --------------------------------------------------------------

    def allow(self, now_us: float) -> bool:
        """Whether the router may dispatch a point op to this shard."""
        self._tick(now_us)
        if self.state == OPEN:
            self.refusals += 1
            return False
        return True

    # -- sanitizer protocol ------------------------------------------------

    def check_invariants(self) -> None:
        """State is legal and the audit log is a connected chain."""
        if self.state not in _STATES:
            raise InvariantError(
                f"CircuitBreaker shard {self.shard_id}: unknown state "
                f"{self.state!r}"
            )
        if len(self._window) > self.config.breaker_window:
            raise InvariantError(
                f"CircuitBreaker shard {self.shard_id}: window overflow"
            )
        if min(self.successes, self.failures, self.refusals) < 0:
            raise InvariantError(
                f"CircuitBreaker shard {self.shard_id}: negative counter"
            )
        prev = CLOSED
        for time_us, src, dst, _reason in self.transitions:
            if src != prev or dst not in _STATES or src == dst:
                raise InvariantError(
                    f"CircuitBreaker shard {self.shard_id}: broken audit "
                    f"chain at {time_us} ({src} -> {dst})"
                )
            prev = dst
        if prev != self.state:
            raise InvariantError(
                f"CircuitBreaker shard {self.shard_id}: audit tail {prev} "
                f"!= state {self.state}"
            )


class DegradationLadder(ServeComponent):
    """Fleet-wide graceful-degradation state machine (levels 0-3).

    ``observe()`` is called at every arrival with the current fleet
    queue pressure; levels move one step at a time through a hysteresis
    band with a minimum dwell between moves.  While any shard is down
    the ladder is floored at L1 (scans shed), since scatter-gather over
    a dead shard could only ever be partial.
    """

    __slots__ = (
        "_sanitizer",
        "config",
        "level",
        "_last_move_us",
        "shed_scans",
        "shed_cold_reads",
        "shed_non_owner",
        "transitions",
    )

    def __init__(self, config: ResilienceConfig) -> None:
        super().__init__()
        self.config = config
        self.level = LEVEL_NORMAL
        self._last_move_us = float("-inf")
        self.shed_scans = 0
        self.shed_cold_reads = 0
        self.shed_non_owner = 0
        #: Audit log of ``(time_us, from_level, to_level, pressure)``.
        self.transitions: List[Tuple[float, int, int, float]] = []

    def observe(self, pressure: float, any_down: bool, now_us: float) -> None:
        """Re-evaluate the level from fleet queue pressure.

        ``pressure`` is waiting sub-requests over total queue capacity.
        """
        cfg = self.config
        floor = LEVEL_SHED_SCANS if any_down else LEVEL_NORMAL
        target = self.level
        if now_us - self._last_move_us >= cfg.degrade_dwell_us:
            if pressure >= cfg.degrade_enter_frac and self.level < _MAX_LEVEL:
                target = self.level + 1
            elif pressure <= cfg.degrade_exit_frac and self.level > floor:
                target = self.level - 1
        target = max(target, floor)
        if target != self.level:
            self.transitions.append((now_us, self.level, target, pressure))
            self.level = target
            self._last_move_us = now_us
            self._after_mutation()

    def admits(self, kind: str, owner: bool, resident: bool) -> Optional[str]:
        """Gate one arriving request; returns a drop reason or None.

        Owner-tenant traffic is never degraded below the L1 scan shed:
        protecting it is the entire point of L3.
        """
        level = self.level
        if level == LEVEL_NORMAL:
            return None
        effective = min(level, LEVEL_SHED_SCANS) if owner else level
        if kind == "scan" and effective >= LEVEL_SHED_SCANS:
            self.shed_scans += 1
            self._after_mutation()
            return "degraded_scan"
        if effective >= LEVEL_OWNERS_ONLY:
            self.shed_non_owner += 1
            self._after_mutation()
            return "degraded_non_owner"
        if kind == "get" and effective >= LEVEL_SHED_COLD_READS and not resident:
            self.shed_cold_reads += 1
            self._after_mutation()
            return "degraded_cold_read"
        return None

    # -- sanitizer protocol ------------------------------------------------

    def check_invariants(self) -> None:
        """Level is in range; the audit log is a stepwise chain."""
        if not LEVEL_NORMAL <= self.level <= _MAX_LEVEL:
            raise InvariantError(
                f"DegradationLadder: level {self.level} out of range"
            )
        if min(self.shed_scans, self.shed_cold_reads, self.shed_non_owner) < 0:
            raise InvariantError("DegradationLadder: negative shed counter")
        prev = LEVEL_NORMAL
        for time_us, src, dst, _pressure in self.transitions:
            if src != prev or not LEVEL_NORMAL <= dst <= _MAX_LEVEL:
                raise InvariantError(
                    f"DegradationLadder: broken audit chain at {time_us} "
                    f"({src} -> {dst})"
                )
            prev = dst
        if prev != self.level:
            raise InvariantError(
                f"DegradationLadder: audit tail {prev} != level {self.level}"
            )
