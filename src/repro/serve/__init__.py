"""Deterministic multi-tenant serving layer over the cache + LSM stack.

Event-driven simulation of a sharded key-value service: a shard router
partitions the keyspace across independent engines, open- and
closed-loop client sessions offer load, bounded per-shard queues apply
backpressure and shed excess (with full accounting), a global budget
arbiter re-splits the fleet cache budget from per-shard window exports,
and every request's latency — queue wait plus cost-model service time —
lands in mergeable log-bucketed histograms with per-tenant breakdowns.

The resilience layer (:mod:`repro.serve.resilience`) adds a fleet
failure model on the same deterministic event loop: WAL-shipped passive
replicas with crash failover, per-shard circuit breakers, hedged point
reads, per-op deadlines, and a graceful-degradation ladder.
"""

from repro.serve.arbiter import BudgetArbiter
from repro.serve.base import ServeComponent
from repro.serve.events import EventLoop, Timer
from repro.serve.queueing import Request, RequestQueue, SubRequest
from repro.serve.resilience import (
    CircuitBreaker,
    DegradationLadder,
    ResilienceConfig,
)
from repro.serve.router import ShardRouter, fnv1a_64
from repro.serve.session import (
    ClientSession,
    PhaseSlot,
    ScriptedSession,
    TenantConfig,
)
from repro.serve.simulator import (
    ServeConfig,
    ServeResult,
    ShardResult,
    TenantResult,
    run_serve,
)

__all__ = [
    "BudgetArbiter",
    "CircuitBreaker",
    "ClientSession",
    "DegradationLadder",
    "EventLoop",
    "PhaseSlot",
    "Request",
    "RequestQueue",
    "ResilienceConfig",
    "ScriptedSession",
    "ServeComponent",
    "ServeConfig",
    "ServeResult",
    "ShardResult",
    "ShardRouter",
    "SubRequest",
    "TenantConfig",
    "TenantResult",
    "Timer",
    "fnv1a_64",
    "run_serve",
]
