"""Deterministic multi-tenant serving layer over the cache + LSM stack.

Event-driven simulation of a sharded key-value service: a shard router
partitions the keyspace across independent engines, open- and
closed-loop client sessions offer load, bounded per-shard queues apply
backpressure and shed excess (with full accounting), a global budget
arbiter re-splits the fleet cache budget from per-shard window exports,
and every request's latency — queue wait plus cost-model service time —
lands in mergeable log-bucketed histograms with per-tenant breakdowns.
"""

from repro.serve.arbiter import BudgetArbiter
from repro.serve.base import ServeComponent
from repro.serve.events import EventLoop
from repro.serve.queueing import Request, RequestQueue, SubRequest
from repro.serve.router import ShardRouter, fnv1a_64
from repro.serve.session import ClientSession, TenantConfig
from repro.serve.simulator import (
    ServeConfig,
    ServeResult,
    ShardResult,
    TenantResult,
    run_serve,
)

__all__ = [
    "BudgetArbiter",
    "ClientSession",
    "EventLoop",
    "Request",
    "RequestQueue",
    "ServeComponent",
    "ServeConfig",
    "ServeResult",
    "ShardResult",
    "ShardRouter",
    "SubRequest",
    "TenantConfig",
    "TenantResult",
    "fnv1a_64",
    "run_serve",
]
