"""Client sessions: open-loop and closed-loop tenants.

An **open-loop** client issues requests on a Poisson process (seeded
exponential inter-arrival times) regardless of completions — the
arrival rate is an offered load, so saturation shows up as queueing and
shed requests, not as a silently slowed client.  A **closed-loop**
client keeps exactly one request in flight and thinks (exponential
think time) between completions, so its throughput adapts to service
latency.  Both draw their operation stream from a deterministic
:class:`~repro.workloads.generator.WorkloadGenerator` and all timing
randomness from a per-session seeded ``Random``.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator, Optional

from repro.bench.report import LatencyHistogram
from repro.errors import ConfigError
from repro.workloads.generator import Operation, WorkloadGenerator

#: Client behaviour modes.
MODES = ("open", "closed")


@dataclass
class TenantConfig:
    """One client's identity, behaviour mode, and timing parameters."""

    name: str
    ops: int
    mode: str = "open"
    #: Open loop: offered load in operations per second.
    arrival_rate_ops_s: float = 1200.0
    #: Closed loop: mean think time between completions, microseconds.
    think_time_us: float = 1000.0

    def __post_init__(self) -> None:
        if self.ops <= 0:
            raise ConfigError(f"tenant {self.name!r}: ops must be positive")
        if self.mode not in MODES:
            raise ConfigError(
                f"tenant {self.name!r}: mode must be one of {MODES}, "
                f"got {self.mode!r}"
            )
        if self.mode == "open" and self.arrival_rate_ops_s <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: open-loop arrival rate must be positive"
            )
        if self.mode == "closed" and self.think_time_us < 0:
            raise ConfigError(
                f"tenant {self.name!r}: think time must be >= 0"
            )


class ClientSession:
    """One tenant's operation stream, timing RNG, and accounting."""

    __slots__ = (
        "config",
        "name",
        "_ops",
        "_rng",
        "issued",
        "completed",
        "rejected",
        "latency",
    )

    def __init__(
        self, config: TenantConfig, generator: WorkloadGenerator, seed: int = 0
    ) -> None:
        self.config = config
        self.name = config.name
        self._ops: Iterator[Operation] = generator.ops(config.ops)
        self._rng = Random(seed)
        self.issued = 0
        self.completed = 0
        self.rejected = 0
        self.latency = LatencyHistogram()

    @property
    def mode(self) -> str:
        """``"open"`` or ``"closed"``."""
        return self.config.mode

    def next_operation(self) -> Optional[Operation]:
        """The next workload operation, or None when the stream is done."""
        op = next(self._ops, None)
        if op is not None:
            self.issued += 1
        return op

    def next_delay_us(self) -> float:
        """Simulated delay before this client's next issue.

        Open loop: exponential inter-arrival at the configured rate.
        Closed loop: exponential think time (0 when think time is 0).
        """
        if self.config.mode == "open":
            # expovariate(lambda) has mean 1/lambda; rate is per second,
            # the loop runs in microseconds.
            return self._rng.expovariate(self.config.arrival_rate_ops_s / 1e6)
        if self.config.think_time_us <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.config.think_time_us)
