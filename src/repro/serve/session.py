"""Client sessions: open-loop, closed-loop, and scenario-scripted tenants.

An **open-loop** client issues requests on a Poisson process (seeded
exponential inter-arrival times) regardless of completions — the
arrival rate is an offered load, so saturation shows up as queueing and
shed requests, not as a silently slowed client.  A **closed-loop**
client keeps exactly one request in flight and thinks (exponential
think time) between completions, so its throughput adapts to service
latency.  Both draw their operation stream from a deterministic
:class:`~repro.workloads.generator.WorkloadGenerator` and all timing
randomness from a per-session seeded ``Random``.

A **scripted** session (:class:`ScriptedSession`) plays a scenario
schedule: simulated time is divided into phases, each giving the tenant
its own operation stream, op budget, and arrival-rate scale.  Dormant
phases (no budget, or the tenant absent from the phase) make the
session sleep until the phase ends — that is how diurnal waves, flash
crowds, and tenant arrival/churn are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.bench.report import LatencyHistogram
from repro.errors import ConfigError
from repro.workloads.generator import Operation, WorkloadGenerator

#: Client behaviour modes.
MODES = ("open", "closed")


@dataclass
class TenantConfig:
    """One client's identity, behaviour mode, and timing parameters."""

    name: str
    ops: int
    mode: str = "open"
    #: Open loop: offered load in operations per second.
    arrival_rate_ops_s: float = 1200.0
    #: Closed loop: mean think time between completions, microseconds.
    think_time_us: float = 1000.0

    def __post_init__(self) -> None:
        if self.ops <= 0:
            raise ConfigError(f"tenant {self.name!r}: ops must be positive")
        if self.mode not in MODES:
            raise ConfigError(
                f"tenant {self.name!r}: mode must be one of {MODES}, "
                f"got {self.mode!r}"
            )
        if self.mode == "open" and self.arrival_rate_ops_s <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: open-loop arrival rate must be positive"
            )
        if self.mode == "closed" and self.think_time_us < 0:
            raise ConfigError(
                f"tenant {self.name!r}: think time must be >= 0"
            )


class ClientSession:
    """One tenant's operation stream, timing RNG, and accounting."""

    __slots__ = (
        "config",
        "name",
        "_ops",
        "_rng",
        "issued",
        "completed",
        "rejected",
        "latency",
    )

    def __init__(
        self, config: TenantConfig, generator: WorkloadGenerator, seed: int = 0
    ) -> None:
        self.config = config
        self.name = config.name
        self._ops: Iterator[Operation] = generator.ops(config.ops)
        self._rng = Random(seed)
        self.issued = 0
        self.completed = 0
        self.rejected = 0
        self.latency = LatencyHistogram()

    @property
    def mode(self) -> str:
        """``"open"`` or ``"closed"``."""
        return self.config.mode

    def next_operation(self) -> Optional[Operation]:
        """The next workload operation, or None when the stream is done."""
        op = next(self._ops, None)
        if op is not None:
            self.issued += 1
        return op

    def next_delay_us(self) -> float:
        """Simulated delay before this client's next issue.

        Open loop: exponential inter-arrival at the configured rate.
        Closed loop: exponential think time (0 when think time is 0).
        """
        if self.config.mode == "open":
            # expovariate(lambda) has mean 1/lambda; rate is per second,
            # the loop runs in microseconds.
            return self._rng.expovariate(self.config.arrival_rate_ops_s / 1e6)
        if self.config.think_time_us <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.config.think_time_us)


@dataclass
class PhaseSlot:
    """One tenant's script for one scenario phase.

    ``stream`` is None for dormant phases; ``ops_left`` counts down as
    the session consumes the phase's budget.
    """

    start_us: float
    end_us: float
    ops_left: int
    rate_scale: float
    stream: Optional[Iterator[Operation]]

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ConfigError(
                f"phase slot must have positive duration, got "
                f"[{self.start_us:g}, {self.end_us:g})"
            )
        if self.ops_left < 0:
            raise ConfigError(f"phase slot ops must be >= 0, got {self.ops_left}")

    @property
    def dormant(self) -> bool:
        """Whether this slot can never issue an operation."""
        return self.stream is None or self.ops_left <= 0 or self.rate_scale <= 0


#: ``poll`` outcomes: issue an op now / sleep until a time / stream done.
PollResult = Tuple[str, float, Optional[Operation]]


class ScriptedSession(ClientSession):
    """A tenant driven by a scenario schedule instead of one stream.

    Always open-loop: the offered load is the script, scaled per phase.
    The simulator drives it through :meth:`poll` — which either hands
    over the next operation, asks to sleep until a phase boundary, or
    reports the script exhausted — and spaces issues with
    :meth:`arrival_delay_us` (exponential at the phase-scaled rate).
    """

    __slots__ = ("slots", "_slot_idx")

    def __init__(
        self, config: TenantConfig, slots: Sequence[PhaseSlot], seed: int = 0
    ) -> None:
        if config.mode != "open":
            raise ConfigError(
                f"tenant {config.name!r}: scripted sessions are open-loop only"
            )
        # Deliberately no super().__init__: the parent couples its op
        # stream to one generator; a scripted session owns one per slot.
        self.config = config
        self.name = config.name
        self._ops = iter(())  # parent protocol; poll() drives issuance
        self._rng = Random(seed)
        self.issued = 0
        self.completed = 0
        self.rejected = 0
        self.latency = LatencyHistogram()
        self.slots: List[PhaseSlot] = list(slots)
        self._slot_idx = 0
        if not self.slots:
            raise ConfigError(f"tenant {config.name!r}: empty phase script")

    @property
    def current_slot(self) -> Optional[PhaseSlot]:
        """The slot the session is in (None once the script is done)."""
        if self._slot_idx >= len(self.slots):
            return None
        return self.slots[self._slot_idx]

    def poll(self, now_us: float) -> PollResult:
        """Advance the script to ``now_us`` and decide what happens next.

        Returns ``("issue", 0, op)`` when an operation should enter the
        system now, ``("sleep", wake_us, None)`` when the session is
        dormant until ``wake_us`` (always > ``now_us``), and
        ``("done", 0, None)`` once every slot is exhausted.
        """
        while self._slot_idx < len(self.slots):
            slot = self.slots[self._slot_idx]
            if now_us >= slot.end_us:
                self._slot_idx += 1
                continue
            if now_us < slot.start_us:
                return ("sleep", slot.start_us, None)
            if slot.dormant:
                return ("sleep", slot.end_us, None)
            assert slot.stream is not None
            op = next(slot.stream, None)
            if op is None:
                slot.ops_left = 0
                return ("sleep", slot.end_us, None)
            slot.ops_left -= 1
            self.issued += 1
            return ("issue", 0.0, op)
        return ("done", 0.0, None)

    def arrival_delay_us(self) -> float:
        """Exponential inter-arrival delay at the phase-scaled rate."""
        scale = 1.0
        slot = self.current_slot
        if slot is not None and slot.rate_scale > 0:
            scale = slot.rate_scale
        rate_per_us = self.config.arrival_rate_ops_s * scale / 1e6
        return self._rng.expovariate(rate_per_us)
