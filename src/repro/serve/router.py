"""Shard router: keyspace partitioning + scatter-gather planning.

Partitions the workload keyspace across ``num_shards`` independent
engines in one of two modes:

* ``hash`` (default) — FNV-1a over the key modulo the shard count.
  Point operations route to exactly one shard; scans scatter to every
  shard (each owns an arbitrary subset of the range) and the gather
  merges the per-shard sorted results.  Because the shards' key sets
  are disjoint and each returns its *own* first ``length`` entries at
  or after the start key, the merged-and-truncated result equals an
  unsharded scan.
* ``range`` — contiguous slices of the dense integer keyspace
  (``key_of(0) .. key_of(num_keys-1)``).  Scans touch only the shards
  whose slice overlaps ``[start, start+length)``; the gather
  concatenates in shard order.  Deletions can shift a scan's true
  window past the last planned shard, so range-mode sub-scans request
  the full remaining length from each overlapping shard and the merge
  truncates — exact for delete-free workloads, and never returns wrong
  entries (only possibly fewer) otherwise.

The router is pure bookkeeping: it owns no budget and holds no state
beyond the immutable partition map.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import AbstractSet, Dict, List, Sequence, Tuple

from repro.core.engine import KVEngine
from repro.errors import ConfigError
from repro.workloads.generator import Operation
from repro.workloads.keys import index_of, key_of

Entry = Tuple[str, str]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF

PARTITION_MODES = ("hash", "range")


def fnv1a_64(key: str) -> int:
    """Platform-independent 64-bit FNV-1a (``hash()`` is salted per run)."""
    h = _FNV_OFFSET
    for byte in key.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _FNV_MASK
    return h


class ShardRouter:
    """Routes operations to shards and plans scatter-gather fan-out."""

    def __init__(
        self, num_shards: int, num_keys: int, partition: str = "hash"
    ) -> None:
        if num_shards <= 0:
            raise ConfigError(f"num_shards must be positive, got {num_shards}")
        if num_keys <= 0:
            raise ConfigError(f"num_keys must be positive, got {num_keys}")
        if partition not in PARTITION_MODES:
            raise ConfigError(
                f"unknown partition mode {partition!r}; choose from "
                f"{PARTITION_MODES}"
            )
        self.num_shards = num_shards
        self.num_keys = num_keys
        self.partition = partition
        #: Range mode: shard ``i`` owns key ids ``[cuts[i], cuts[i+1])``.
        self._cuts = [
            num_keys * i // num_shards for i in range(num_shards + 1)
        ]

    # -- ownership ------------------------------------------------------------

    def shard_of_id(self, key_id: int) -> int:
        """Owning shard of logical key id ``key_id``."""
        if self.partition == "hash":
            return fnv1a_64(key_of(key_id)) % self.num_shards
        return self._owner_of_id(key_id)

    def shard_of_key(self, key: str) -> int:
        """Owning shard of workload key ``key``."""
        if self.partition == "hash":
            return fnv1a_64(key) % self.num_shards
        return self._owner_of_id(index_of(key))

    def _owner_of_id(self, key_id: int) -> int:
        key_id = max(0, min(self.num_keys - 1, key_id))
        # cuts are evenly spaced; direct arithmetic beats bisect here and
        # is exact because cuts[i] = floor(num_keys * i / num_shards).
        shard = key_id * self.num_shards // self.num_keys
        while self._cuts[shard + 1] <= key_id:  # pragma: no cover - safety
            shard += 1
        while self._cuts[shard] > key_id:  # pragma: no cover - safety
            shard -= 1
        return shard

    def shard_ids(self) -> List[List[int]]:
        """Each shard's sorted list of owned key ids (for DB seeding)."""
        out: List[List[int]] = [[] for _ in range(self.num_shards)]
        for key_id in range(self.num_keys):
            out[self.shard_of_id(key_id)].append(key_id)
        return out

    # -- planning ------------------------------------------------------------

    def plan(self, op: Operation) -> List[Tuple[int, Operation]]:
        """The (shard, sub-operation) fan-out for one client operation."""
        if op.kind != "scan":
            return [(self.shard_of_key(op.key), op)]
        if self.partition == "hash":
            # Every shard holds part of any range: full scatter.
            return [(shard, op) for shard in range(self.num_shards)]
        start_id = max(0, min(self.num_keys - 1, index_of(op.key)))
        last_id = min(self.num_keys - 1, start_id + max(1, op.length) - 1)
        first = self._owner_of_id(start_id)
        last = self._owner_of_id(last_id)
        plan: List[Tuple[int, Operation]] = []
        for shard in range(first, last + 1):
            sub_start = max(start_id, self._cuts[shard])
            plan.append(
                (shard, Operation("scan", key_of(sub_start), length=op.length))
            )
        return plan

    def split_batch(
        self, ops: Sequence[Operation]
    ) -> Dict[int, List[Tuple[int, Operation]]]:
        """Partition a mixed operation batch into per-shard sub-batches.

        Maps each shard to its ``(batch_index, sub_operation)`` list in
        batch arrival order.  The split is exact: flattening the
        per-shard lists recovers precisely the pairs that planning each
        operation individually produces — points land on their single
        owner, hash-partition scans scatter to every shard, and
        range-partition scans cover exactly the overlapping slices with
        their per-shard adjusted start keys.
        """
        per_shard: Dict[int, List[Tuple[int, Operation]]] = {}
        for index, op in enumerate(ops):
            for shard_id, sub_op in self.plan(op):
                per_shard.setdefault(shard_id, []).append((index, sub_op))
        return per_shard

    def plan_healthy(
        self, op: Operation, unavailable: AbstractSet[int]
    ) -> Tuple[List[Tuple[int, Operation]], List[int]]:
        """Plan around shards the health layer marked unavailable.

        Returns ``(live_plan, dropped_shards)``.  Scans degrade to the
        surviving shards — the gather then carries an explicit *partial*
        marker; a point op whose owner is unavailable gets an empty plan
        (the caller fails it fast instead of stalling on a dead queue).
        The split is a pure function of the plan and the unavailable
        set, so identical health histories re-target identically in
        both partition modes.
        """
        plan = self.plan(op)
        if not unavailable:
            return plan, []
        live = [(shard, sub) for shard, sub in plan if shard not in unavailable]
        dropped = [shard for shard, _ in plan if shard in unavailable]
        return live, dropped

    def merge_scan(self, parts: List[List[Entry]], length: int) -> List[Entry]:
        """Gather: merge per-shard sorted results, truncate to ``length``.

        Shards own disjoint key sets, so the k-way merge is a strict
        total order by key in both partition modes.
        """
        if len(parts) == 1:
            return parts[0][:length]
        return list(islice(heapq.merge(*parts), length))

    # -- execution ------------------------------------------------------------

    @staticmethod
    def execute(engine: KVEngine, op: Operation) -> List[Entry]:
        """Run one sub-operation on a shard engine; scans return entries."""
        if op.kind == "get":
            engine.get(op.key)
        elif op.kind == "scan":
            return engine.scan(op.key, op.length)
        elif op.kind == "put":
            engine.put(op.key, op.value or "")
        elif op.kind == "delete":
            engine.delete(op.key)
        else:
            raise ConfigError(f"unknown operation kind {op.kind!r}")
        return []

    @staticmethod
    def execute_batch(
        engine: KVEngine, ops: Sequence[Operation]
    ) -> List[List[Entry]]:  # hot-path
        """Run one shard sub-batch through the engine's batched API.

        Maximal same-kind runs preserve per-shard operation order (a
        get queued after a put of the same key still observes the
        write) while the ops inside a run share one ``multi_*`` call —
        bloom probes and sketch hashes vectorized, duplicate block
        fetches coalesced.  Returns each op's entries (empty for
        non-scans), aligned with ``ops``.
        """
        out: List[List[Entry]] = [[] for _ in ops]
        i, n = 0, len(ops)
        while i < n:
            kind = ops[i].kind
            j = i + 1
            while j < n and ops[j].kind == kind:
                j += 1
            run = ops[i:j]
            if kind == "get":
                engine.multi_get([op.key for op in run])
            elif kind == "scan":
                results = engine.multi_scan(
                    [(op.key, op.length) for op in run]
                )
                for offset, entries in enumerate(results):
                    out[i + offset] = entries
            elif kind == "put":
                engine.multi_put([(op.key, op.value or "") for op in run])
            elif kind == "delete":
                for op in run:
                    engine.delete(op.key)
            else:
                raise ConfigError(f"unknown operation kind {kind!r}")
            i = j
        return out
