"""Serving-layer component protocol: invariants + sampled sanitizing.

Every budget-holding serving component (bounded request queues, the
global budget arbiter) implements the same ``check_invariants()``
protocol the caches do, and carries the same deterministic sampled
sanitizer gate (:mod:`repro.sanitize`), so ``REPRO_SANITIZE`` covers
the serving layer with the exact machinery that covers the storage
stack.  Lint rule CACHE001 statically enforces the protocol on every
``ServeComponent`` subclass, mirroring its ``CacheBase`` coverage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro import sanitize


class ServeComponent(ABC):
    """Base for serving components that hold budget or shed load.

    Mirrors :class:`~repro.cache.base.CacheBase`'s sanitizer surface so
    the sampled ``REPRO_SANITIZE`` schedule, the explicit
    ``enable_sanitizer`` switch, and the window-boundary full sweep all
    work identically for queues and arbiters.
    """

    #: Sampled invariant-check gate; None when sanitizing is disabled.
    _sanitizer: Optional[sanitize.Sanitizer]

    def __init__(self) -> None:
        # Set here (not as a class default) so slotted subclasses that
        # list ``_sanitizer`` in ``__slots__`` start disabled too.
        self._sanitizer = None

    @abstractmethod
    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.InvariantError` on corrupt state."""

    def enable_sanitizer(
        self, period: int = sanitize.DEFAULT_PERIOD, seed: int = 0
    ) -> None:
        """Turn on sampled invariant checking for this component."""
        self._sanitizer = sanitize.Sanitizer(period, seed)

    def sanitize_from_env(self, seed: int = 0) -> None:
        """Adopt the ``REPRO_SANITIZE`` schedule (no-op when disabled)."""
        self._sanitizer = sanitize.from_env(seed)

    @property
    def sanitizing(self) -> bool:
        """Whether sampled invariant checking is enabled."""
        return self._sanitizer is not None

    def _after_mutation(self) -> None:
        """Hot-path hook: run a sampled invariant check when enabled."""
        if self._sanitizer is not None:
            self._sanitizer.after_mutation(self)
