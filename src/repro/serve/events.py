"""Deterministic discrete-event scheduler for the serving simulator.

A binary heap of ``(time_us, seq, action)`` entries over *simulated*
microseconds — the same currency the sim clock's cost model charges.
There is no wall clock anywhere: time only advances when an event is
dispatched, and ties are broken by a monotonically increasing sequence
number, so two runs that schedule the same events in the same order
dispatch them in the same order, byte for byte.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError

Action = Callable[[], None]


class Timer:
    """Handle for a cancellable scheduled action.

    Cancellation is *lazy*: the heap entry stays put and the wrapper
    checks the flag at fire time, so cancelling never perturbs heap
    order (and thus never perturbs determinism) — a hedge timer whose
    primary answered first simply fires as a no-op.
    """

    __slots__ = ("cancelled", "fired")

    def __init__(self) -> None:
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Suppress the action if it has not fired yet."""
        self.cancelled = True


class EventLoop:
    """Minimal deterministic event loop over simulated microseconds."""

    __slots__ = ("_heap", "_seq", "_now", "events_dispatched")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Action]] = []
        self._seq = 0
        self._now = 0.0
        self.events_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Events scheduled but not yet dispatched."""
        return len(self._heap)

    def at(self, time_us: float, action: Action) -> None:
        """Schedule ``action`` at absolute simulated time ``time_us``."""
        if time_us < self._now:
            raise ConfigError(
                f"cannot schedule into the past: {time_us} < now {self._now}"
            )
        heapq.heappush(self._heap, (time_us, self._seq, action))
        self._seq += 1

    def after(self, delay_us: float, action: Action) -> None:
        """Schedule ``action`` ``delay_us`` simulated microseconds from now."""
        if delay_us < 0:
            raise ConfigError(f"delay must be >= 0, got {delay_us}")
        self.at(self._now + delay_us, action)

    def after_cancellable(self, delay_us: float, action: Action) -> Timer:
        """Like :meth:`after`, returning a :class:`Timer` handle."""
        timer = Timer()

        def fire() -> None:
            timer.fired = True
            if not timer.cancelled:
                action()

        self.after(delay_us, fire)
        return timer

    def step(self) -> bool:
        """Dispatch the earliest event; False when the heap is empty."""
        if not self._heap:
            return False
        time_us, _seq, action = heapq.heappop(self._heap)
        self._now = time_us
        self.events_dispatched += 1
        action()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Dispatch until empty (or ``max_events``); returns count run."""
        ran = 0
        while self._heap:
            if max_events is not None and ran >= max_events:
                break
            self.step()
            ran += 1
        return ran
