"""The deterministic multi-tenant serving simulator.

Composes the serving layer end to end: N client sessions issue
operations into a shard router; each shard is an independent seeded
engine (its own LSM tree + caches) behind a bounded request queue and a
single logical server; service times are charged from the sim clock's
cost-model deltas, so per-request latency = queue wait + metered engine
work, in simulated microseconds.  A global budget arbiter periodically
re-splits the fleet cache budget across shards from their window
exports.

Everything is event-driven off one :class:`~repro.serve.events.EventLoop`
and every random draw comes from per-component seeded generators, so a
configuration reproduces byte-for-byte: the event trace digest, the
latency histograms, and every counter are pure functions of the config.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import sanitize
from repro.bench.report import LatencyHistogram, format_table, latency_table
from repro.bench.simclock import CostModel, SimClock
from repro.bench.strategies import build_engine
from repro.core.engine import KVEngine
from repro.core.stats import WindowStats, merge_windows
from repro.errors import ConfigError, ObsError
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.obs.metrics import (
    WindowSnapshot,
    export_fleet_metrics,
    merge_window_snapshots,
)
from repro.obs.recorder import (
    EVENTS_FILE,
    MANIFEST_FILE,
    METRICS_FILE,
    ObsRecorder,
)
from repro.obs.trace import export_fleet_events
from repro.serve.arbiter import BudgetArbiter
from repro.serve.events import EventLoop
from repro.serve.queueing import Request, RequestQueue, SubRequest
from repro.serve.router import ShardRouter
from repro.serve.session import ClientSession, TenantConfig
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
)
from repro.workloads.keys import key_of, value_of


@dataclass
class ServeConfig:
    """Everything that defines one serving run (and thus its bytes)."""

    num_clients: int = 8
    num_shards: int = 4
    total_ops: int = 20_000
    seed: int = 0
    strategy: str = "adcache"
    workload: Optional[WorkloadSpec] = None  # default: balanced(num_keys)
    num_keys: int = 4000
    cache_bytes: int = 512 * 1024
    partition: str = "hash"
    queue_depth: int = 64
    arrival_rate_ops_s: float = 1200.0  # per open-loop client
    closed_clients: int = 0
    think_time_us: float = 1000.0
    rebalance_every: int = 2000  # completed requests; 0 disables
    window_size: int = 250
    memtable_entries: int = 32
    entries_per_sstable: int = 64
    keep_trace: bool = True
    cost_model: Optional[CostModel] = None
    #: Attach an ObsRecorder to every shard engine.  Off by default so
    #: the golden fingerprints and the perf gate see an untouched run.
    obs: bool = False
    obs_trace_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ConfigError("num_clients must be positive")
        if self.num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        if self.total_ops < self.num_clients:
            raise ConfigError("need at least one op per client")
        if not 0 <= self.closed_clients <= self.num_clients:
            raise ConfigError("closed_clients must lie in [0, num_clients]")
        if self.rebalance_every < 0:
            raise ConfigError("rebalance_every must be >= 0")
        if self.window_size <= 0:
            raise ConfigError("window_size must be positive")

    @property
    def spec(self) -> WorkloadSpec:
        """The workload spec (defaults to the balanced mix)."""
        return self.workload or balanced_workload(self.num_keys)


@dataclass
class TenantResult:
    """Per-tenant outcome: accounting plus the latency distribution."""

    name: str
    mode: str
    issued: int
    completed: int
    rejected: int
    latency: LatencyHistogram


@dataclass
class ShardResult:
    """Per-shard outcome: work served, I/O paid, budget held."""

    shard_id: int
    keys_owned: int
    subrequests_served: int
    disk_reads: int
    budget_bytes: int
    peak_queue_depth: int
    rejected_at: int
    busy_us: float


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    config: ServeConfig
    duration_us: float
    issued: int
    completed: int
    rejected: int
    throughput_qps: float
    latency: LatencyHistogram
    queue_wait: LatencyHistogram
    tenants: List[TenantResult]
    shards: List[ShardResult]
    fleet_window: WindowStats
    rebalances: int
    evictions_forced: int
    trace_digest: str
    trace: List[str] = field(default_factory=list)
    #: Per-shard recorders (``config.obs`` runs only; empty otherwise).
    obs_recorders: List[ObsRecorder] = field(default_factory=list, repr=False)
    #: Fleet-wide reduction of the per-shard metric windows.
    obs_fleet_windows: List[WindowSnapshot] = field(default_factory=list, repr=False)

    def export_obs(self, directory: str) -> Dict[str, str]:
        """Write obs artifacts: one subdirectory per shard + a fleet view.

        ``shard<N>/`` each hold a complete single-engine export
        (metrics, events, audit when the strategy has a controller);
        the top level is itself a complete export — ``metrics.jsonl``
        is the fleet-wide merge-windows-style reduction,
        ``events.jsonl`` the shard-tagged interleave of every trace —
        so ``repro report`` (and its ``--validate``) read the fleet
        directory exactly like a single-shard one.
        """
        if not self.obs_recorders:
            raise ObsError(
                "run recorded no observability; set ServeConfig.obs=True"
            )
        os.makedirs(directory, exist_ok=True)
        paths: Dict[str, str] = {}
        for shard_id, recorder in enumerate(self.obs_recorders):
            sub = os.path.join(directory, f"shard{shard_id}")
            recorder.export(sub)
            paths[f"shard{shard_id}"] = sub
        fleet_path = os.path.join(directory, METRICS_FILE)
        export_fleet_metrics([r.metrics for r in self.obs_recorders], fleet_path)
        paths["fleet"] = fleet_path
        events_path = os.path.join(directory, EVENTS_FILE)
        export_fleet_events([r.trace for r in self.obs_recorders], events_path)
        paths["fleet_events"] = events_path
        manifest = {
            "version": 1,
            "fleet": True,
            "shards": len(self.obs_recorders),
            "final_ts_us": max(r.now_us for r in self.obs_recorders),
            "windows": len(self.obs_fleet_windows),
            "events_recorded": sum(r.trace.next_seq for r in self.obs_recorders),
            "events_dropped": sum(
                r.trace.dropped_total for r in self.obs_recorders
            ),
            "files": sorted([EVENTS_FILE, METRICS_FILE]),
        }
        manifest_path = os.path.join(directory, MANIFEST_FILE)
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths["manifest"] = manifest_path
        return paths

    def fingerprint(self) -> str:
        """One hash covering the trace, histograms, and counters."""
        h = hashlib.sha256()
        h.update(self.trace_digest.encode())
        h.update(repr(self.latency.fingerprint()).encode())
        h.update(repr(self.queue_wait.fingerprint()).encode())
        for t in self.tenants:
            h.update(
                f"{t.name}:{t.issued}:{t.completed}:{t.rejected}".encode()
            )
            h.update(repr(t.latency.fingerprint()).encode())
        for s in self.shards:
            h.update(
                f"{s.shard_id}:{s.subrequests_served}:{s.disk_reads}:"
                f"{s.budget_bytes}:{s.peak_queue_depth}:{s.rejected_at}".encode()
            )
        h.update(f"{self.duration_us:.3f}:{self.rebalances}".encode())
        return h.hexdigest()

    def format_report(self) -> str:
        """Multi-section text report for the CLI."""
        c = self.config
        lines = [
            f"serve: {c.strategy} | {c.num_clients} clients "
            f"({c.closed_clients} closed) x {c.num_shards} shards "
            f"({c.partition}) | {self.issued} ops | seed {c.seed}",
            f"simulated time: {self.duration_us / 1e6:.3f} s   "
            f"throughput: {self.throughput_qps:,.0f} qps   "
            f"completed: {self.completed}   rejected: {self.rejected}",
            "",
            "latency (us):",
            latency_table(
                {"all": self.latency, "queue wait": self.queue_wait},
                label="metric",
            ),
            "",
            "per-tenant:",
        ]
        rows = []
        for t in self.tenants:
            rows.append(
                [
                    t.name,
                    t.mode,
                    str(t.issued),
                    str(t.completed),
                    str(t.rejected),
                    f"{t.latency.p50:,.0f}",
                    f"{t.latency.p99:,.0f}",
                ]
            )
        lines.append(
            format_table(
                ["tenant", "mode", "issued", "done", "shed", "p50", "p99"],
                rows,
            )
        )
        lines.append("")
        lines.append("per-shard:")
        shard_rows = []
        for s in self.shards:
            shard_rows.append(
                [
                    str(s.shard_id),
                    str(s.keys_owned),
                    str(s.subrequests_served),
                    str(s.disk_reads),
                    f"{s.budget_bytes // 1024} KB",
                    str(s.peak_queue_depth),
                    str(s.rejected_at),
                    f"{100.0 * s.busy_us / self.duration_us if self.duration_us else 0.0:.1f}%",
                ]
            )
        lines.append(
            format_table(
                ["shard", "keys", "served", "sst reads", "budget", "peakq",
                 "shed", "util"],
                shard_rows,
            )
        )
        w = self.fleet_window
        lines.append("")
        lines.append(
            f"fleet: io_miss={w.io_miss} range_hits="
            f"{w.range_point_hits + w.range_scan_hits} "
            f"block_hit_rate={w.block_hit_rate:.3f} "
            f"rebalances={self.rebalances} "
            f"evictions_forced={self.evictions_forced}"
        )
        lines.append(f"trace digest: {self.trace_digest}")
        return "\n".join(lines)


class _Shard:
    """One shard's engine, queue, clock, and single logical server."""

    __slots__ = ("shard_id", "engine", "queue", "clock", "busy", "busy_us",
                 "keys_owned")

    def __init__(
        self,
        shard_id: int,
        engine: KVEngine,
        queue: RequestQueue,
        clock: SimClock,
        keys_owned: int,
    ) -> None:
        self.shard_id = shard_id
        self.engine = engine
        self.queue = queue
        self.clock = clock
        self.busy = False
        self.busy_us = 0.0
        self.keys_owned = keys_owned


def _build_shards(config: ServeConfig, router: ShardRouter) -> List[_Shard]:
    per_shard_ids = router.shard_ids()
    base = config.cache_bytes // config.num_shards
    shards: List[_Shard] = []
    for shard_id, ids in enumerate(per_shard_ids):
        tree = LSMTree(
            LSMOptions(
                memtable_entries=config.memtable_entries,
                entries_per_sstable=config.entries_per_sstable,
            )
        )
        tree.bulk_load(
            ((key_of(i), value_of(i)) for i in ids), seed=7 + shard_id
        )
        share = base
        if shard_id == 0:
            share = config.cache_bytes - base * (config.num_shards - 1)
        engine = build_engine(
            config.strategy,
            tree,
            share,
            seed=config.seed + 101 * (shard_id + 1),
        )
        engine.window_size = config.window_size
        queue = RequestQueue(shard_id, config.queue_depth)
        queue.sanitize_from_env(seed=config.seed + 31 + shard_id)
        shards.append(
            _Shard(
                shard_id,
                engine,
                queue,
                SimClock(engine, config.cost_model),
                len(ids),
            )
        )
    return shards


def _build_sessions(config: ServeConfig) -> List[ClientSession]:
    base = config.total_ops // config.num_clients
    remainder = config.total_ops - base * config.num_clients
    sessions: List[ClientSession] = []
    first_closed = config.num_clients - config.closed_clients
    for i in range(config.num_clients):
        tenant = TenantConfig(
            name=f"client{i:02d}",
            ops=base + (1 if i < remainder else 0),
            mode="closed" if i >= first_closed else "open",
            arrival_rate_ops_s=config.arrival_rate_ops_s,
            think_time_us=config.think_time_us,
        )
        generator = WorkloadGenerator(
            config.spec, seed=config.seed + 1000 * (i + 1)
        )
        sessions.append(
            ClientSession(tenant, generator, seed=config.seed + 500 + i)
        )
    return sessions


class _Simulation:
    """Mutable run state; one instance per :func:`run_serve` call."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.spec = config.spec
        self.router = ShardRouter(
            config.num_shards, self.spec.num_keys, config.partition
        )
        self.shards = _build_shards(config, self.router)
        self.obs_recorders: List[ObsRecorder] = []
        if config.obs:
            for shard in self.shards:
                recorder = ObsRecorder(trace_capacity=config.obs_trace_capacity)
                shard.engine.attach_recorder(recorder)
                self.obs_recorders.append(recorder)
        self.sessions = _build_sessions(config)
        self._by_name: Dict[str, ClientSession] = {
            s.name: s for s in self.sessions
        }
        self.loop = EventLoop()
        self.arbiter: Optional[BudgetArbiter] = None
        if config.rebalance_every > 0:
            self.arbiter = BudgetArbiter(
                [s.engine for s in self.shards], config.cache_bytes
            )
            self.arbiter.sanitize_from_env(seed=config.seed + 17)
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.completed_total = 0
        self.rejected_total = 0
        self._next_seq = 0
        self._hasher = hashlib.sha256()
        self.trace: List[str] = []

    # -- trace ------------------------------------------------------------

    def emit(self, kind: str, *fields: object) -> None:
        record = f"{self.loop.now:.3f} {kind} " + " ".join(
            str(f) for f in fields
        )
        self._hasher.update(record.encode())
        self._hasher.update(b"\n")
        if self.config.keep_trace:
            self.trace.append(record)

    # -- issue / service / complete ---------------------------------------

    def issue(self, session: ClientSession) -> None:
        op = session.next_operation()
        if op is None:
            return
        # Open-loop arrivals keep coming regardless of this op's fate.
        if session.mode == "open":
            self.loop.after(
                session.next_delay_us(), lambda: self.issue(session)
            )
        plan = self.router.plan(op)
        seq = self._next_seq
        self._next_seq += 1
        request = Request(seq, session.name, op, self.loop.now, len(plan))
        self.emit("arrive", seq, session.name, op.kind)
        queues = [self.shards[shard_id].queue for shard_id, _ in plan]
        if any(not q.has_room() for q in queues):
            # All-or-nothing shed: account it at every full target queue.
            for q in queues:
                if not q.has_room():
                    q.note_rejected()
            session.rejected += 1
            self.rejected_total += 1
            self.emit("shed", seq, session.name)
            if session.mode == "closed":
                self.loop.after(
                    session.next_delay_us(), lambda: self.issue(session)
                )
            return
        for shard_id, sub_op in plan:
            sub = SubRequest(request, shard_id, sub_op, self.loop.now)
            self.shards[shard_id].queue.push(sub)
            self.maybe_start(shard_id)

    def maybe_start(self, shard_id: int) -> None:
        shard = self.shards[shard_id]
        if shard.busy or len(shard.queue) == 0:
            return
        sub = shard.queue.pop()
        shard.busy = True
        sub.start_us = self.loop.now
        self.queue_wait.record(sub.start_us - sub.enqueue_us)
        if self.obs_recorders:
            # Serving-layer time is richer than engine-work time (it
            # includes queueing), so recordings carry event-loop stamps.
            self.obs_recorders[shard_id].advance_to(self.loop.now)
        # Execute now and charge the metered delta as this sub-request's
        # service time; event callbacks are synchronous, so no other
        # shard's work can leak into this clock window.
        entries = self.router.execute(shard.engine, sub.op)
        if sub.request.parts is not None:
            sub.request.parts.append(entries)
        service_us = max(0.0, shard.clock.charge())
        shard.busy_us += service_us
        self.emit("start", sub.request.seq, shard_id)
        self.loop.after(service_us, lambda: self.complete(sub))

    def complete(self, sub: SubRequest) -> None:
        shard = self.shards[sub.shard]
        shard.busy = False
        request = sub.request
        request.remaining -= 1
        self.emit("finish", request.seq, sub.shard)
        if request.remaining == 0:
            self.finish_request(request)
        self.maybe_start(sub.shard)

    def finish_request(self, request: Request) -> None:
        if request.parts is not None:
            # The gather half of scatter-gather; the merged result is the
            # request's answer (dropped here — correctness is unit-tested
            # against an unsharded oracle).
            self.router.merge_scan(request.parts, request.op.length)
        session = self._session_of(request.tenant)
        latency_us = self.loop.now - request.arrival_us
        self.latency.record(latency_us)
        session.latency.record(latency_us)
        session.completed += 1
        self.completed_total += 1
        self.emit("done", request.seq, request.tenant)
        every = self.config.rebalance_every
        if self.arbiter is not None and every and self.completed_total % every == 0:
            evicted = self.arbiter.rebalance(self.loop.now)
            self.emit(
                "rebalance",
                self.arbiter.rebalances,
                evicted,
                " ".join(f"{s:.4f}" for s in self.arbiter.shares),
            )
        if session.mode == "closed":
            self.loop.after(
                session.next_delay_us(), lambda: self.issue(session)
            )

    def _session_of(self, name: str) -> ClientSession:
        return self._by_name[name]

    # -- run ------------------------------------------------------------

    def run(self) -> ServeResult:
        for session in self.sessions:
            self.loop.after(
                session.next_delay_us(),
                (lambda s: lambda: self.issue(s))(session),
            )
        self.loop.run()
        if sanitize.env_enabled():
            # End-of-run full sweep, mirroring window-boundary sweeps.
            for shard in self.shards:
                shard.queue.check_invariants()
            if self.arbiter is not None:
                self.arbiter.check_invariants()
        return self._result()

    def _result(self) -> ServeResult:
        duration = self.loop.now
        issued = sum(s.issued for s in self.sessions)
        tenants = [
            TenantResult(
                name=s.name,
                mode=s.mode,
                issued=s.issued,
                completed=s.completed,
                rejected=s.rejected,
                latency=s.latency,
            )
            for s in self.sessions
        ]
        shard_results = []
        for shard in self.shards:
            shard.engine.flush_window()
            shard_results.append(
                ShardResult(
                    shard_id=shard.shard_id,
                    keys_owned=shard.keys_owned,
                    subrequests_served=shard.queue.served,
                    disk_reads=shard.engine.tree.disk.block_reads_total,
                    budget_bytes=shard.engine.cache_budget_total,
                    peak_queue_depth=shard.queue.peak_depth,
                    rejected_at=shard.queue.rejected,
                    busy_us=shard.busy_us,
                )
            )
        fleet_window = merge_windows(
            [shard.engine.collector.lifetime for shard in self.shards]
        )
        obs_fleet_windows: List[WindowSnapshot] = []
        if self.obs_recorders:
            for recorder in self.obs_recorders:
                recorder.advance_to(duration)
            obs_fleet_windows = merge_window_snapshots(
                [r.metrics.windows for r in self.obs_recorders]
            )
        return ServeResult(
            config=self.config,
            duration_us=duration,
            issued=issued,
            completed=self.completed_total,
            rejected=self.rejected_total,
            throughput_qps=(
                self.completed_total / (duration / 1e6) if duration > 0 else 0.0
            ),
            latency=self.latency,
            queue_wait=self.queue_wait,
            tenants=tenants,
            shards=shard_results,
            fleet_window=fleet_window,
            rebalances=self.arbiter.rebalances if self.arbiter else 0,
            evictions_forced=(
                self.arbiter.evictions_forced if self.arbiter else 0
            ),
            trace_digest=self._hasher.hexdigest(),
            trace=self.trace,
            obs_recorders=self.obs_recorders,
            obs_fleet_windows=obs_fleet_windows,
        )


def run_serve(config: ServeConfig) -> ServeResult:
    """Run one deterministic serving simulation end to end."""
    return _Simulation(config).run()
