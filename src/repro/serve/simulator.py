"""The deterministic multi-tenant serving simulator.

Composes the serving layer end to end: N client sessions issue
operations into a shard router; each shard is an independent seeded
engine (its own LSM tree + caches) behind a bounded request queue and a
single logical server; service times are charged from the sim clock's
cost-model deltas, so per-request latency = queue wait + metered engine
work, in simulated microseconds.  A global budget arbiter periodically
re-splits the fleet cache budget across shards from their window
exports.

With a :class:`~repro.serve.resilience.ResilienceConfig` attached, the
fleet also has a failure model: each primary ships its framed WAL to a
passive replica; a seeded :class:`~repro.faults.fleet.FleetFaultPlan`
kills shard executors mid-run and the replica is promoted through the
engine's crash-recovery (torn-tail WAL replay) path with the recovery
time charged to the sim clock; per-shard circuit breakers stop point
routing to sick shards while scans degrade to explicitly *partial*
results; slow point reads are hedged to the replica at a per-tenant
latency quantile; and a degradation ladder sheds scans, then
non-resident reads, then non-owner traffic under sustained overload.
All of it is scheduled on the same event loop and folded into the
fleet fingerprint — byte-for-byte reproducible under a seed, and
byte-identical to the legacy simulator when disabled.

Everything is event-driven off one :class:`~repro.serve.events.EventLoop`
and every random draw comes from per-component seeded generators, so a
configuration reproduces byte-for-byte: the event trace digest, the
latency histograms, and every counter are pure functions of the config.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro import sanitize
from repro.bench.report import LatencyHistogram, format_table, latency_table
from repro.bench.simclock import CostModel, SimClock
from repro.bench.strategies import build_engine
from repro.core.engine import KVEngine
from repro.core.stats import WindowStats, merge_windows
from repro.errors import ConfigError, ObsError
from repro.faults.fleet import FleetFaultPlan
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.obs import names as N
from repro.obs.metrics import (
    WindowSnapshot,
    export_fleet_metrics,
    merge_window_snapshots,
)
from repro.obs.recorder import (
    EVENTS_FILE,
    MANIFEST_FILE,
    METRICS_FILE,
    ObsRecorder,
)
from repro.obs.trace import export_fleet_events
from repro.serve.arbiter import BudgetArbiter
from repro.serve.events import EventLoop
from repro.serve.tier2 import Tier2Coordinator
from repro.serve.queueing import Request, RequestQueue, SubRequest
from repro.serve.resilience import (
    CircuitBreaker,
    DegradationLadder,
    ResilienceConfig,
)
from repro.serve.router import ShardRouter
from repro.serve.session import (
    ClientSession,
    PhaseSlot,
    ScriptedSession,
    TenantConfig,
)
from repro.workloads.generator import (
    Operation,
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
)
from repro.workloads.keys import key_of, value_of
from repro.workloads.scenarios import ScenarioSchedule


@dataclass
class ServeConfig:
    """Everything that defines one serving run (and thus its bytes)."""

    num_clients: int = 8
    num_shards: int = 4
    total_ops: int = 20_000
    seed: int = 0
    strategy: str = "adcache"
    workload: Optional[WorkloadSpec] = None  # default: balanced(num_keys)
    num_keys: int = 4000
    cache_bytes: int = 512 * 1024
    #: Bytes of ``cache_bytes`` carved out for the fleet-shared second
    #: tier (0 keeps the flat, byte-identical legacy fleet).  The
    #: arbiter may move the L1/L2 boundary later; the *total* stays
    #: ``cache_bytes`` either way, so tiered-vs-flat comparisons are at
    #: equal budget.
    l2_budget_bytes: int = 0
    partition: str = "hash"
    queue_depth: int = 64
    #: Operations each open-loop session emits per arrival and each
    #: shard server drains per service slot.  1 (the default) keeps the
    #: scalar event sequence — and thus every golden fingerprint —
    #: byte-for-byte; >1 routes same-kind runs through the engine's
    #: batched ``multi_*`` API (vectorized probes, coalesced fetches).
    batch_size: int = 1
    arrival_rate_ops_s: float = 1200.0  # per open-loop client
    closed_clients: int = 0
    think_time_us: float = 1000.0
    rebalance_every: int = 2000  # completed requests; 0 disables
    window_size: int = 250
    memtable_entries: int = 32
    entries_per_sstable: int = 64
    keep_trace: bool = True
    cost_model: Optional[CostModel] = None
    #: Per-op completion deadline charged against queue wait; expired
    #: sub-requests are shed at dequeue (0 disables).
    op_deadline_us: float = 0.0
    #: Fleet failure handling; None keeps the legacy byte-identical run.
    resilience: Optional[ResilienceConfig] = None
    #: Attach an ObsRecorder to every shard engine.  Off by default so
    #: the golden fingerprints and the perf gate see an untouched run.
    obs: bool = False
    obs_trace_capacity: int = 4096
    #: Scenario-atlas mode: play a multi-phase schedule instead of one
    #: stationary workload.  Adopts the schedule's tenant set, keyspace,
    #: and op budget; ``workload``/``closed_clients`` must stay default.
    schedule: Optional[ScenarioSchedule] = None

    def __post_init__(self) -> None:
        if self.schedule is not None:
            if self.workload is not None:
                raise ConfigError(
                    "schedule and workload are mutually exclusive; the "
                    "schedule carries its own per-phase specs"
                )
            if self.closed_clients:
                raise ConfigError(
                    "scheduled runs are open-loop only; closed_clients "
                    "must be 0"
                )
            # The schedule defines the population, the work, and the
            # base offered load its phase durations were sized for.
            self.num_clients = len(self.schedule.tenant_names)
            self.num_keys = self.schedule.num_keys
            self.total_ops = self.schedule.total_ops
            self.arrival_rate_ops_s = self.schedule.arrival_rate_ops_s
        if self.num_clients <= 0:
            raise ConfigError("num_clients must be positive")
        if self.num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        if self.total_ops < self.num_clients:
            raise ConfigError("need at least one op per client")
        if not 0 <= self.closed_clients <= self.num_clients:
            raise ConfigError("closed_clients must lie in [0, num_clients]")
        if self.rebalance_every < 0:
            raise ConfigError("rebalance_every must be >= 0")
        if self.window_size <= 0:
            raise ConfigError("window_size must be positive")
        if self.op_deadline_us < 0:
            raise ConfigError("op_deadline_us must be >= 0")
        if self.batch_size <= 0:
            raise ConfigError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if not 0 <= self.l2_budget_bytes < self.cache_bytes:
            raise ConfigError(
                f"l2_budget_bytes must lie in [0, cache_bytes), got "
                f"{self.l2_budget_bytes} of {self.cache_bytes}"
            )
        res = self.resilience
        if res is not None and res.fleet_faults is not None and not res.replicas:
            raise ConfigError(
                "fleet faults require replicas: a crashed shard with no "
                "replica to promote loses its keyspace for the whole run"
            )

    @property
    def spec(self) -> WorkloadSpec:
        """The workload spec (defaults to the balanced mix)."""
        return self.workload or balanced_workload(self.num_keys)

    @property
    def resilience_active(self) -> bool:
        """Whether any non-legacy behaviour (and trace records) can occur."""
        return self.resilience is not None or self.op_deadline_us > 0

    @property
    def tier2_active(self) -> bool:
        """Whether the run carries a shared second cache tier."""
        return self.l2_budget_bytes > 0

    @property
    def l1_pool_bytes(self) -> int:
        """Bytes the shard L1s split after the shared tier's carve-out."""
        return self.cache_bytes - self.l2_budget_bytes


@dataclass
class TenantResult:
    """Per-tenant outcome: accounting plus the latency distribution."""

    name: str
    mode: str
    issued: int
    completed: int
    rejected: int
    latency: LatencyHistogram


@dataclass
class ShardResult:
    """Per-shard outcome: work served, I/O paid, budget held."""

    shard_id: int
    keys_owned: int
    subrequests_served: int
    disk_reads: int
    budget_bytes: int
    peak_queue_depth: int
    rejected_at: int
    busy_us: float
    #: Resilience extras (zero / False on legacy runs).
    crashed: bool = False
    promoted: bool = False
    failover_us: float = 0.0
    wal_replayed: int = 0


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    config: ServeConfig
    duration_us: float
    issued: int
    completed: int
    rejected: int
    throughput_qps: float
    latency: LatencyHistogram
    queue_wait: LatencyHistogram
    tenants: List[TenantResult]
    shards: List[ShardResult]
    fleet_window: WindowStats
    rebalances: int
    evictions_forced: int
    trace_digest: str
    trace: List[str] = field(default_factory=list)
    #: Requests shed per distinct reason (queue_full, deadline, ...).
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Circuit-breaker transition audit, one rendered line per change.
    breaker_log: List[str] = field(default_factory=list)
    #: Degradation-ladder transition audit.
    degrade_log: List[str] = field(default_factory=list)
    crashes: int = 0
    promotions: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    scans_partial: int = 0
    #: Acknowledged writes whose durable value could not be read back.
    lost_acked_writes: int = 0
    acked_writes_checked: int = 0
    #: Per-shard recorders (``config.obs`` runs only; empty otherwise).
    obs_recorders: List[ObsRecorder] = field(default_factory=list, repr=False)
    #: Fleet-wide reduction of the per-shard metric windows.
    obs_fleet_windows: List[WindowSnapshot] = field(default_factory=list, repr=False)
    #: Shared-tier summary (tiered runs only; all zeros on flat runs).
    l2_probes: int = 0
    l2_hits: int = 0
    l2_demotions: int = 0
    l2_admits: int = 0
    l2_rejects: int = 0
    l2_ghost_hits: int = 0
    l2_evictions: int = 0
    l2_budget_bytes: int = 0
    l2_used_bytes: int = 0
    l2_share_final: float = 0.0
    #: Rendered L1/L2 boundary moves, one line per arbitration round.
    l2_log: List[str] = field(default_factory=list)

    def export_obs(self, directory: str) -> Dict[str, str]:
        """Write obs artifacts: one subdirectory per shard + a fleet view.

        ``shard<N>/`` each hold a complete single-engine export
        (metrics, events, audit when the strategy has a controller);
        the top level is itself a complete export — ``metrics.jsonl``
        is the fleet-wide merge-windows-style reduction,
        ``events.jsonl`` the shard-tagged interleave of every trace —
        so ``repro report`` (and its ``--validate``) read the fleet
        directory exactly like a single-shard one.
        """
        if not self.obs_recorders:
            raise ObsError(
                "run recorded no observability; set ServeConfig.obs=True"
            )
        os.makedirs(directory, exist_ok=True)
        paths: Dict[str, str] = {}
        for shard_id, recorder in enumerate(self.obs_recorders):
            sub = os.path.join(directory, f"shard{shard_id}")
            recorder.export(sub)
            paths[f"shard{shard_id}"] = sub
        fleet_path = os.path.join(directory, METRICS_FILE)
        export_fleet_metrics([r.metrics for r in self.obs_recorders], fleet_path)
        paths["fleet"] = fleet_path
        events_path = os.path.join(directory, EVENTS_FILE)
        export_fleet_events([r.trace for r in self.obs_recorders], events_path)
        paths["fleet_events"] = events_path
        manifest = {
            "version": 1,
            "fleet": True,
            "shards": len(self.obs_recorders),
            "final_ts_us": max(r.now_us for r in self.obs_recorders),
            "windows": len(self.obs_fleet_windows),
            "events_recorded": sum(r.trace.next_seq for r in self.obs_recorders),
            "events_dropped": sum(
                r.trace.dropped_total for r in self.obs_recorders
            ),
            "files": sorted([EVENTS_FILE, METRICS_FILE]),
        }
        manifest_path = os.path.join(directory, MANIFEST_FILE)
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths["manifest"] = manifest_path
        return paths

    def fingerprint(self) -> str:
        """One hash covering the trace, histograms, and counters.

        Resilience outputs (shed reasons, breaker/ladder audits,
        failover accounting) are folded in only when the feature is
        active, so legacy configurations keep their golden hashes.
        """
        h = hashlib.sha256()
        h.update(self.trace_digest.encode())
        h.update(repr(self.latency.fingerprint()).encode())
        h.update(repr(self.queue_wait.fingerprint()).encode())
        for t in self.tenants:
            h.update(
                f"{t.name}:{t.issued}:{t.completed}:{t.rejected}".encode()
            )
            h.update(repr(t.latency.fingerprint()).encode())
        for s in self.shards:
            h.update(
                f"{s.shard_id}:{s.subrequests_served}:{s.disk_reads}:"
                f"{s.budget_bytes}:{s.peak_queue_depth}:{s.rejected_at}".encode()
            )
        h.update(f"{self.duration_us:.3f}:{self.rebalances}".encode())
        if self.config.resilience_active:
            for reason in sorted(self.shed_by_reason):
                h.update(f"{reason}={self.shed_by_reason[reason]}".encode())
            for line in self.breaker_log:
                h.update(line.encode())
            for line in self.degrade_log:
                h.update(line.encode())
            h.update(
                f"{self.crashes}:{self.promotions}:{self.hedges}:"
                f"{self.hedge_wins}:{self.scans_partial}:"
                f"{self.lost_acked_writes}".encode()
            )
            for s in self.shards:
                h.update(
                    f"{int(s.crashed)}:{int(s.promoted)}:"
                    f"{s.failover_us:.3f}:{s.wal_replayed}".encode()
                )
        if self.config.tier2_active:
            h.update(
                f"{self.l2_probes}:{self.l2_hits}:{self.l2_demotions}:"
                f"{self.l2_admits}:{self.l2_rejects}:{self.l2_ghost_hits}:"
                f"{self.l2_evictions}:{self.l2_budget_bytes}:"
                f"{self.l2_used_bytes}:{self.l2_share_final:.6f}".encode()
            )
            for line in self.l2_log:
                h.update(line.encode())
        return h.hexdigest()

    def format_report(self) -> str:
        """Multi-section text report for the CLI."""
        c = self.config
        lines = [
            f"serve: {c.strategy} | {c.num_clients} clients "
            f"({c.closed_clients} closed) x {c.num_shards} shards "
            f"({c.partition}) | {self.issued} ops | seed {c.seed}",
            f"simulated time: {self.duration_us / 1e6:.3f} s   "
            f"throughput: {self.throughput_qps:,.0f} qps   "
            f"completed: {self.completed}   rejected: {self.rejected}",
            "",
            "latency (us):",
            latency_table(
                {"all": self.latency, "queue wait": self.queue_wait},
                label="metric",
            ),
            "",
            "per-tenant:",
        ]
        rows = []
        for t in self.tenants:
            rows.append(
                [
                    t.name,
                    t.mode,
                    str(t.issued),
                    str(t.completed),
                    str(t.rejected),
                    f"{t.latency.p50:,.0f}",
                    f"{t.latency.p99:,.0f}",
                ]
            )
        lines.append(
            format_table(
                ["tenant", "mode", "issued", "done", "shed", "p50", "p99"],
                rows,
            )
        )
        lines.append("")
        lines.append("per-shard:")
        shard_rows = []
        for s in self.shards:
            shard_rows.append(
                [
                    str(s.shard_id),
                    str(s.keys_owned),
                    str(s.subrequests_served),
                    str(s.disk_reads),
                    f"{s.budget_bytes // 1024} KB",
                    str(s.peak_queue_depth),
                    str(s.rejected_at),
                    f"{100.0 * s.busy_us / self.duration_us if self.duration_us else 0.0:.1f}%",
                ]
            )
        lines.append(
            format_table(
                ["shard", "keys", "served", "sst reads", "budget", "peakq",
                 "shed", "util"],
                shard_rows,
            )
        )
        w = self.fleet_window
        lines.append("")
        lines.append(
            f"fleet: io_miss={w.io_miss} range_hits="
            f"{w.range_point_hits + w.range_scan_hits} "
            f"block_hit_rate={w.block_hit_rate:.3f} "
            f"rebalances={self.rebalances} "
            f"evictions_forced={self.evictions_forced}"
        )
        if self.config.resilience_active:
            sheds = " ".join(
                f"{reason}={self.shed_by_reason[reason]}"
                for reason in sorted(self.shed_by_reason)
            )
            lines.append(
                f"resilience: crashes={self.crashes} "
                f"promotions={self.promotions} hedges={self.hedges} "
                f"hedge_wins={self.hedge_wins} "
                f"scans_partial={self.scans_partial} "
                f"lost_acked_writes={self.lost_acked_writes}/"
                f"{self.acked_writes_checked}"
            )
            if sheds:
                lines.append(f"shed by reason: {sheds}")
            for line in self.breaker_log:
                lines.append(f"breaker: {line}")
            for line in self.degrade_log:
                lines.append(f"degrade: {line}")
        if self.config.tier2_active:
            probed = self.l2_probes
            hit_rate = self.l2_hits / probed if probed else 0.0
            lines.append(
                f"tier2: budget={self.l2_budget_bytes // 1024} KB "
                f"(share {self.l2_share_final:.3f}) "
                f"hits={self.l2_hits}/{self.l2_probes} "
                f"(rate {hit_rate:.3f}) "
                f"admitted={self.l2_admits}/{self.l2_demotions} "
                f"ghost_hits={self.l2_ghost_hits} "
                f"evictions={self.l2_evictions}"
            )
            for line in self.l2_log:
                lines.append(f"l2split: {line}")
        lines.append(f"trace digest: {self.trace_digest}")
        return "\n".join(lines)


class _Shard:
    """One shard's engine, queue, clock, and single logical server.

    With resilience enabled the shard also carries a passive replica
    engine (WAL-shipped), a circuit breaker, and an epoch counter that
    invalidates in-flight work when the executor crashes.
    """

    __slots__ = (
        "shard_id",
        "engine",
        "queue",
        "clock",
        "busy",
        "busy_us",
        "keys_owned",
        "replica_engine",
        "replica_clock",
        "breaker",
        "down",
        "epoch",
        "crashed",
        "promoted",
        "failover_us",
        "wal_replayed",
    )

    def __init__(
        self,
        shard_id: int,
        engine: KVEngine,
        queue: RequestQueue,
        clock: SimClock,
        keys_owned: int,
    ) -> None:
        self.shard_id = shard_id
        self.engine = engine
        self.queue = queue
        self.clock = clock
        self.busy = False
        self.busy_us = 0.0
        self.keys_owned = keys_owned
        self.replica_engine: Optional[KVEngine] = None
        self.replica_clock: Optional[SimClock] = None
        self.breaker: Optional[CircuitBreaker] = None
        self.down = False
        self.epoch = 0
        self.crashed = False
        self.promoted = False
        self.failover_us = 0.0
        self.wal_replayed = 0


def _build_shards(config: ServeConfig, router: ShardRouter) -> List[_Shard]:
    per_shard_ids = router.shard_ids()
    # Shard L1s split the pool left after the shared tier's carve-out
    # (the whole budget when tiering is off).
    pool = config.l1_pool_bytes
    base = pool // config.num_shards
    res = config.resilience
    # Key-space-growth schedules preload only a prefix of the keyspace;
    # the rest comes into existence through the scenario's writes.  The
    # router still owns the full range (keys_owned is unchanged).
    preload = config.num_keys
    if config.schedule is not None:
        preload = config.schedule.preload_keys
    shards: List[_Shard] = []
    for shard_id, ids in enumerate(per_shard_ids):
        tree = LSMTree(
            LSMOptions(
                memtable_entries=config.memtable_entries,
                entries_per_sstable=config.entries_per_sstable,
            )
        )
        tree.bulk_load(
            ((key_of(i), value_of(i)) for i in ids if i < preload),
            seed=7 + shard_id,
        )
        share = base
        if shard_id == 0:
            share = pool - base * (config.num_shards - 1)
        engine = build_engine(
            config.strategy,
            tree,
            share,
            seed=config.seed + 101 * (shard_id + 1),
        )
        engine.window_size = config.window_size
        queue = RequestQueue(shard_id, config.queue_depth)
        queue.sanitize_from_env(seed=config.seed + 31 + shard_id)
        shard = _Shard(
            shard_id,
            engine,
            queue,
            SimClock(engine, config.cost_model),
            len(ids),
        )
        if res is not None and res.replicas:
            # Passive replica: same durable base (identical bulk-load
            # seed), its own engine seed stream.  The primary ships
            # every write into the replica's framed WAL; promotion
            # replays it through the normal crash-recovery path.
            replica_tree = LSMTree(
                LSMOptions(
                    memtable_entries=config.memtable_entries,
                    entries_per_sstable=config.entries_per_sstable,
                )
            )
            replica_tree.bulk_load(
                ((key_of(i), value_of(i)) for i in ids if i < preload),
                seed=7 + shard_id,
            )
            replica = build_engine(
                config.strategy,
                replica_tree,
                share,
                seed=config.seed + 7919 * (shard_id + 1),
            )
            replica.window_size = config.window_size
            shard.replica_engine = replica
            shard.replica_clock = SimClock(replica, config.cost_model)
        if res is not None:
            shard.breaker = CircuitBreaker(shard_id, res)
            shard.breaker.sanitize_from_env(seed=config.seed + 53 + shard_id)
        shards.append(shard)
    return shards


def _build_sessions(config: ServeConfig) -> List[ClientSession]:
    base = config.total_ops // config.num_clients
    remainder = config.total_ops - base * config.num_clients
    sessions: List[ClientSession] = []
    first_closed = config.num_clients - config.closed_clients
    for i in range(config.num_clients):
        tenant = TenantConfig(
            name=f"client{i:02d}",
            ops=base + (1 if i < remainder else 0),
            mode="closed" if i >= first_closed else "open",
            arrival_rate_ops_s=config.arrival_rate_ops_s,
            think_time_us=config.think_time_us,
        )
        generator = WorkloadGenerator(
            config.spec, seed=config.seed + 1000 * (i + 1)
        )
        sessions.append(
            ClientSession(tenant, generator, seed=config.seed + 500 + i)
        )
    return sessions


def _build_scripted_sessions(config: ServeConfig) -> List[ClientSession]:
    """One :class:`ScriptedSession` per tenant in the scenario schedule.

    Per-slot generators are seeded from ``(run seed, schedule seed,
    tenant index, phase index)`` so every cell of the scenarios ×
    strategies matrix is independently reproducible and two phases
    never share a stream.
    """
    schedule = config.schedule
    assert schedule is not None
    starts = schedule.phase_starts()
    sessions: List[ClientSession] = []
    for t_idx, name in enumerate(schedule.tenant_names):
        slots: List[PhaseSlot] = []
        for p_idx, phase in enumerate(schedule.phases):
            start = starts[p_idx]
            end = start + phase.duration_us
            load = phase.tenants.get(name)
            if load is None or not load.active:
                slots.append(PhaseSlot(start, end, 0, 0.0, None))
                continue
            generator = WorkloadGenerator(
                load.spec,
                seed=(
                    config.seed
                    + 9973 * schedule.seed
                    + 1000 * (t_idx + 1)
                    + 131 * (p_idx + 1)
                ),
            )
            slots.append(
                PhaseSlot(
                    start, end, load.ops, load.rate_scale,
                    generator.ops(load.ops),
                )
            )
        tenant = TenantConfig(
            name=name,
            ops=schedule.tenant_total_ops(name),
            mode="open",
            arrival_rate_ops_s=config.arrival_rate_ops_s,
            think_time_us=config.think_time_us,
        )
        sessions.append(
            ScriptedSession(tenant, slots, seed=config.seed + 500 + t_idx)
        )
    return sessions


class _Simulation:
    """Mutable run state; one instance per :func:`run_serve` call."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.spec = config.spec
        self.res = config.resilience
        self.active = config.resilience_active
        self.router = ShardRouter(
            config.num_shards, self.spec.num_keys, config.partition
        )
        self.shards = _build_shards(config, self.router)
        self.tier2: Optional[Tier2Coordinator] = None
        if config.tier2_active:
            # One shared tier for the fleet: its budget is the carve-out
            # the shards' L1 pool already excludes.  All mutation happens
            # through the coordinator inside loop callbacks, so two
            # same-seed runs replay the exact probe/demotion order.
            self.tier2 = Tier2Coordinator(
                config.l2_budget_bytes,
                self.shards[0].engine.tree.options.block_size,
                sketch_seed=config.seed + 43,
            )
            self.tier2.sanitize_from_env(seed=config.seed + 43)
            for shard in self.shards:
                self.tier2.attach(shard.shard_id, shard.engine)
                # The attach rewired the read path; rebase the clock so
                # no pre-run capture skew leaks into the first charge.
                shard.clock.rebase()
        self.obs_recorders: List[ObsRecorder] = []
        if config.obs:
            for shard in self.shards:
                recorder = ObsRecorder(trace_capacity=config.obs_trace_capacity)
                shard.engine.attach_recorder(recorder)
                self.obs_recorders.append(recorder)
        if config.schedule is not None:
            self.sessions = _build_scripted_sessions(config)
        else:
            self.sessions = _build_sessions(config)
        self._by_name: Dict[str, ClientSession] = {
            s.name: s for s in self.sessions
        }
        self.loop = EventLoop()
        self.arbiter: Optional[BudgetArbiter] = None
        if config.rebalance_every > 0:
            self.arbiter = BudgetArbiter(
                [s.engine for s in self.shards],
                config.cache_bytes,
                tier2=self.tier2,
            )
            self.arbiter.sanitize_from_env(seed=config.seed + 17)
        self.ladder: Optional[DegradationLadder] = None
        self._owner_names: Set[str] = set()
        if self.res is not None:
            self.ladder = DegradationLadder(self.res)
            self.ladder.sanitize_from_env(seed=config.seed + 71)
            self._owner_names = {
                s.name for s in self.sessions[: self.res.owner_tenants]
            }
        self._queue_capacity_total = config.num_shards * config.queue_depth
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.completed_total = 0
        self.rejected_total = 0
        self.crashes = 0
        self.promotions = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.scans_partial = 0
        self.shed_by_reason: Dict[str, int] = {}
        #: Durability ledger: key -> (owner shard, last acked value).
        self._acked: Dict[str, tuple] = {}
        self._breaker_emitted = [0] * config.num_shards
        self._ladder_emitted = 0
        # Fleet-level L2 obs marks (ghost hits recency/frequency,
        # evictions): folded as deltas on recorder 0 at each rebalance,
        # mirroring the ladder trace — the simulation is their single
        # writer, the shard engines own the per-shard flow counters.
        self._l2_obs_mark = (0, 0, 0)
        self._next_seq = 0
        self._hasher = hashlib.sha256()
        self.trace: List[str] = []

    # -- trace ------------------------------------------------------------

    def emit(self, kind: str, *fields: object) -> None:
        record = f"{self.loop.now:.3f} {kind} " + " ".join(
            str(f) for f in fields
        )
        self._hasher.update(record.encode())
        self._hasher.update(b"\n")
        if self.config.keep_trace:
            self.trace.append(record)

    def _shed(self, reason: str) -> None:
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1

    def _record(self, shard_id: int, metric: str) -> None:
        """Bump a serve counter on a shard's recorder (obs runs only)."""
        if self.obs_recorders:
            recorder = self.obs_recorders[shard_id]
            recorder.advance_to(self.loop.now)
            recorder.inc(metric)

    def _flush_breaker_trace(self, shard_id: int) -> None:
        """Emit (and record) breaker transitions since the last check."""
        breaker = self.shards[shard_id].breaker
        if breaker is None:
            return
        start = self._breaker_emitted[shard_id]
        for time_us, src, dst, reason in breaker.transitions[start:]:
            self.emit("breaker", shard_id, f"{src}->{dst}", reason)
            if self.obs_recorders:
                recorder = self.obs_recorders[shard_id]
                recorder.advance_to(self.loop.now)
                recorder.inc(N.SERVE_BREAKER_TRANSITIONS)
                recorder.event(
                    N.EV_BREAKER,
                    shard=shard_id,
                    src=src,
                    dst=dst,
                    reason=reason,
                )
        self._breaker_emitted[shard_id] = len(breaker.transitions)

    def _flush_ladder_trace(self) -> None:
        ladder = self.ladder
        if ladder is None:
            return
        for time_us, src, dst, pressure in ladder.transitions[
            self._ladder_emitted:
        ]:
            self.emit("degrade", src, dst, f"{pressure:.4f}")
            if self.obs_recorders:
                recorder = self.obs_recorders[0]
                recorder.advance_to(self.loop.now)
                recorder.set_gauge(N.G_DEGRADE_LEVEL, float(dst))
                recorder.event(
                    N.EV_DEGRADE, src=src, dst=dst, pressure=pressure
                )
        self._ladder_emitted = len(ladder.transitions)

    def _flush_l2_obs(self) -> None:
        """Fold fleet-level shared-tier deltas onto recorder 0."""
        tier2 = self.tier2
        if tier2 is None or not self.obs_recorders:
            return
        cache = tier2.cache
        ghr, ghf, ev = (
            cache.ghost_hits_recency,
            cache.ghost_hits_frequency,
            cache.evictions,
        )
        ghr0, ghf0, ev0 = self._l2_obs_mark
        self._l2_obs_mark = (ghr, ghf, ev)
        recorder = self.obs_recorders[0]
        recorder.advance_to(self.loop.now)
        recorder.inc(N.L2_GHOST_HITS_RECENCY, ghr - ghr0)
        recorder.inc(N.L2_GHOST_HITS_FREQUENCY, ghf - ghf0)
        recorder.inc(N.L2_EVICTIONS, ev - ev0)
        share = (
            tier2.budget_bytes / self.config.cache_bytes
            if self.config.cache_bytes
            else 0.0
        )
        recorder.set_gauge(N.G_L2_BUDGET_SHARE, share)
        recorder.set_gauge(N.G_L2_OCCUPANCY, cache.occupancy)

    # -- resilience helpers ------------------------------------------------

    def _queue_pressure(self) -> float:
        waiting = sum(len(s.queue) for s in self.shards)
        return waiting / self._queue_capacity_total

    def _resident(self, key: str, shard: _Shard) -> bool:
        """Best-effort residency probe for the ladder's L2 gate."""
        engine = shard.engine
        probed = False
        for cache in (engine.range_cache, engine.kv_cache, engine.kp_cache):
            if cache is not None:
                probed = True
                if cache.contains(key):
                    return True
        # Engines with no probe-capable cache (pure block strategy)
        # cannot distinguish cold keys; treat reads as resident.
        return not probed

    def _ship_to_replica(self, shard: _Shard, sub: SubRequest) -> None:
        """Synchronously replicate a write into the replica's framed WAL.

        Shipping happens before the ack completes, so an acknowledged
        write is always either in a live primary or replayable from the
        replica's log — the no-lost-acked-writes guarantee.
        """
        if sub.op.kind not in ("put", "delete"):
            return
        value = (sub.op.value or "") if sub.op.kind == "put" else None
        replica = shard.replica_engine
        if replica is not None:
            replica.tree.wal.append(sub.op.key, value)
        # The durability ledger tracks the last acked value per key even
        # after a promotion consumed the replica: the promoted engine is
        # then the (sole) durable home of subsequent writes.
        self._acked[sub.op.key] = (shard.shard_id, value)

    # -- issue / service / complete ---------------------------------------

    def issue(self, session: ClientSession) -> None:
        op = session.next_operation()
        if op is None:
            return
        burst = [op]
        if session.mode == "open":
            # Open-loop sessions emit up to batch_size ops per arrival.
            # Closed sessions stay one-op-per-think-time: bursting them
            # would multiply the in-flight window on every completion.
            while len(burst) < self.config.batch_size:
                extra = session.next_operation()
                if extra is None:
                    break
                burst.append(extra)
            # Open-loop arrivals keep coming regardless of this batch's
            # fate.  A burst consumes one inter-arrival delay per op it
            # carries, so the offered op rate is the same at every
            # batch size (and bit-identical to scalar at batch 1).
            delay = 0.0
            for _ in burst:
                delay += session.next_delay_us()
            self.loop.after(delay, lambda: self.issue(session))
        if len(burst) == 1:
            self._dispatch(session, op)
        else:
            self._dispatch_batch(session, burst)

    def issue_scripted(self, session: ScriptedSession) -> None:
        """Arrival path for scenario-scripted tenants.

        The session's script decides whether an operation enters now,
        the tenant sleeps through a dormant stretch (to the next phase
        boundary), or the script is over.  Arrivals stay open-loop:
        the next issue is scheduled before this op is dispatched, at
        the current phase's scaled rate.
        """
        kind, wake_us, op = session.poll(self.loop.now)
        if kind == "done":
            return
        if kind == "sleep":
            self.loop.at(wake_us, lambda: self.issue_scripted(session))
            return
        assert op is not None
        self.loop.after(
            session.arrival_delay_us(), lambda: self.issue_scripted(session)
        )
        self._dispatch(session, op)

    def _dispatch(self, session: ClientSession, op) -> None:
        if self.res is not None:
            self._issue_resilient(session, op)
            return
        plan = self.router.plan(op)
        seq = self._next_seq
        self._next_seq += 1
        deadline = (
            self.loop.now + self.config.op_deadline_us
            if self.config.op_deadline_us
            else 0.0
        )
        request = Request(
            seq, session.name, op, self.loop.now, len(plan), deadline
        )
        self.emit("arrive", seq, session.name, op.kind)
        queues = [self.shards[shard_id].queue for shard_id, _ in plan]
        if any(not q.has_room() for q in queues):
            # All-or-nothing shed: account it at every full target queue.
            for q in queues:
                if not q.has_room():
                    q.note_rejected()
            if self.active:
                self._shed("queue_full")
            session.rejected += 1
            self.rejected_total += 1
            self.emit("shed", seq, session.name)
            if session.mode == "closed":
                self.loop.after(
                    session.next_delay_us(), lambda: self.issue(session)
                )
            return
        for shard_id, sub_op in plan:
            shard = self.shards[shard_id]
            sub = SubRequest(request, shard_id, sub_op, self.loop.now, shard.epoch)
            shard.queue.push(sub)
            self.maybe_start(shard_id)

    def _dispatch_batch(
        self, session: ClientSession, ops: List[Operation]
    ) -> None:
        """Dispatch one open-loop burst as per-shard sub-batches.

        Every operation is planned and enqueued before any shard starts
        serving, so an idle shard's first service slot sees the whole
        sub-batch the router assigned it rather than a batch of one.
        Queue admission stays all-or-nothing per operation, with the
        same shed accounting as the scalar path.
        """
        if self.res is not None:
            # The failure model gates arrivals one op at a time (ladder,
            # breakers, hedges); batching still happens at the servers,
            # which drain queued backlog in batch_size service slots.
            for op in ops:
                self._issue_resilient(session, op)
            return
        touched: Set[int] = set()
        for op in ops:
            plan = self.router.plan(op)
            seq = self._next_seq
            self._next_seq += 1
            deadline = (
                self.loop.now + self.config.op_deadline_us
                if self.config.op_deadline_us
                else 0.0
            )
            request = Request(
                seq, session.name, op, self.loop.now, len(plan), deadline
            )
            self.emit("arrive", seq, session.name, op.kind)
            queues = [self.shards[shard_id].queue for shard_id, _ in plan]
            if any(not q.has_room() for q in queues):
                for q in queues:
                    if not q.has_room():
                        q.note_rejected()
                if self.active:
                    self._shed("queue_full")
                session.rejected += 1
                self.rejected_total += 1
                self.emit("shed", seq, session.name)
                continue
            for shard_id, sub_op in plan:
                shard = self.shards[shard_id]
                sub = SubRequest(
                    request, shard_id, sub_op, self.loop.now, shard.epoch
                )
                shard.queue.push(sub)
                touched.add(shard_id)
        for shard_id in sorted(touched):
            self.maybe_start(shard_id)

    def _issue_resilient(self, session: ClientSession, op) -> None:
        """Arrival path with the full failure model in front of the queues."""
        res = self.res
        assert res is not None and self.ladder is not None
        seq = self._next_seq
        self._next_seq += 1
        self.emit("arrive", seq, session.name, op.kind)
        # 1. Degradation ladder: re-evaluate, then gate this arrival.
        self.ladder.observe(
            self._queue_pressure(),
            any(s.down for s in self.shards),
            self.loop.now,
        )
        self._flush_ladder_trace()
        owner = session.name in self._owner_names
        resident = True
        if op.kind == "get" and self.ladder.level >= 2:
            target = self.shards[self.router.shard_of_key(op.key)]
            resident = not target.down and self._resident(op.key, target)
        reason = self.ladder.admits(op.kind, owner, resident)
        if reason is not None:
            self._record(0, N.SERVE_SHED_DEGRADED)
            self._reject_at_issue(session, seq, reason)
            return
        # 2. Health-aware planning: route around dead / open shards.
        unavailable = {s.shard_id for s in self.shards if s.down}
        for shard in self.shards:
            if shard.breaker is not None and not shard.down:
                if not shard.breaker.allow(self.loop.now):
                    unavailable.add(shard.shard_id)
                self._flush_breaker_trace(shard.shard_id)
        plan, dropped = self.router.plan_healthy(op, unavailable)
        if not plan:
            for shard_id in dropped:
                self._record(shard_id, N.SERVE_SHED_BREAKER)
            reason = (
                "shard_down"
                if any(self.shards[i].down for i in dropped)
                else "breaker_open"
            )
            self._reject_at_issue(session, seq, reason)
            return
        deadline = (
            self.loop.now + self.config.op_deadline_us
            if self.config.op_deadline_us
            else 0.0
        )
        request = Request(
            seq, session.name, op, self.loop.now, len(plan), deadline
        )
        if dropped:
            # Scatter-gather minus the dead shards: the eventual result
            # carries an explicit partial marker.
            request.parts_dropped += len(dropped)
            self.emit("drop", seq, " ".join(str(i) for i in dropped), "unplanned")
        queues = [self.shards[shard_id].queue for shard_id, _ in plan]
        if any(not q.has_room() for q in queues):
            for q in queues:
                if not q.has_room():
                    q.note_rejected()
            self._shed("queue_full")
            session.rejected += 1
            self.rejected_total += 1
            self.emit("shed", seq, session.name)
            if session.mode == "closed":
                self.loop.after(
                    session.next_delay_us(), lambda: self.issue(session)
                )
            return
        for shard_id, sub_op in plan:
            shard = self.shards[shard_id]
            sub = SubRequest(request, shard_id, sub_op, self.loop.now, shard.epoch)
            shard.queue.push(sub)
            self.maybe_start(shard_id)
        self._maybe_hedge(request, plan)

    def _reject_at_issue(
        self, session: ClientSession, seq: int, reason: str
    ) -> None:
        """Fail a request fast at arrival with an explicit reason."""
        self._shed(reason)
        session.rejected += 1
        self.rejected_total += 1
        self.emit("shedr", seq, session.name, reason)
        if session.mode == "closed":
            self.loop.after(
                session.next_delay_us(), lambda: self.issue(session)
            )

    def maybe_start(self, shard_id: int) -> None:
        shard = self.shards[shard_id]
        if shard.down or shard.busy or len(shard.queue) == 0:
            return
        if self.config.batch_size > 1:
            self._start_batch(shard)
            return
        if self.active:
            sub, expired = shard.queue.pop_live(self.loop.now)
            for dead in expired:
                self._record(shard_id, N.SERVE_SHED_DEADLINE)
                self.emit("expire", dead.request.seq, shard_id)
                self._sub_dropped(dead, "deadline")
            if sub is None:
                return
        else:
            sub = shard.queue.pop()
        shard.busy = True
        sub.start_us = self.loop.now
        self.queue_wait.record(sub.start_us - sub.enqueue_us)
        if self.obs_recorders:
            # Serving-layer time is richer than engine-work time (it
            # includes queueing), so recordings carry event-loop stamps.
            self.obs_recorders[shard_id].advance_to(self.loop.now)
        # Execute now and charge the metered delta as this sub-request's
        # service time; event callbacks are synchronous, so no other
        # shard's work can leak into this clock window.
        entries = self.router.execute(shard.engine, sub.op)
        if sub.request.parts is not None:
            sub.request.parts.append(entries)
        if self.res is not None:
            self._ship_to_replica(shard, sub)
        service_us = max(0.0, shard.clock.charge())
        shard.busy_us += service_us
        self.emit("start", sub.request.seq, shard_id)
        self.loop.after(service_us, lambda: self.complete(sub))

    def _start_batch(self, shard: _Shard) -> None:
        """Drain up to ``batch_size`` sub-requests into one service slot.

        The popped run executes through the engine's batched API (same-
        kind runs share one ``multi_*`` call) and the whole slot is
        charged as one metered delta — coalesced block fetches inside a
        run cost one simulated read instead of N.
        """
        subs: List[SubRequest] = []
        limit = self.config.batch_size
        while len(subs) < limit and len(shard.queue):
            if self.active:
                sub, expired = shard.queue.pop_live(self.loop.now)
                for dead in expired:
                    self._record(shard.shard_id, N.SERVE_SHED_DEADLINE)
                    self.emit("expire", dead.request.seq, shard.shard_id)
                    self._sub_dropped(dead, "deadline")
                if sub is None:
                    break
            else:
                sub = shard.queue.pop()
            subs.append(sub)
        if not subs:
            return
        shard.busy = True
        for sub in subs:
            sub.start_us = self.loop.now
            self.queue_wait.record(sub.start_us - sub.enqueue_us)
        if self.obs_recorders:
            self.obs_recorders[shard.shard_id].advance_to(self.loop.now)
        results = self.router.execute_batch(
            shard.engine, [sub.op for sub in subs]
        )
        for sub, entries in zip(subs, results):
            if sub.request.parts is not None:
                sub.request.parts.append(entries)
            if self.res is not None:
                self._ship_to_replica(shard, sub)
        service_us = max(0.0, shard.clock.charge())
        shard.busy_us += service_us
        for sub in subs:
            self.emit("start", sub.request.seq, shard.shard_id)
        self.loop.after(service_us, lambda: self._complete_batch(subs))

    def _complete_batch(self, subs: List[SubRequest]) -> None:
        """Batched twin of :meth:`complete` for one service slot."""
        shard = self.shards[subs[0].shard]
        live = [sub for sub in subs if sub.epoch == shard.epoch]
        for sub in subs:
            if sub.epoch != shard.epoch:
                # The executor died while this slot was in flight.
                self.emit("drop", sub.request.seq, sub.shard, "crash_inflight")
                self._sub_dropped(sub, "crash_inflight")
        if not live:
            return
        shard.busy = False
        timeout = self.res.op_timeout_us if self.res else 0.0
        for sub in live:
            request = sub.request
            request.remaining -= 1
            self.emit("finish", request.seq, sub.shard)
            if shard.breaker is not None:
                service_us = self.loop.now - sub.start_us
                if timeout and service_us > timeout:
                    shard.breaker.record_failure(self.loop.now, "timeout")
                else:
                    shard.breaker.record_success(self.loop.now)
                self._flush_breaker_trace(sub.shard)
            if request.remaining == 0:
                self.finish_request(request)
        self.maybe_start(subs[0].shard)

    def complete(self, sub: SubRequest) -> None:
        shard = self.shards[sub.shard]
        if sub.epoch != shard.epoch:
            # The executor died while this result was in flight; its
            # incarnation is gone and the result with it.
            self.emit("drop", sub.request.seq, sub.shard, "crash_inflight")
            self._sub_dropped(sub, "crash_inflight")
            return
        shard.busy = False
        request = sub.request
        request.remaining -= 1
        self.emit("finish", request.seq, sub.shard)
        if shard.breaker is not None:
            service_us = self.loop.now - sub.start_us
            timeout = self.res.op_timeout_us if self.res else 0.0
            if timeout and service_us > timeout:
                shard.breaker.record_failure(self.loop.now, "timeout")
            else:
                shard.breaker.record_success(self.loop.now)
            self._flush_breaker_trace(sub.shard)
        if request.remaining == 0:
            self.finish_request(request)
        self.maybe_start(sub.shard)

    def _sub_dropped(self, sub: SubRequest, reason: str) -> None:
        """Account one sub-request that will never produce a result."""
        self._shed(reason)
        request = sub.request
        request.remaining -= 1
        request.parts_dropped += 1
        if request.remaining == 0:
            self.finish_request(request)

    def finish_request(self, request: Request) -> None:
        if request.done:
            # A winning hedge (or an earlier finalisation) already
            # answered this request; late results are discarded.
            return
        request.done = True
        if request.parts_dropped and (
            request.parts is None or not request.parts
        ):
            # Every part died (crash / expiry): the request fails.
            session = self._session_of(request.tenant)
            session.rejected += 1
            self.rejected_total += 1
            self.emit("fail", request.seq, request.tenant)
            if session.mode == "closed":
                self.loop.after(
                    session.next_delay_us(), lambda: self.issue(session)
                )
            return
        if request.parts is not None:
            # The gather half of scatter-gather; the merged result is the
            # request's answer (dropped here — correctness is unit-tested
            # against an unsharded oracle).
            self.router.merge_scan(request.parts, request.op.length)
            if request.parts_dropped:
                # Explicitly partial: some shards contributed nothing.
                self.scans_partial += 1
                self._record(0, N.SERVE_SCANS_PARTIAL)
                self.emit(
                    "partial",
                    request.seq,
                    len(request.parts),
                    request.parts_dropped,
                )
        self._complete_request(request)

    def _complete_request(self, request: Request) -> None:
        """Common completion accounting (normal, partial, or hedge win)."""
        session = self._session_of(request.tenant)
        latency_us = self.loop.now - request.arrival_us
        self.latency.record(latency_us)
        session.latency.record(latency_us)
        session.completed += 1
        self.completed_total += 1
        self.emit("done", request.seq, request.tenant)
        every = self.config.rebalance_every
        if self.arbiter is not None and every and self.completed_total % every == 0:
            evicted = self.arbiter.rebalance(self.loop.now)
            self.emit(
                "rebalance",
                self.arbiter.rebalances,
                evicted,
                " ".join(f"{s:.4f}" for s in self.arbiter.shares),
            )
            if self.tier2 is not None:
                self.emit(
                    "l2split",
                    f"{self.arbiter.l2_share:.4f}",
                    self.tier2.budget_bytes,
                    self.tier2.used_bytes,
                )
                if self.obs_recorders:
                    self._flush_l2_obs()
                    recorder = self.obs_recorders[0]
                    recorder.event(
                        N.EV_L2_SPLIT,
                        share=round(self.arbiter.l2_share, 6),
                        budget=self.tier2.budget_bytes,
                        evicted=evicted,
                    )
        if session.mode == "closed":
            self.loop.after(
                session.next_delay_us(), lambda: self.issue(session)
            )

    # -- hedged reads -------------------------------------------------------

    def _maybe_hedge(self, request: Request, plan) -> None:
        """Arm a replica hedge for a slow point read."""
        res = self.res
        if (
            res is None
            or res.hedge_quantile <= 0.0
            or request.op.kind != "get"
            or len(plan) != 1
        ):
            return
        shard = self.shards[plan[0][0]]
        if shard.replica_engine is None or shard.down:
            return
        session = self._session_of(request.tenant)
        if session.latency.count < res.hedge_min_samples:
            return
        delay = max(
            res.hedge_floor_us, session.latency.quantile(res.hedge_quantile)
        )
        self.loop.after(
            delay, lambda: self._fire_hedge(request, shard.shard_id)
        )

    def _fire_hedge(self, request: Request, shard_id: int) -> None:
        shard = self.shards[shard_id]
        replica = shard.replica_engine
        if request.done or shard.down or replica is None:
            return
        assert shard.replica_clock is not None
        self.hedges += 1
        self._record(shard_id, N.SERVE_HEDGES)
        self.emit("hedge", request.seq, shard_id)
        if self.obs_recorders:
            recorder = self.obs_recorders[shard_id]
            recorder.advance_to(self.loop.now)
            recorder.event(
                N.EV_HEDGE, seq=request.seq, shard=shard_id, key=request.op.key
            )
        # The hedge reads the replica's durable state (its unreplayed
        # WAL may hold newer writes — hedged reads are allowed to be
        # stale, which the docs call out).  Replica time is charged on
        # the replica's own clock: hedges never consume primary service.
        replica.get(request.op.key)
        service_us = max(0.0, shard.replica_clock.charge())
        self.loop.after(
            service_us, lambda: self._complete_hedge(request, shard_id)
        )

    def _complete_hedge(self, request: Request, shard_id: int) -> None:
        if request.done:
            return
        request.done = True
        self.hedge_wins += 1
        self._record(shard_id, N.SERVE_HEDGE_WINS)
        self.emit("hedge_win", request.seq, shard_id)
        self._complete_request(request)

    # -- shard crash / failover --------------------------------------------

    def crash_shard(self, shard_id: int) -> None:
        """Kill one shard executor: volatile state gone, queue drained."""
        shard = self.shards[shard_id]
        res = self.res
        assert res is not None and res.fleet_faults is not None
        if shard.down or shard.replica_engine is None:
            return
        shard.down = True
        shard.crashed = True
        shard.busy = False
        shard.epoch += 1
        self.crashes += 1
        self.emit("crash", shard_id)
        self._record(shard_id, N.SERVE_CRASHES)
        if self.obs_recorders:
            recorder = self.obs_recorders[shard_id]
            recorder.advance_to(self.loop.now)
            recorder.event(N.EV_SHARD_CRASH, shard=shard_id)
        if shard.breaker is not None:
            shard.breaker.force_open(self.loop.now, "crash")
            self._flush_breaker_trace(shard_id)
        for victim in shard.queue.drain():
            self.emit("drop", victim.request.seq, shard_id, "shard_down")
            self._sub_dropped(victim, "shard_down")
        # Failover: detection delay plus WAL replay proportional to the
        # replication backlog, all charged to simulated time.
        faults = res.fleet_faults
        backlog = len(shard.replica_engine.tree.wal)
        recovery_us = (
            faults.failover_detect_us + faults.replay_per_record_us * backlog
        )
        shard.failover_us = recovery_us
        self.loop.after(
            recovery_us, lambda: self.promote_replica(shard_id)
        )

    def promote_replica(self, shard_id: int) -> None:
        """Promote the passive replica through crash recovery."""
        shard = self.shards[shard_id]
        replica = shard.replica_engine
        assert replica is not None and shard.replica_clock is not None
        # The replica replays its shipped WAL exactly like a restarted
        # primary: torn-tail verification, fresh MemTable, cold caches.
        replayed = replica.crash_and_recover()
        shard.wal_replayed = replayed
        if self.tier2 is not None:
            # The dead primary's SSTable ids would alias the promoted
            # engine's freshly-allocated ones inside the shared
            # namespace: purge the shard's L2 slice, then splice the
            # newcomer under the tier like any other member.
            dropped = self.tier2.drop_shard(shard_id)
            self.tier2.attach(shard_id, replica)
            self.emit("l2drop", shard_id, dropped)
        shard.engine = replica
        shard.clock = shard.replica_clock
        shard.clock.charge()  # absorb replay I/O into a fresh baseline
        shard.replica_engine = None
        shard.replica_clock = None
        shard.down = False
        shard.promoted = True
        self.promotions += 1
        self.emit("promote", shard_id, replayed, f"{shard.failover_us:.3f}")
        if self.obs_recorders:
            recorder = self.obs_recorders[shard_id]
            replica.attach_recorder(recorder)
            recorder.advance_to(self.loop.now)
            recorder.inc(N.SERVE_PROMOTIONS)
            recorder.observe(N.H_FAILOVER_US, shard.failover_us)
            recorder.event(
                N.EV_SHARD_PROMOTE, shard=shard_id, replayed=replayed
            )
        if shard.breaker is not None:
            # Probe the newcomer before trusting it with full traffic.
            shard.breaker.half_open(self.loop.now, "promoted")
            self._flush_breaker_trace(shard_id)
        if self.arbiter is not None:
            self.arbiter.replace_engine(shard_id, replica)
        self.maybe_start(shard_id)

    def _session_of(self, name: str) -> ClientSession:
        return self._by_name[name]

    # -- scenario phases ----------------------------------------------------

    def _phase_marker(self, index: int, name: str) -> None:
        """Trace (and record) a scenario phase boundary crossing."""
        self.emit("phase", index, name)
        if self.obs_recorders:
            recorder = self.obs_recorders[0]
            recorder.advance_to(self.loop.now)
            recorder.inc(N.SERVE_PHASE_TRANSITIONS)
            recorder.set_gauge(N.G_SCENARIO_PHASE, float(index))
            recorder.event(N.EV_PHASE, index=index, phase=name)

    # -- run ------------------------------------------------------------

    def run(self) -> ServeResult:
        res = self.res
        if res is not None and res.fleet_faults is not None:
            plan = FleetFaultPlan(res.fleet_faults, self.config.num_shards)
            for crash in plan:
                self.loop.at(
                    crash.at_us,
                    (lambda sid: lambda: self.crash_shard(sid))(crash.shard_id),
                )
        schedule = self.config.schedule
        if schedule is not None:
            for index, (start, phase) in enumerate(
                zip(schedule.phase_starts(), schedule.phases)
            ):
                self.loop.at(
                    start,
                    (lambda i, n: lambda: self._phase_marker(i, n))(
                        index, phase.name
                    ),
                )
        for session in self.sessions:
            if isinstance(session, ScriptedSession):
                self.loop.after(
                    session.arrival_delay_us(),
                    (lambda s: lambda: self.issue_scripted(s))(session),
                )
            else:
                self.loop.after(
                    session.next_delay_us(),
                    (lambda s: lambda: self.issue(s))(session),
                )
        self.loop.run()
        if sanitize.env_enabled():
            # End-of-run full sweep, mirroring window-boundary sweeps.
            for shard in self.shards:
                shard.queue.check_invariants()
                if shard.breaker is not None:
                    shard.breaker.check_invariants()
            if self.arbiter is not None:
                self.arbiter.check_invariants()
            if self.ladder is not None:
                self.ladder.check_invariants()
            if self.tier2 is not None:
                self.tier2.check_invariants()
        return self._result()

    def _check_acked_writes(self) -> tuple:
        """Read back every acknowledged write from durable fleet state.

        Runs after the per-shard stats snapshots so its reads do not
        perturb the reported counters.
        """
        lost = 0
        for key in sorted(self._acked):
            shard_id, value = self._acked[key]
            shard = self.shards[shard_id]
            if shard.down:
                continue  # crashed mid-run with no promotion (run ended)
            if shard.engine.tree.get(key) != value:
                lost += 1
        return lost, len(self._acked)

    def _result(self) -> ServeResult:
        duration = self.loop.now
        issued = sum(s.issued for s in self.sessions)
        tenants = [
            TenantResult(
                name=s.name,
                mode=s.mode,
                issued=s.issued,
                completed=s.completed,
                rejected=s.rejected,
                latency=s.latency,
            )
            for s in self.sessions
        ]
        shard_results = []
        for shard in self.shards:
            shard.engine.flush_window()
            shard_results.append(
                ShardResult(
                    shard_id=shard.shard_id,
                    keys_owned=shard.keys_owned,
                    subrequests_served=shard.queue.served,
                    disk_reads=shard.engine.tree.disk.block_reads_total,
                    budget_bytes=shard.engine.cache_budget_total,
                    peak_queue_depth=shard.queue.peak_depth,
                    rejected_at=shard.queue.rejected,
                    busy_us=shard.busy_us,
                    crashed=shard.crashed,
                    promoted=shard.promoted,
                    failover_us=shard.failover_us,
                    wal_replayed=shard.wal_replayed,
                )
            )
        fleet_window = merge_windows(
            [shard.engine.collector.lifetime for shard in self.shards]
        )
        lost_acked, acked_checked = 0, 0
        if self._acked:
            lost_acked, acked_checked = self._check_acked_writes()
        breaker_log: List[str] = []
        degrade_log: List[str] = []
        if self.res is not None:
            for shard in self.shards:
                if shard.breaker is None:
                    continue
                for time_us, src, dst, reason in shard.breaker.transitions:
                    breaker_log.append(
                        f"{time_us:.3f} shard{shard.shard_id} "
                        f"{src}->{dst} {reason}"
                    )
            breaker_log.sort()
            assert self.ladder is not None
            degrade_log = [
                f"{time_us:.3f} L{src}->L{dst} pressure={pressure:.4f}"
                for time_us, src, dst, pressure in self.ladder.transitions
            ]
        l2_probes = l2_hits = l2_demotions = l2_admits = l2_rejects = 0
        l2_ghost_hits = l2_evictions = 0
        l2_budget = l2_used = 0
        l2_share_final = 0.0
        l2_log: List[str] = []
        if self.tier2 is not None:
            self._flush_l2_obs()  # fold the tail beyond the last rebalance
            cache = self.tier2.cache
            for shard in self.shards:
                client = shard.engine.tier2_client
                if client is None:
                    continue
                l2_probes += client.probes
                l2_hits += client.hits
                l2_demotions += client.demotions
                l2_admits += client.admits
            l2_rejects = l2_demotions - l2_admits
            l2_ghost_hits = cache.ghost_hits
            l2_evictions = cache.evictions
            l2_budget = self.tier2.budget_bytes
            l2_used = self.tier2.used_bytes
            l2_share_final = (
                l2_budget / self.config.cache_bytes
                if self.config.cache_bytes
                else 0.0
            )
            if self.arbiter is not None:
                l2_log = [
                    f"{time_us:.3f} share={share:.4f}"
                    for time_us, share in self.arbiter.l2_history
                ]
        obs_fleet_windows: List[WindowSnapshot] = []
        if self.obs_recorders:
            for recorder in self.obs_recorders:
                recorder.advance_to(duration)
            obs_fleet_windows = merge_window_snapshots(
                [r.metrics.windows for r in self.obs_recorders]
            )
        return ServeResult(
            config=self.config,
            duration_us=duration,
            issued=issued,
            completed=self.completed_total,
            rejected=self.rejected_total,
            throughput_qps=(
                self.completed_total / (duration / 1e6) if duration > 0 else 0.0
            ),
            latency=self.latency,
            queue_wait=self.queue_wait,
            tenants=tenants,
            shards=shard_results,
            fleet_window=fleet_window,
            rebalances=self.arbiter.rebalances if self.arbiter else 0,
            evictions_forced=(
                self.arbiter.evictions_forced if self.arbiter else 0
            ),
            trace_digest=self._hasher.hexdigest(),
            trace=self.trace,
            shed_by_reason=self.shed_by_reason,
            breaker_log=breaker_log,
            degrade_log=degrade_log,
            crashes=self.crashes,
            promotions=self.promotions,
            hedges=self.hedges,
            hedge_wins=self.hedge_wins,
            scans_partial=self.scans_partial,
            lost_acked_writes=lost_acked,
            acked_writes_checked=acked_checked,
            obs_recorders=self.obs_recorders,
            obs_fleet_windows=obs_fleet_windows,
            l2_probes=l2_probes,
            l2_hits=l2_hits,
            l2_demotions=l2_demotions,
            l2_admits=l2_admits,
            l2_rejects=l2_rejects,
            l2_ghost_hits=l2_ghost_hits,
            l2_evictions=l2_evictions,
            l2_budget_bytes=l2_budget,
            l2_used_bytes=l2_used,
            l2_share_final=l2_share_final,
            l2_log=l2_log,
        )


def run_serve(config: ServeConfig) -> ServeResult:
    """Run one deterministic serving simulation end to end."""
    return _Simulation(config).run()
