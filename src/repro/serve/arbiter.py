"""Global cache-budget arbiter across serving shards.

Each shard runs its own engine (its own block/range caches, its own
controller when the strategy is AdCache); the arbiter owns the *fleet*
budget and re-splits it at window-scale boundaries using the shards'
exported :class:`~repro.core.stats.WindowStats`.

The split follows a marginal-utility heuristic: the shards paying the
most disk reads since the last rebalance are the ones whose next byte
of cache is worth the most, so target shares are proportional to each
shard's recent ``io_miss`` mass (plus one, so idle shards never zero
out).  Two stabilisers keep the arbiter from thrashing the caches:

* a **min-share floor** guarantees every shard a working set, and
* a **max-step** limit rate-limits per-rebalance share movement, since
  every downsize forcibly evicts hot entries.

When the fleet runs tiered, the arbiter also owns the L1/L2 boundary:
the shared :class:`~repro.serve.tier2.Tier2Coordinator`'s budget is
carved out of the same fleet total, and its fraction is learned at each
rebalance by weighing the shared tier's recent reuse signal (hits plus
ghost hits — bytes L2 did or would have served) against the fleet's
recent L1 miss mass, clamped and rate-limited like the per-shard
shares.  The shard engines then split the remaining L1 pool.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.engine import KVEngine
from repro.errors import ConfigError, InvariantError
from repro.serve.base import ServeComponent
from repro.serve.tier2 import Tier2Coordinator


class BudgetArbiter(ServeComponent):
    """Re-splits one total cache budget across shard engines."""

    __slots__ = (
        "_sanitizer",
        "_engines",
        "total_budget_bytes",
        "min_share",
        "max_step",
        "shares",
        "_miss_marks",
        "rebalances",
        "evictions_forced",
        "history",
        "_tier2",
        "l2_share",
        "min_l2_share",
        "max_l2_share",
        "_l2_reuse_mark",
        "l2_history",
    )

    def __init__(
        self,
        engines: Sequence[KVEngine],
        total_budget_bytes: int,
        min_share: float = 0.05,
        max_step: float = 0.25,
        tier2: Optional[Tier2Coordinator] = None,
        min_l2_share: float = 0.05,
        max_l2_share: float = 0.5,
    ) -> None:
        super().__init__()
        n = len(engines)
        if n == 0:
            raise ConfigError("arbiter needs at least one engine")
        if total_budget_bytes < 0:
            raise ConfigError("total budget must be >= 0")
        if not 0.0 <= min_share <= 1.0 / n:
            raise ConfigError(
                f"min_share must lie in [0, 1/num_shards], got {min_share}"
            )
        if not 0.0 < max_step <= 1.0:
            raise ConfigError(f"max_step must lie in (0, 1], got {max_step}")
        if not 0.0 <= min_l2_share <= max_l2_share < 1.0:
            raise ConfigError(
                f"need 0 <= min_l2_share <= max_l2_share < 1, got "
                f"[{min_l2_share}, {max_l2_share}]"
            )
        self._engines = list(engines)
        self.total_budget_bytes = total_budget_bytes
        self.min_share = min_share
        self.max_step = max_step
        self._tier2 = tier2
        self.min_l2_share = min_l2_share
        self.max_l2_share = max_l2_share
        if tier2 is not None:
            if tier2.budget_bytes >= total_budget_bytes:
                raise ConfigError(
                    f"tier2 budget {tier2.budget_bytes} must leave L1 room "
                    f"inside the {total_budget_bytes}-byte fleet budget"
                )
            self.l2_share = tier2.budget_bytes / total_budget_bytes
            self._l2_reuse_mark = tier2.reuse_signal
        else:
            self.l2_share = 0.0
            self._l2_reuse_mark = 0
        #: ``(time_us, l2_share)`` after each rebalance (tiered only).
        self.l2_history: List[Tuple[float, float]] = []
        #: Current per-shard budget fractions (sum to 1).
        self.shares: List[float] = [1.0 / n] * n
        # Window-sourced miss totals at the last rebalance: the
        # collector's lifetime WindowStats accumulates io_miss from every
        # sealed window, which is exactly the shards' window export.
        self._miss_marks = [e.collector.lifetime.io_miss for e in self._engines]
        self.rebalances = 0
        self.evictions_forced = 0
        #: ``(time_us, shares)`` after each rebalance, for reporting.
        self.history: List[Tuple[float, Tuple[float, ...]]] = []
        self._apply_shares()

    @property
    def num_shards(self) -> int:
        """Engines under arbitration."""
        return len(self._engines)

    @property
    def l1_pool_bytes(self) -> int:
        """Bytes left for the shard L1s after the shared tier's carve-out."""
        tier2 = self._tier2
        return self.total_budget_bytes - (tier2.budget_bytes if tier2 else 0)

    def budgets(self) -> List[int]:
        """Integer per-shard budgets for the current shares (L1 pool)."""
        pool = self.l1_pool_bytes
        budgets = [int(pool * s) for s in self.shares]
        budgets[0] += pool - sum(budgets)
        return budgets

    def _apply_shares(self) -> int:
        evicted = 0
        for engine, budget in zip(self._engines, self.budgets()):
            evicted += engine.set_cache_budget(budget)
        return evicted

    def replace_engine(self, index: int, engine: KVEngine) -> None:
        """Swap in a promoted replica engine at ``index``.

        The newcomer inherits the dead primary's current budget share
        (its caches are resized to realise it exactly, keeping the
        fleet-budget invariant) and its miss mark is re-based so the
        next rebalance sees only post-promotion misses.
        """
        if not 0 <= index < len(self._engines):
            raise ConfigError(
                f"replace_engine index {index} out of range "
                f"[0, {len(self._engines)})"
            )
        self._engines[index] = engine
        self._miss_marks[index] = engine.collector.lifetime.io_miss
        engine.set_cache_budget(self.budgets()[index])
        self._after_mutation()

    def rebalance(self, now_us: float = 0.0) -> int:
        """One arbitration round; returns evictions the moves forced."""
        marks = [e.collector.lifetime.io_miss for e in self._engines]
        deltas = [max(0, m - old) for m, old in zip(marks, self._miss_marks)]
        self._miss_marks = marks
        evicted_l2 = self._rebalance_tier(sum(deltas), now_us)
        # Marginal utility ~ recent miss mass; +1 keeps idle shards alive.
        weights = [float(d) + 1.0 for d in deltas]
        total_weight = sum(weights)
        targets = [w / total_weight for w in weights]
        stepped = [
            share + max(-self.max_step, min(self.max_step, target - share))
            for share, target in zip(self.shares, targets)
        ]
        # Guarantee the floor exactly: every shard keeps min_share, and
        # only the mass above the floors is redistributed proportionally.
        n = len(stepped)
        free = 1.0 - self.min_share * n
        excess = [max(0.0, s - self.min_share) for s in stepped]
        total_excess = sum(excess)
        if free <= 0.0 or total_excess <= 0.0:
            self.shares = [1.0 / n] * n
        else:
            self.shares = [
                self.min_share + e / total_excess * free for e in excess
            ]
        evicted = evicted_l2 + self._apply_shares()
        self.rebalances += 1
        self.evictions_forced += evicted
        self.history.append((now_us, tuple(self.shares)))
        self._after_mutation()
        return evicted

    def _rebalance_tier(self, fleet_miss_delta: int, now_us: float) -> int:
        """Move the L1/L2 boundary from recent reuse vs miss evidence."""
        tier2 = self._tier2
        if tier2 is None:
            return 0
        reuse = tier2.reuse_signal
        reuse_delta = max(0, reuse - self._l2_reuse_mark)
        self._l2_reuse_mark = reuse
        # Marginal utility of the shared tier ~ blocks it served or
        # ghost-proved it would have served; of the L1 pool ~ the disk
        # reads the shards still paid.  +1 on each side keeps a cold
        # start from slamming the boundary to a clamp.
        w_l2 = float(reuse_delta) + 1.0
        w_l1 = float(fleet_miss_delta) + 1.0
        target = w_l2 / (w_l2 + w_l1)
        target = max(self.min_l2_share, min(self.max_l2_share, target))
        step = max(-self.max_step, min(self.max_step, target - self.l2_share))
        self.l2_share = self.l2_share + step
        evicted = tier2.set_budget(
            max(1, int(self.total_budget_bytes * self.l2_share))
        )
        self.l2_history.append((now_us, self.l2_share))
        return evicted

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self) -> None:
        """Shares form a distribution; engine budgets realise it exactly."""
        n = len(self._engines)
        if len(self.shares) != n or len(self._miss_marks) != n:
            raise InvariantError(
                f"BudgetArbiter bookkeeping drift: {len(self.shares)} shares "
                f"/ {len(self._miss_marks)} marks for {n} engines"
            )
        if any(s < 0.0 or s > 1.0 for s in self.shares):
            raise InvariantError(
                f"BudgetArbiter share out of [0, 1]: {self.shares}"
            )
        if abs(sum(self.shares) - 1.0) > 1e-9:
            raise InvariantError(
                f"BudgetArbiter shares sum to {sum(self.shares)!r}, not 1"
            )
        fleet = sum(e.cache_budget_total for e in self._engines)
        if self._tier2 is not None:
            fleet += self._tier2.budget_bytes
        if fleet != self.total_budget_bytes:
            raise InvariantError(
                f"BudgetArbiter budget leak: engines + shared tier hold "
                f"{fleet} bytes of a {self.total_budget_bytes}-byte fleet "
                f"budget"
            )
        if self.rebalances != len(self.history):
            raise InvariantError(
                f"BudgetArbiter history drift: {len(self.history)} entries "
                f"for {self.rebalances} rebalances"
            )
        if self._tier2 is not None:
            if not 0.0 <= self.l2_share < 1.0:
                raise InvariantError(
                    f"BudgetArbiter l2_share out of [0, 1): {self.l2_share}"
                )
            if len(self.l2_history) != self.rebalances:
                raise InvariantError(
                    f"BudgetArbiter l2 history drift: {len(self.l2_history)} "
                    f"entries for {self.rebalances} rebalances"
                )
