"""Global cache-budget arbiter across serving shards.

Each shard runs its own engine (its own block/range caches, its own
controller when the strategy is AdCache); the arbiter owns the *fleet*
budget and re-splits it at window-scale boundaries using the shards'
exported :class:`~repro.core.stats.WindowStats`.

The split follows a marginal-utility heuristic: the shards paying the
most disk reads since the last rebalance are the ones whose next byte
of cache is worth the most, so target shares are proportional to each
shard's recent ``io_miss`` mass (plus one, so idle shards never zero
out).  Two stabilisers keep the arbiter from thrashing the caches:

* a **min-share floor** guarantees every shard a working set, and
* a **max-step** limit rate-limits per-rebalance share movement, since
  every downsize forcibly evicts hot entries.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.engine import KVEngine
from repro.errors import ConfigError, InvariantError
from repro.serve.base import ServeComponent


class BudgetArbiter(ServeComponent):
    """Re-splits one total cache budget across shard engines."""

    __slots__ = (
        "_sanitizer",
        "_engines",
        "total_budget_bytes",
        "min_share",
        "max_step",
        "shares",
        "_miss_marks",
        "rebalances",
        "evictions_forced",
        "history",
    )

    def __init__(
        self,
        engines: Sequence[KVEngine],
        total_budget_bytes: int,
        min_share: float = 0.05,
        max_step: float = 0.25,
    ) -> None:
        super().__init__()
        n = len(engines)
        if n == 0:
            raise ConfigError("arbiter needs at least one engine")
        if total_budget_bytes < 0:
            raise ConfigError("total budget must be >= 0")
        if not 0.0 <= min_share <= 1.0 / n:
            raise ConfigError(
                f"min_share must lie in [0, 1/num_shards], got {min_share}"
            )
        if not 0.0 < max_step <= 1.0:
            raise ConfigError(f"max_step must lie in (0, 1], got {max_step}")
        self._engines = list(engines)
        self.total_budget_bytes = total_budget_bytes
        self.min_share = min_share
        self.max_step = max_step
        #: Current per-shard budget fractions (sum to 1).
        self.shares: List[float] = [1.0 / n] * n
        # Window-sourced miss totals at the last rebalance: the
        # collector's lifetime WindowStats accumulates io_miss from every
        # sealed window, which is exactly the shards' window export.
        self._miss_marks = [e.collector.lifetime.io_miss for e in self._engines]
        self.rebalances = 0
        self.evictions_forced = 0
        #: ``(time_us, shares)`` after each rebalance, for reporting.
        self.history: List[Tuple[float, Tuple[float, ...]]] = []
        self._apply_shares()

    @property
    def num_shards(self) -> int:
        """Engines under arbitration."""
        return len(self._engines)

    def budgets(self) -> List[int]:
        """Integer per-shard budgets for the current shares."""
        budgets = [int(self.total_budget_bytes * s) for s in self.shares]
        budgets[0] += self.total_budget_bytes - sum(budgets)
        return budgets

    def _apply_shares(self) -> int:
        evicted = 0
        for engine, budget in zip(self._engines, self.budgets()):
            evicted += engine.set_cache_budget(budget)
        return evicted

    def replace_engine(self, index: int, engine: KVEngine) -> None:
        """Swap in a promoted replica engine at ``index``.

        The newcomer inherits the dead primary's current budget share
        (its caches are resized to realise it exactly, keeping the
        fleet-budget invariant) and its miss mark is re-based so the
        next rebalance sees only post-promotion misses.
        """
        if not 0 <= index < len(self._engines):
            raise ConfigError(
                f"replace_engine index {index} out of range "
                f"[0, {len(self._engines)})"
            )
        self._engines[index] = engine
        self._miss_marks[index] = engine.collector.lifetime.io_miss
        engine.set_cache_budget(self.budgets()[index])
        self._after_mutation()

    def rebalance(self, now_us: float = 0.0) -> int:
        """One arbitration round; returns evictions the moves forced."""
        marks = [e.collector.lifetime.io_miss for e in self._engines]
        deltas = [max(0, m - old) for m, old in zip(marks, self._miss_marks)]
        self._miss_marks = marks
        # Marginal utility ~ recent miss mass; +1 keeps idle shards alive.
        weights = [float(d) + 1.0 for d in deltas]
        total_weight = sum(weights)
        targets = [w / total_weight for w in weights]
        stepped = [
            share + max(-self.max_step, min(self.max_step, target - share))
            for share, target in zip(self.shares, targets)
        ]
        # Guarantee the floor exactly: every shard keeps min_share, and
        # only the mass above the floors is redistributed proportionally.
        n = len(stepped)
        free = 1.0 - self.min_share * n
        excess = [max(0.0, s - self.min_share) for s in stepped]
        total_excess = sum(excess)
        if free <= 0.0 or total_excess <= 0.0:
            self.shares = [1.0 / n] * n
        else:
            self.shares = [
                self.min_share + e / total_excess * free for e in excess
            ]
        evicted = self._apply_shares()
        self.rebalances += 1
        self.evictions_forced += evicted
        self.history.append((now_us, tuple(self.shares)))
        self._after_mutation()
        return evicted

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self) -> None:
        """Shares form a distribution; engine budgets realise it exactly."""
        n = len(self._engines)
        if len(self.shares) != n or len(self._miss_marks) != n:
            raise InvariantError(
                f"BudgetArbiter bookkeeping drift: {len(self.shares)} shares "
                f"/ {len(self._miss_marks)} marks for {n} engines"
            )
        if any(s < 0.0 or s > 1.0 for s in self.shares):
            raise InvariantError(
                f"BudgetArbiter share out of [0, 1]: {self.shares}"
            )
        if abs(sum(self.shares) - 1.0) > 1e-9:
            raise InvariantError(
                f"BudgetArbiter shares sum to {sum(self.shares)!r}, not 1"
            )
        fleet = sum(e.cache_budget_total for e in self._engines)
        if fleet != self.total_budget_bytes:
            raise InvariantError(
                f"BudgetArbiter budget leak: engines hold {fleet} bytes "
                f"of a {self.total_budget_bytes}-byte fleet budget"
            )
        if self.rebalances != len(self.history):
            raise InvariantError(
                f"BudgetArbiter history drift: {len(self.history)} entries "
                f"for {self.rebalances} rebalances"
            )
