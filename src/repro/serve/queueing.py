"""Requests, per-shard sub-requests, and bounded admission queues.

A client request targets one shard (points, writes) or fans out to
several (scatter-gather scans); each shard-level unit of work is a
:class:`SubRequest` sitting in that shard's bounded :class:`RequestQueue`.
Admission is all-or-nothing per request: if any target queue is full the
whole request is *shed* — counted against both the tenant and the full
queue, never silently dropped.

Two further exits joined admission-time shedding with the resilience
layer, both equally accounted:

* **deadline expiry** — a request can carry a deadline; sub-requests
  whose wait has already blown it are dropped *at dequeue* (executing
  them would burn shard time on an answer the client gave up on), and
* **crash drain** — when a shard executor dies, everything waiting in
  its queue is drained and the affected requests fail over or fail fast.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.errors import CacheError, ConfigError, InvariantError
from repro.serve.base import ServeComponent
from repro.workloads.generator import Operation

Entry = Tuple[str, str]


class Request:
    """One client-issued operation, possibly fanned out across shards."""

    __slots__ = (
        "seq",
        "tenant",
        "op",
        "arrival_us",
        "remaining",
        "parts",
        "deadline_us",
        "done",
        "parts_dropped",
    )

    def __init__(
        self,
        seq: int,
        tenant: str,
        op: Operation,
        arrival_us: float,
        fanout: int,
        deadline_us: float = 0.0,
    ) -> None:
        self.seq = seq
        self.tenant = tenant
        self.op = op
        self.arrival_us = arrival_us
        #: Sub-requests still in flight; the request completes at zero.
        self.remaining = fanout
        #: Per-shard scan results awaiting the scatter-gather merge.
        self.parts: Optional[List[List[Entry]]] = [] if op.kind == "scan" else None
        #: Absolute latest useful completion time (0 = no deadline).
        self.deadline_us = deadline_us
        #: Set once the request has been answered (normally, partially,
        #: or by a winning hedge); late sub-results are then discarded.
        self.done = False
        #: Sub-requests lost to crashes, breakers, or expiry.
        self.parts_dropped = 0

    def expired(self, now_us: float) -> bool:
        """Whether ``now_us`` is past this request's deadline."""
        return bool(self.deadline_us) and now_us > self.deadline_us


class SubRequest:
    """The unit of work one shard's server queues and executes."""

    __slots__ = ("request", "shard", "op", "enqueue_us", "start_us", "epoch")

    def __init__(
        self,
        request: Request,
        shard: int,
        op: Operation,
        enqueue_us: float,
        epoch: int = 0,
    ) -> None:
        self.request = request
        self.shard = shard
        self.op = op
        self.enqueue_us = enqueue_us
        #: Set when service begins; queue wait = start - enqueue.
        self.start_us = 0.0
        #: Shard incarnation this sub was issued against; a crash bumps
        #: the shard's epoch, marking in-flight results as dead.
        self.epoch = epoch


class RequestQueue(ServeComponent):
    """Bounded FIFO of sub-requests in front of one shard's server.

    ``capacity`` is the queue's admission budget: when it is full, new
    requests are rejected (load shedding) and the rejection is counted —
    backpressure is visible in the stats, never a silent drop.
    """

    __slots__ = (
        "_sanitizer",
        "shard_id",
        "capacity",
        "_items",
        "accepted",
        "served",
        "rejected",
        "expired",
        "drained",
        "peak_depth",
    )

    def __init__(self, shard_id: int, capacity: int) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigError(f"queue capacity must be positive, got {capacity}")
        self.shard_id = shard_id
        self.capacity = capacity
        self._items: Deque[SubRequest] = deque()
        self.accepted = 0
        self.served = 0
        self.rejected = 0
        #: Sub-requests dropped at dequeue because their deadline passed.
        self.expired = 0
        #: Sub-requests drained by a shard crash.
        self.drained = 0
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        """Sub-requests currently waiting (excludes the one in service)."""
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def has_room(self) -> bool:
        """Whether one more sub-request can be admitted."""
        return len(self._items) < self.capacity

    def note_rejected(self) -> None:
        """Account one shed request that targeted this full queue."""
        self.rejected += 1
        self._after_mutation()

    def push(self, sub: SubRequest) -> None:
        """Admit a sub-request; the caller must have checked room."""
        if len(self._items) >= self.capacity:
            raise CacheError(
                f"shard {self.shard_id} queue overflow: push beyond "
                f"capacity {self.capacity}"
            )
        self._items.append(sub)
        self.accepted += 1
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)
        self._after_mutation()

    def pop(self) -> SubRequest:
        """Dequeue the oldest waiting sub-request for service."""
        if not self._items:
            raise CacheError(f"shard {self.shard_id} queue underflow: pop when empty")
        sub = self._items.popleft()
        self.served += 1
        self._after_mutation()
        return sub

    def pop_live(
        self, now_us: float
    ) -> Tuple[Optional[SubRequest], List[SubRequest]]:
        """Dequeue the oldest *unexpired* sub-request.

        Sub-requests whose deadline has already passed while queued are
        dropped here — charging their wait against the deadline — and
        returned so the caller can account the request-level failure.
        Returns ``(live_sub_or_None, expired_subs)``.
        """
        dropped: List[SubRequest] = []
        while self._items:
            sub = self._items.popleft()
            if sub.request.expired(now_us) and not sub.request.done:
                self.expired += 1
                dropped.append(sub)
                continue
            self.served += 1
            self._after_mutation()
            return sub, dropped
        if dropped:
            self._after_mutation()
        return None, dropped

    def drain(self) -> List[SubRequest]:
        """Remove everything waiting (shard crash); returns the victims."""
        victims = list(self._items)
        self._items.clear()
        self.drained += len(victims)
        if victims:
            self._after_mutation()
        return victims

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self) -> None:
        """Depth bound plus flow conservation across all four exits."""
        depth = len(self._items)
        if depth > self.capacity:
            raise InvariantError(
                f"RequestQueue shard {self.shard_id}: depth {depth} exceeds "
                f"capacity {self.capacity}"
            )
        if self.accepted - self.served - self.expired - self.drained != depth:
            raise InvariantError(
                f"RequestQueue shard {self.shard_id}: flow imbalance — "
                f"accepted {self.accepted} - served {self.served} - "
                f"expired {self.expired} - drained {self.drained} != "
                f"depth {depth}"
            )
        if (
            min(
                self.accepted,
                self.served,
                self.rejected,
                self.expired,
                self.drained,
            )
            < 0
        ):
            raise InvariantError(
                f"RequestQueue shard {self.shard_id}: negative counter"
            )
        if self.peak_depth < depth or self.peak_depth > self.capacity:
            raise InvariantError(
                f"RequestQueue shard {self.shard_id}: peak depth "
                f"{self.peak_depth} inconsistent with depth {depth} / "
                f"capacity {self.capacity}"
            )
