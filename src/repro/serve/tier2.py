"""Serve-side ownership of the fleet-shared second cache tier.

The shared :class:`~repro.cache.tier2.Tier2Cache` is the first genuinely
fleet-shared mutable state in the system, so it gets an explicit
ownership story: a single :class:`Tier2Coordinator` (a
:class:`~repro.serve.base.ServeComponent`) owns the cache, and every
mutation flows through it from inside the serving event loop — shard
engines execute synchronously in loop callbacks, so probes and
demotions are totally ordered by the loop and two same-seed runs replay
them identically.  Lint rule OWN004 enforces the boundary statically:
the cache's ``tier2_*`` mutators may only be called from this module
(and the cache's own), never from arbitrary call sites.

Per shard, a :class:`Tier2Client` is spliced into the block read path
beneath L1:

* engines **with** a block cache keep their L1 exactly as-is; the
  client becomes the block cache's backing fetch (L1 miss -> L2 probe
  -> disk) and its capacity-eviction listener (L1 demotion -> filtered
  L2 admission).  PR 9's batched paths coalesce through
  ``LSMTree.fetch_block`` and therefore through this same hook — the
  vectorized fast path stays vectorized.
* engines **without** a block cache (the range strategies fetch
  straight from disk) get the client as the tree's block fetch; with no
  L1 victims to demote, admission happens on fill, still gated by the
  same double-hit filter.

The client also carries the per-shard probe/hit counters the sim clock
charges (an L2 hit costs more than an L1 hit, far less than a disk
read) and the per-shard flow counters the engine folds into its obs
windows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cache.tier2 import Tier2Cache
from repro.errors import ConfigError
from repro.lsm.block import BlockHandle, DataBlock
from repro.serve.base import ServeComponent

if TYPE_CHECKING:  # engine imports nothing from here; avoid cycles anyway
    from repro.core.engine import KVEngine


class Tier2Coordinator(ServeComponent):
    """Single owner of the shared L2 cache for one serving fleet.

    Parameters
    ----------
    budget_bytes:
        The shared tier's starting byte budget (the arbiter may move
        it later).
    block_size:
        Charge per cached block; must match the shard trees'.
    sketch_seed:
        Salt for the admission sketch (derived from the run seed).
    """

    def __init__(
        self, budget_bytes: int, block_size: int, sketch_seed: int = 0
    ) -> None:
        super().__init__()
        if budget_bytes <= 0:
            raise ConfigError("tier2 budget_bytes must be positive")
        self.cache = Tier2Cache(
            budget_bytes, block_size, sketch_seed=sketch_seed
        )
        self.resizes = 0
        self.evictions_forced = 0

    # -- the only mutation surface (OWN004 owner) --------------------------

    def probe(self, shard_id: int, handle: BlockHandle) -> Optional[DataBlock]:  # hot-path
        """One shard's L1-miss lookup against the shared tier."""
        return self.cache.tier2_probe((shard_id, handle))

    def offer(self, shard_id: int, handle: BlockHandle, block: DataBlock) -> bool:
        """One shard's L1 demotion; returns whether L2 admitted it."""
        return self.cache.tier2_offer((shard_id, handle), block)

    def set_budget(self, budget_bytes: int) -> int:
        """Arbiter entry point: move the shared budget; returns evictions."""
        evicted = self.cache.tier2_resize(budget_bytes)
        self.resizes += 1
        self.evictions_forced += evicted
        self._after_mutation()
        return evicted

    def drop_shard(self, shard_id: int) -> int:
        """Purge a replaced shard's namespace (replica promotion)."""
        return self.cache.tier2_drop_shard(shard_id)

    # -- read-only surface --------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """Current shared-tier capacity."""
        return self.cache.budget_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes resident in the shared tier."""
        return self.cache.used_bytes

    @property
    def reuse_signal(self) -> int:
        """Hits + ghost hits: the arbiter's L2 marginal-utility signal."""
        return self.cache.reuse_signal

    def attach(self, shard_id: int, engine: "KVEngine") -> "Tier2Client":
        """Splice a client for ``shard_id`` under ``engine``'s L1.

        Rewires the engine's block read path as described in the module
        docstring and registers the client on the engine (for sim-clock
        capture and per-shard obs window folding).
        """
        block_cache = engine.block_cache
        client = Tier2Client(
            self,
            shard_id,
            engine.tree.disk.read_block,
            admit_on_fill=block_cache is None,
        )
        if block_cache is not None:
            block_cache.set_backing_fetch(client.fetch_through)
            block_cache.set_eviction_listener(client.on_demote)
        else:
            engine.tree.set_block_fetch(client.fetch_through)
        engine.tier2_client = client
        return client

    # -- sanitizer protocol -------------------------------------------------

    def check_invariants(self) -> None:
        """Delegate to the shared cache's conservation checks."""
        self.cache.check_invariants()


class Tier2Client:
    """One shard's hook into the shared tier (counters live here).

    The client holds no cached state of its own — only the shard id
    namespace, the disk fetch it shields, and per-shard counters; all
    cache mutation goes through the coordinator.
    """

    __slots__ = (
        "_coordinator",
        "shard_id",
        "_disk_fetch",
        "_admit_on_fill",
        "probes",
        "hits",
        "demotions",
        "admits",
    )

    def __init__(
        self,
        coordinator: Tier2Coordinator,
        shard_id: int,
        disk_fetch,
        admit_on_fill: bool = False,
    ) -> None:
        self._coordinator = coordinator
        self.shard_id = shard_id
        self._disk_fetch = disk_fetch
        self._admit_on_fill = admit_on_fill
        self.probes = 0
        self.hits = 0
        self.demotions = 0
        self.admits = 0

    def fetch_through(self, handle: BlockHandle) -> DataBlock:  # hot-path
        """Serve an L1 miss: shared-L2 probe, then disk."""
        self.probes += 1
        block = self._coordinator.probe(self.shard_id, handle)
        if block is not None:
            self.hits += 1
            return block
        block = self._disk_fetch(handle)
        if self._admit_on_fill:
            # No L1 block cache above us: demand-fill admission, same
            # double-hit filter as the demotion path.
            self.demotions += 1
            if self._coordinator.offer(self.shard_id, handle, block):
                self.admits += 1
        return block

    def on_demote(self, handle: BlockHandle, block: DataBlock) -> None:
        """L1 capacity eviction: offer the victim to the shared tier."""
        self.demotions += 1
        if self._coordinator.offer(self.shard_id, handle, block):
            self.admits += 1
