"""Stack distances and Mattson miss-ratio curves.

The *stack distance* of an access is the number of distinct keys
touched since the previous access to the same key (infinite for first
accesses).  Mattson et al.'s classic result: an LRU cache of capacity
``C`` (in entries) hits exactly the accesses whose stack distance is
``<= C``, so one pass over a trace yields the full miss-ratio curve.

The computation uses a Fenwick (binary indexed) tree over access
positions: position ``i`` holds 1 while it is the *most recent* access
of its key, and the stack distance of an access at position ``j`` to a
key last seen at ``i`` is the number of set positions in ``(i, j)``.
Overall O(n log n).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigError

#: Sentinel distance for a key's first access (cold/compulsory miss).
INFINITE = -1


class _Fenwick:
    """1-based Fenwick tree over integer counts."""

    def __init__(self, size: int) -> None:
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of positions [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += int(self._tree[index])
            index -= index & (-index)
        return total


def stack_distances(keys: Sequence[str]) -> List[int]:
    """Per-access LRU stack distances (``INFINITE`` for first accesses).

    A stack distance of ``d`` means ``d`` distinct *other* keys were
    touched since this key's previous access, so any LRU cache holding
    more than ``d`` entries serves the access as a hit.
    """
    n = len(keys)
    fenwick = _Fenwick(n)
    last_pos: Dict[str, int] = {}
    out: List[int] = []
    for pos, key in enumerate(keys):
        prev = last_pos.get(key)
        if prev is None:
            out.append(INFINITE)
        else:
            # Distinct keys since prev = set flags in (prev, pos).
            distinct = fenwick.prefix_sum(pos - 1) - fenwick.prefix_sum(prev)
            out.append(distinct)
            fenwick.add(prev, -1)
        fenwick.add(pos, 1)
        last_pos[key] = pos
    return out


def mattson_hit_rates(
    keys: Sequence[str], cache_sizes: Iterable[int]
) -> Dict[int, float]:
    """Predicted LRU hit rate at each entry-count capacity.

    An access with stack distance ``d`` hits a cache of capacity
    ``> d`` entries; compulsory (first) accesses always miss.
    """
    sizes = sorted(set(int(s) for s in cache_sizes))
    if not sizes or sizes[0] <= 0:
        raise ConfigError("cache sizes must be positive")
    distances = stack_distances(keys)
    n = len(distances)
    if n == 0:
        return {size: 0.0 for size in sizes}
    finite = np.array([d for d in distances if d != INFINITE], dtype=np.int64)
    out: Dict[int, float] = {}
    for size in sizes:
        hits = int(np.count_nonzero(finite < size)) if finite.size else 0
        out[size] = hits / n
    return out


def miss_ratio_curve(
    keys: Sequence[str], max_size: int, num_points: int = 16
) -> List[tuple]:
    """``(size, miss_ratio)`` samples up to ``max_size`` entries."""
    if max_size <= 0:
        raise ConfigError("max_size must be positive")
    sizes = sorted(
        {max(1, int(round(max_size * i / num_points))) for i in range(1, num_points + 1)}
    )
    hit_rates = mattson_hit_rates(keys, sizes)
    return [(size, 1.0 - hit_rates[size]) for size in sizes]
