"""Workload characterization: the statistics the controller learns from.

Summarises an operation stream into the quantities the paper's state
vector and analysis reason about: operation mix, scan-length
distribution, access skew, and working-set size.  Useful for sanity-
checking generated workloads against intent and for profiling recorded
traces before replaying them for pretraining.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from repro.workloads.generator import Operation


@dataclass
class WorkloadProfile:
    """Summary statistics of one operation stream."""

    ops: int = 0
    gets: int = 0
    scans: int = 0
    puts: int = 0
    deletes: int = 0
    scan_lengths: Dict[int, int] = field(default_factory=dict)
    unique_keys: int = 0
    top1pct_mass: float = 0.0  # access share of the hottest 1% of keys
    estimated_zipf_theta: float = 0.0

    @property
    def get_ratio(self) -> float:
        """Fraction of operations that are point lookups."""
        return self.gets / self.ops if self.ops else 0.0

    @property
    def scan_ratio(self) -> float:
        """Fraction of operations that are scans."""
        return self.scans / self.ops if self.ops else 0.0

    @property
    def write_ratio(self) -> float:
        """Fraction of operations that are puts/deletes."""
        return (self.puts + self.deletes) / self.ops if self.ops else 0.0

    @property
    def avg_scan_length(self) -> float:
        """Mean requested scan length."""
        total = sum(length * count for length, count in self.scan_lengths.items())
        return total / self.scans if self.scans else 0.0


def _estimate_zipf_theta(counts: np.ndarray) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    For a Zipf(theta) popularity law, ``log f_r = const - theta log r``;
    the fitted negative slope estimates theta.  Requires >= 10 distinct
    keys to be meaningful; returns 0 otherwise.
    """
    counts = np.sort(counts)[::-1].astype(float)
    counts = counts[counts > 0]
    if counts.size < 10:
        return 0.0
    # Restrict to the head (the tail is truncated by finite sampling).
    head = counts[: max(10, counts.size // 10)]
    ranks = np.arange(1, head.size + 1, dtype=float)
    slope, _ = np.polyfit(np.log(ranks), np.log(head), 1)
    return float(max(0.0, -slope))


def characterize(ops: Iterable[Operation]) -> WorkloadProfile:
    """Profile an operation stream (consumes it)."""
    profile = WorkloadProfile()
    key_counts: Counter = Counter()
    scan_lengths: Counter = Counter()
    for op in ops:
        profile.ops += 1
        key_counts[op.key] += 1
        if op.kind == "get":
            profile.gets += 1
        elif op.kind == "scan":
            profile.scans += 1
            scan_lengths[op.length] += 1
        elif op.kind == "put":
            profile.puts += 1
        elif op.kind == "delete":
            profile.deletes += 1
    profile.scan_lengths = dict(scan_lengths)
    profile.unique_keys = len(key_counts)
    if key_counts:
        counts = np.array(sorted(key_counts.values(), reverse=True), dtype=float)
        top = max(1, int(round(len(counts) * 0.01)))
        profile.top1pct_mass = float(counts[:top].sum() / counts.sum())
        profile.estimated_zipf_theta = _estimate_zipf_theta(counts)
    return profile


def format_profile(profile: WorkloadProfile) -> str:
    """Human-readable multi-line summary."""
    lines = [
        f"operations        : {profile.ops:,}",
        f"mix (get/scan/wr) : {profile.get_ratio:.2f} / "
        f"{profile.scan_ratio:.2f} / {profile.write_ratio:.2f}",
        f"unique keys       : {profile.unique_keys:,}",
        f"avg scan length   : {profile.avg_scan_length:.1f}",
        f"top-1% key mass   : {profile.top1pct_mass:.2f}",
        f"zipf theta (est.) : {profile.estimated_zipf_theta:.2f}",
    ]
    if profile.scan_lengths:
        hist = ", ".join(
            f"{length}:{count}" for length, count in sorted(profile.scan_lengths.items())
        )
        lines.append(f"scan lengths      : {hist}")
    return "\n".join(lines)
