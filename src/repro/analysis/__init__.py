"""Cache and workload analysis tools.

The paper's related-work section surveys the analytical-modeling
tradition (stack/reuse distances, Mattson's LRU hit-rate construction);
this subpackage provides those tools over this repo's traces and
engines:

* :mod:`repro.analysis.reuse` — reuse/stack-distance computation
  (Fenwick-tree O(n log n)) and Mattson miss-ratio curves, which
  predict an LRU cache's hit rate at *every* size from one pass.
* :mod:`repro.analysis.characterize` — workload characterization:
  operation mix, scan-length histograms, skew estimation.
"""

from repro.analysis.characterize import WorkloadProfile, characterize
from repro.analysis.reuse import mattson_hit_rates, stack_distances

__all__ = [
    "stack_distances",
    "mattson_hit_rates",
    "characterize",
    "WorkloadProfile",
]
