"""Operation-stream generation from workload mixes.

A :class:`WorkloadSpec` fixes the probability of each operation type
(point lookup, short scan, long scan, put, delete), the scan lengths,
and the Zipfian skews; :class:`WorkloadGenerator` turns it into a
deterministic stream of :class:`Operation` tuples.  The paper's four
static workloads (Section 5.2) have dedicated constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple, Optional

import numpy as np

from repro.errors import ConfigError
from repro.workloads.keys import key_of, value_of
from repro.workloads.zipfian import ZipfianGenerator


class Operation(NamedTuple):
    """One workload operation.

    ``kind`` is one of ``"get"``, ``"scan"``, ``"put"``, ``"delete"``;
    ``length`` is meaningful for scans, ``value`` for puts.
    """

    kind: str
    key: str
    length: int = 0
    value: Optional[str] = None


@dataclass
class WorkloadSpec:
    """Probabilities and parameters of one workload phase.

    Ratios must sum to 1 (within rounding).  ``point_skew`` shapes the
    point-lookup/update key popularity, ``scan_skew`` the scan start
    keys; both default to the paper's Zipfian 0.9.
    """

    num_keys: int
    get_ratio: float = 0.0
    short_scan_ratio: float = 0.0
    long_scan_ratio: float = 0.0
    write_ratio: float = 0.0
    delete_ratio: float = 0.0
    short_scan_length: int = 16
    long_scan_length: int = 64
    point_skew: float = 0.9
    scan_skew: float = 0.9
    scrambled: bool = True
    #: Deterministic hot-set rotation: sampled key ids are remapped to
    #: ``(id + hot_offset) mod num_keys`` (see ZipfianGenerator.offset).
    hot_offset: int = 0
    name: str = field(default="workload")

    def __post_init__(self) -> None:
        if self.num_keys <= 0:
            raise ConfigError(
                f"workload {self.name!r}: num_keys must be a positive "
                f"key-space size, got {self.num_keys}"
            )
        ratios = {
            "get_ratio": self.get_ratio,
            "short_scan_ratio": self.short_scan_ratio,
            "long_scan_ratio": self.long_scan_ratio,
            "write_ratio": self.write_ratio,
            "delete_ratio": self.delete_ratio,
        }
        for ratio_name, value in ratios.items():
            if value < 0:
                raise ConfigError(
                    f"workload {self.name!r}: {ratio_name} must be "
                    f"non-negative, got {value:g}"
                )
        total = sum(ratios.values())
        if not 0.999 <= total <= 1.001:
            detail = ", ".join(f"{k}={v:g}" for k, v in ratios.items())
            raise ConfigError(
                f"workload {self.name!r}: operation ratios must sum to 1, "
                f"got {total:g} ({detail})"
            )
        for length_name, length in (
            ("short_scan_length", self.short_scan_length),
            ("long_scan_length", self.long_scan_length),
        ):
            if length <= 0:
                raise ConfigError(
                    f"workload {self.name!r}: {length_name} must be "
                    f"positive, got {length}"
                )
        for skew_name, skew in (
            ("point_skew", self.point_skew),
            ("scan_skew", self.scan_skew),
        ):
            if skew < 0:
                raise ConfigError(
                    f"workload {self.name!r}: {skew_name} must be >= 0, "
                    f"got {skew:g}"
                )
        if self.hot_offset < 0:
            raise ConfigError(
                f"workload {self.name!r}: hot_offset must be >= 0, "
                f"got {self.hot_offset}"
            )

    @property
    def scan_ratio(self) -> float:
        """Combined probability of any scan."""
        return self.short_scan_ratio + self.long_scan_ratio

    @property
    def avg_scan_length(self) -> float:
        """Expected requested scan length, conditioned on scanning."""
        total = self.scan_ratio
        if total == 0:
            return 0.0
        return (
            self.short_scan_ratio * self.short_scan_length
            + self.long_scan_ratio * self.long_scan_length
        ) / total


class WorkloadGenerator:
    """Deterministic stream of operations for one spec.

    Writes overwrite existing keys with bumped version payloads, so the
    database size stays constant while compaction pressure is real.
    """

    _KINDS = ("get", "short_scan", "long_scan", "put", "delete")

    def __init__(self, spec: WorkloadSpec, seed: int = 0, batch: int = 4096) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self._point_keys = ZipfianGenerator(
            spec.num_keys, spec.point_skew, seed=seed + 1,
            scrambled=spec.scrambled, offset=spec.hot_offset,
        )
        self._scan_keys = ZipfianGenerator(
            spec.num_keys, spec.scan_skew, seed=seed + 2,
            scrambled=spec.scrambled, offset=spec.hot_offset,
        )
        self._probs = np.array(
            [
                spec.get_ratio,
                spec.short_scan_ratio,
                spec.long_scan_ratio,
                spec.write_ratio,
                spec.delete_ratio,
            ]
        )
        self._probs = self._probs / self._probs.sum()
        self._batch = batch
        self._version = 1

    def ops(self, count: int) -> Iterator[Operation]:
        """Yield exactly ``count`` operations."""
        spec = self.spec
        remaining = count
        while remaining > 0:
            size = min(self._batch, remaining)
            kinds = self._rng.choice(len(self._KINDS), size=size, p=self._probs)
            point_ids = self._point_keys.sample(size)
            scan_ids = self._scan_keys.sample(size)
            for i in range(size):
                kind = kinds[i]
                if kind == 0:
                    yield Operation("get", key_of(int(point_ids[i])))
                elif kind == 1:
                    start = min(
                        int(scan_ids[i]), spec.num_keys - spec.short_scan_length
                    )
                    yield Operation(
                        "scan", key_of(max(0, start)), length=spec.short_scan_length
                    )
                elif kind == 2:
                    start = min(
                        int(scan_ids[i]), spec.num_keys - spec.long_scan_length
                    )
                    yield Operation(
                        "scan", key_of(max(0, start)), length=spec.long_scan_length
                    )
                elif kind == 3:
                    idx = int(point_ids[i])
                    yield Operation(
                        "put", key_of(idx), value=value_of(idx, self._version)
                    )
                    self._version += 1
                else:
                    yield Operation("delete", key_of(int(point_ids[i])))
            remaining -= size


# -- the paper's static workloads (Section 5.2) ----------------------------------


def point_lookup_workload(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """100% point lookups."""
    return WorkloadSpec(
        num_keys=num_keys, get_ratio=1.0, point_skew=skew, name="point_lookup", **kw
    )


def short_scan_workload(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """100% scans of fixed length 16."""
    return WorkloadSpec(
        num_keys=num_keys, short_scan_ratio=1.0, scan_skew=skew, name="short_scan", **kw
    )


def balanced_workload(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """Even mix: ~33% point lookups, ~33% short scans, ~33% writes."""
    return WorkloadSpec(
        num_keys=num_keys,
        get_ratio=1.0 / 3,
        short_scan_ratio=1.0 / 3,
        write_ratio=1.0 / 3,
        point_skew=skew,
        scan_skew=skew,
        name="balanced",
        **kw,
    )


def batched_mixed_workload(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """Get-heavy mix for the batched-execution bench family.

    90% point lookups / 5% short scans (length 8) / 5% writes over a
    scrambled-zipf keyspace: a read-dominant OLTP-style mix where the
    batched path's honest advantages (one vectorized digest pass per
    miss batch, coalesced block fetches, within-batch duplicate
    sharing) actually apply.  Scan and write work is cache-churn-bound
    — the admission/eviction effort is identical scalar or batched — so
    heavier mixes dilute what batching can show.
    """
    return WorkloadSpec(
        num_keys=num_keys,
        get_ratio=0.9,
        short_scan_ratio=0.05,
        write_ratio=0.05,
        short_scan_length=8,
        point_skew=skew,
        scan_skew=skew,
        name="mixedb",
        **kw,
    )


def long_scan_workload(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """100% scans of fixed length 64."""
    return WorkloadSpec(
        num_keys=num_keys, long_scan_ratio=1.0, scan_skew=skew, name="long_scan", **kw
    )


# -- YCSB core workloads (standard mixes, for cross-paper comparison) --------


def ycsb_a(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """YCSB-A: update heavy (50% reads, 50% updates)."""
    return WorkloadSpec(
        num_keys=num_keys, get_ratio=0.5, write_ratio=0.5, point_skew=skew,
        name="ycsb_a", **kw,
    )


def ycsb_b(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """YCSB-B: read mostly (95% reads, 5% updates)."""
    return WorkloadSpec(
        num_keys=num_keys, get_ratio=0.95, write_ratio=0.05, point_skew=skew,
        name="ycsb_b", **kw,
    )


def ycsb_c(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """YCSB-C: read only."""
    return WorkloadSpec(
        num_keys=num_keys, get_ratio=1.0, point_skew=skew, name="ycsb_c", **kw
    )


def ycsb_e(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """YCSB-E: short scans (95%) with inserts modelled as updates (5%)."""
    return WorkloadSpec(
        num_keys=num_keys, short_scan_ratio=0.95, write_ratio=0.05,
        scan_skew=skew, point_skew=skew, name="ycsb_e", **kw,
    )


def ycsb_f(num_keys: int, skew: float = 0.9, **kw) -> WorkloadSpec:
    """YCSB-F: read-modify-write (50% reads, 50% updates of read keys)."""
    return WorkloadSpec(
        num_keys=num_keys, get_ratio=0.5, write_ratio=0.5, point_skew=skew,
        name="ycsb_f", **kw,
    )
