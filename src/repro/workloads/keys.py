"""Key/value encoding for workloads.

Keys are fixed-width and zero-padded so lexicographic order equals
numeric order — essential for range scans — and sized to the paper's
24-byte keys.  Values carry a deterministic payload marker; their
*logical* size (1000 B) is what the caches charge, so the simulator
does not materialise kilobyte strings.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: "key" + 21 digits = 24 characters, the paper's key size.
KEY_PREFIX = "key"
KEY_DIGITS = 21


def key_of(index: int) -> str:
    """The 24-byte key for logical id ``index``."""
    if index < 0:
        raise ConfigError("key index must be >= 0")
    return f"{KEY_PREFIX}{index:0{KEY_DIGITS}d}"


def index_of(key: str) -> int:
    """Inverse of :func:`key_of`."""
    if not key.startswith(KEY_PREFIX):
        raise ConfigError(f"not a workload key: {key!r}")
    return int(key[len(KEY_PREFIX) :])


def value_of(index: int, version: int = 0) -> str:
    """Deterministic payload for key ``index`` (version bumps on update)."""
    return f"val-{index}-{version}"
