"""The scenarios × strategies atlas: the matrix runner over the registry.

Sweeps every scenario in :mod:`repro.workloads.scenarios` against a set
of cache strategies through the serving simulator, one cell per
(scenario, strategy) pair.  Each cell:

* builds the scenario schedule fresh (schedules are pure functions of
  their params, so this is free determinism insurance),
* runs the fleet with observability on and collects hit rate, simulated
  I/O per op, and tail latency from the obs window reduction,
* **double-runs** and asserts bit-for-bit fleet fingerprint equality —
  a failed cell is a determinism regression, reported and fatal.

The result renders three ways: a machine-readable JSON dict, a markdown
win/loss report (winner per scenario by lowest I/O per op, tie-broken
by p99), and an EXPERIMENTS.md-appendable section.

Lives in :mod:`repro.workloads` for discoverability but is deliberately
**not** re-exported from the package ``__init__`` — it imports
:mod:`repro.serve`, which imports ``repro.workloads``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.strategies import STRATEGIES
from repro.errors import ConfigError
from repro.obs import names as N
from repro.serve.simulator import ServeConfig, ServeResult, run_serve
from repro.workloads.scenarios import (
    ScenarioParams,
    ScenarioSchedule,
    build_scenario,
    scenario_names,
)

#: The default strategy axis: the paper's controller against the two
#: learned baselines and the static split.
DEFAULT_STRATEGIES = ("adcache", "range-lecar", "range-cacheus", "block")

#: Strategy-name suffix selecting the tiered fleet: ``block+l2`` runs the
#: ``block`` engines with ``l2_fraction`` of the (same total) cache
#: budget carved into the fleet-shared second tier.
L2_SUFFIX = "+l2"


def split_strategy(name: str) -> Tuple[str, bool]:
    """``(base_strategy, tiered?)`` for an atlas strategy axis name."""
    if name.endswith(L2_SUFFIX):
        return name[: -len(L2_SUFFIX)], True
    return name, False


@dataclass
class AtlasConfig:
    """One atlas sweep: which cells to run, and at what scale."""

    scenarios: Tuple[str, ...] = ()  # empty = every registered scenario
    strategies: Tuple[str, ...] = DEFAULT_STRATEGIES
    seed: int = 0
    num_keys: int = 3000
    tenants: int = 4
    phase_ops: int = 800
    arrival_rate_ops_s: float = 2000.0
    num_shards: int = 2
    cache_kb: int = 256
    #: Budget fraction ``+l2`` cells carve into the shared tier; the
    #: total stays ``cache_kb`` so tiered-vs-flat is at equal budget.
    l2_fraction: float = 0.25
    queue_depth: int = 64
    window_size: int = 250
    rebalance_every: int = 1000
    #: Re-run every cell and require identical fleet fingerprints.
    double_run: bool = True

    def __post_init__(self) -> None:
        if not self.scenarios:
            self.scenarios = tuple(scenario_names())
        for name in self.scenarios:
            if name not in scenario_names():
                raise ConfigError(
                    f"unknown scenario {name!r}; choose from "
                    f"{scenario_names()}"
                )
        if not self.strategies:
            raise ConfigError("atlas needs >= 1 strategy")
        for strategy in self.strategies:
            base, _ = split_strategy(strategy)
            if base not in STRATEGIES:
                raise ConfigError(
                    f"unknown strategy {strategy!r}; choose from "
                    f"{sorted(STRATEGIES)} (optionally with '{L2_SUFFIX}')"
                )
        if self.cache_kb <= 0:
            raise ConfigError(f"cache_kb must be positive, got {self.cache_kb}")
        if not 0.0 < self.l2_fraction < 1.0:
            raise ConfigError(
                f"l2_fraction must lie in (0, 1), got {self.l2_fraction}"
            )

    def scenario_params(self) -> ScenarioParams:
        """The shared scenario knobs for this sweep."""
        return ScenarioParams(
            num_keys=self.num_keys,
            tenants=self.tenants,
            phase_ops=self.phase_ops,
            arrival_rate_ops_s=self.arrival_rate_ops_s,
            seed=self.seed,
        )

    def serve_config(self, schedule: ScenarioSchedule, strategy: str) -> ServeConfig:
        """The serving config for one cell (``+l2`` names go tiered)."""
        base, tiered = split_strategy(strategy)
        cache_bytes = self.cache_kb * 1024
        return ServeConfig(
            schedule=schedule,
            strategy=base,
            num_shards=self.num_shards,
            seed=self.seed,
            cache_bytes=cache_bytes,
            l2_budget_bytes=int(cache_bytes * self.l2_fraction) if tiered else 0,
            queue_depth=self.queue_depth,
            window_size=self.window_size,
            rebalance_every=self.rebalance_every,
            keep_trace=False,
            obs=True,
        )


@dataclass
class CellOutcome:
    """One (scenario, strategy) cell's measured outcome."""

    scenario: str
    strategy: str
    fingerprint: str
    deterministic: bool
    issued: int
    completed: int
    rejected: int
    hit_rate: float
    io_per_op: float
    p50_us: float
    p99_us: float
    throughput_qps: float
    phase_transitions: int


@dataclass
class AtlasResult:
    """The full matrix plus the per-scenario verdicts."""

    config: AtlasConfig
    cells: List[CellOutcome]
    #: scenario -> winning strategy (lowest I/O per op, then p99, name).
    winners: Dict[str, str] = field(default_factory=dict)
    #: strategy -> scenarios won.
    wins: Dict[str, int] = field(default_factory=dict)

    @property
    def deterministic(self) -> bool:
        """Whether every double-run cell matched bit for bit."""
        return all(c.deterministic for c in self.cells)

    def failures(self) -> List[CellOutcome]:
        """Cells whose double run diverged (always empty on healthy runs)."""
        return [c for c in self.cells if not c.deterministic]

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable matrix (stable key order when dumped sorted)."""
        return {
            "scenarios": list(self.config.scenarios),
            "strategies": list(self.config.strategies),
            "seed": self.config.seed,
            "deterministic": self.deterministic,
            "winners": dict(self.winners),
            "wins": dict(self.wins),
            "cells": [
                {
                    "scenario": c.scenario,
                    "strategy": c.strategy,
                    "fingerprint": c.fingerprint,
                    "deterministic": c.deterministic,
                    "issued": c.issued,
                    "completed": c.completed,
                    "rejected": c.rejected,
                    "hit_rate": round(c.hit_rate, 6),
                    "io_per_op": round(c.io_per_op, 6),
                    "p50_us": round(c.p50_us, 3),
                    "p99_us": round(c.p99_us, 3),
                    "throughput_qps": round(c.throughput_qps, 3),
                    "phase_transitions": c.phase_transitions,
                }
                for c in self.cells
            ],
        }

    def to_json(self) -> str:
        """Stable JSON rendering of :meth:`to_json_dict`."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def to_markdown(self) -> str:
        """Win/loss report: one matrix table plus the per-cell metrics."""
        lines = [
            "### Scenario atlas: scenarios × strategies",
            "",
            f"seed {self.config.seed} · {self.config.tenants} tenants · "
            f"{self.config.num_keys} keys · {self.config.cache_kb} KB fleet "
            f"cache · {self.config.num_shards} shards · "
            f"double-run fingerprints "
            + ("**verified**" if self.deterministic else "**DIVERGED**"),
            "",
            "| scenario | " + " | ".join(self.config.strategies) + " | winner |",
            "|---|" + "---|" * (len(self.config.strategies) + 1),
        ]
        by_cell = {(c.scenario, c.strategy): c for c in self.cells}
        for scenario in self.config.scenarios:
            row = [scenario]
            for strategy in self.config.strategies:
                cell = by_cell[(scenario, strategy)]
                mark = "**" if self.winners.get(scenario) == strategy else ""
                row.append(
                    f"{mark}{cell.io_per_op:.3f} io/op · "
                    f"{cell.hit_rate:.1%}{mark}"
                )
            row.append(self.winners.get(scenario, "-"))
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        tally = " · ".join(
            f"{s}: {self.wins.get(s, 0)}" for s in self.config.strategies
        )
        lines.append(f"Wins (lowest simulated I/O per op): {tally}")
        lines.append("")
        lines.append(
            "| scenario | strategy | issued | shed | p50 us | p99 us | qps |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        for c in self.cells:
            lines.append(
                f"| {c.scenario} | {c.strategy} | {c.issued} | {c.rejected} "
                f"| {c.p50_us:,.0f} | {c.p99_us:,.0f} "
                f"| {c.throughput_qps:,.0f} |"
            )
        lines.append("")
        return "\n".join(lines)


def _windows_counter(result: ServeResult, name: str) -> int:
    return sum(w.counters.get(name, 0) for w in result.obs_fleet_windows)


def _outcome(
    scenario: str, strategy: str, result: ServeResult, deterministic: bool
) -> CellOutcome:
    """Fold one serve run into a cell, metrics taken from the obs layer."""
    if result.obs_fleet_windows:
        hits = _windows_counter(result, N.BLOCK_HITS) + _windows_counter(
            result, N.RANGE_HITS
        )
        io = _windows_counter(result, N.WINDOW_IO_MISS)
        ops = _windows_counter(result, N.WINDOW_OPS)
    else:  # pragma: no cover - obs is always on in atlas runs
        w = result.fleet_window
        hits = w.block_hits + w.range_point_hits + w.range_scan_hits
        io = w.io_miss
        ops = w.ops
    accesses = hits + io
    return CellOutcome(
        scenario=scenario,
        strategy=strategy,
        fingerprint=result.fingerprint(),
        deterministic=deterministic,
        issued=result.issued,
        completed=result.completed,
        rejected=result.rejected,
        hit_rate=hits / accesses if accesses else 0.0,
        io_per_op=io / ops if ops else 0.0,
        p50_us=result.latency.p50,
        p99_us=result.latency.p99,
        throughput_qps=result.throughput_qps,
        phase_transitions=_windows_counter(result, N.SERVE_PHASE_TRANSITIONS),
    )


def run_atlas(
    config: AtlasConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> AtlasResult:
    """Run the full matrix; ``progress`` gets one line per finished cell."""
    params = config.scenario_params()
    cells: List[CellOutcome] = []
    for scenario in config.scenarios:
        for strategy in config.strategies:
            # Fresh schedule per cell: schedules are cheap and pure,
            # and a run must not be able to perturb its sibling cells.
            schedule = build_scenario(scenario, params)
            result = run_serve(config.serve_config(schedule, strategy))
            deterministic = True
            if config.double_run:
                again = run_serve(
                    config.serve_config(build_scenario(scenario, params), strategy)
                )
                deterministic = result.fingerprint() == again.fingerprint()
            cell = _outcome(scenario, strategy, result, deterministic)
            cells.append(cell)
            if progress is not None:
                verdict = "ok" if deterministic else "FINGERPRINT MISMATCH"
                progress(
                    f"{scenario} x {strategy}: io/op={cell.io_per_op:.3f} "
                    f"hit={cell.hit_rate:.1%} p99={cell.p99_us:,.0f}us "
                    f"[{verdict}]"
                )
    result_obj = AtlasResult(config=config, cells=cells)
    _score(result_obj)
    return result_obj


def _score(result: AtlasResult) -> None:
    """Pick each scenario's winner and tally wins per strategy."""
    result.wins = {s: 0 for s in result.config.strategies}
    for scenario in result.config.scenarios:
        contenders = [c for c in result.cells if c.scenario == scenario]
        winner = min(
            contenders, key=lambda c: (c.io_per_op, c.p99_us, c.strategy)
        )
        result.winners[scenario] = winner.strategy
        result.wins[winner.strategy] += 1


def experiments_section(result: AtlasResult) -> str:
    """The markdown block ``repro atlas --append-experiments`` writes."""
    return (
        "\n## Scenario atlas (scenarios × strategies)\n\n"
        + result.to_markdown()
    )
