"""Scenario atlas: adversarial & time-varying workload schedules.

Every related dynamic-workload paper (RusKey, ArceKV) evaluates on
*time-varying* traffic; the paper's own Table 3 phases are the only
dynamic sequence the repo had.  This module is the missing catalogue: a
registry of seeded, composable **scenarios**, each a phase schedule of
per-tenant :class:`~repro.workloads.generator.WorkloadSpec`s that the
serving simulator (:mod:`repro.serve`) plays back over simulated time.

A scenario compiles to a :class:`ScenarioSchedule`:

* phases are **time-based** — every phase has a simulated duration and
  all tenants cross phase boundaries together, so diurnal waves, flash
  crowds and tenant churn line up across the fleet;
* each phase gives each tenant a :class:`TenantPhase`: the operation
  mix it draws from, an op budget, and an arrival-rate scale (0 ops =
  dormant, which is how tenants arrive and churn);
* specs may vary *within* a scenario via :func:`interpolate_specs`
  (skew drift, write-ratio ramps) and rotate their hot set via
  ``WorkloadSpec.hot_offset``;
* everything is a pure function of ``(scenario name, ScenarioParams)``
  — two builds are equal dataclasses, and two serve runs over the same
  schedule produce identical fleet fingerprints.

Scenarios compose: :func:`compose_schedules` concatenates schedules
into one long multi-phase run.  The matrix runner over this registry
lives in :mod:`repro.workloads.atlas`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigError
from repro.workloads.generator import WorkloadSpec

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioParams",
    "ScenarioPhase",
    "ScenarioSchedule",
    "TenantPhase",
    "build_scenario",
    "compose_schedules",
    "describe_scenarios",
    "interpolate_specs",
    "scenario_names",
]


@dataclass(frozen=True)
class TenantPhase:
    """One tenant's load during one phase.

    ``ops`` is the tenant's operation budget for the phase (0 =
    dormant); ``rate_scale`` multiplies the run's base open-loop
    arrival rate, so waves change *intensity* while the op budget
    bounds total work.
    """

    spec: WorkloadSpec
    ops: int
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ConfigError(f"tenant phase ops must be >= 0, got {self.ops}")
        if self.rate_scale < 0:
            raise ConfigError(
                f"tenant phase rate_scale must be >= 0, got {self.rate_scale:g}"
            )

    @property
    def active(self) -> bool:
        """Whether the tenant issues anything during this phase."""
        return self.ops > 0 and self.rate_scale > 0


@dataclass(frozen=True)
class ScenarioPhase:
    """One simulated-time slice of a scenario, for every tenant.

    Tenants absent from ``tenants`` are dormant for the phase — that is
    how arrival and churn are expressed.
    """

    name: str
    duration_us: float
    tenants: Mapping[str, TenantPhase]

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise ConfigError(
                f"phase {self.name!r}: duration_us must be positive, "
                f"got {self.duration_us:g}"
            )

    @property
    def ops(self) -> int:
        """Total op budget across tenants for this phase."""
        return sum(t.ops for t in self.tenants.values())


@dataclass(frozen=True)
class ScenarioSchedule:
    """A fully-resolved scenario: the phases one serve run plays back."""

    name: str
    seed: int
    phases: Tuple[ScenarioPhase, ...]
    #: Router keyspace: every spec's ``num_keys`` must fit inside it.
    num_keys: int
    #: Keys bulk-loaded before the run; ids in ``[preload_keys,
    #: num_keys)`` only exist once a write creates them (growth).
    preload_keys: int
    description: str = ""
    #: The open-loop arrival rate a ``rate_scale`` of 1.0 maps to; the
    #: serving config adopts it so phase durations and offered load
    #: agree (budgets actually drain within their phases).
    arrival_rate_ops_s: float = 2000.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigError(f"scenario {self.name!r}: needs >= 1 phase")
        if self.arrival_rate_ops_s <= 0:
            raise ConfigError(
                f"scenario {self.name!r}: arrival_rate_ops_s must be "
                f"positive, got {self.arrival_rate_ops_s:g}"
            )
        if self.num_keys <= 0:
            raise ConfigError(
                f"scenario {self.name!r}: num_keys must be positive, "
                f"got {self.num_keys}"
            )
        if not 0 < self.preload_keys <= self.num_keys:
            raise ConfigError(
                f"scenario {self.name!r}: preload_keys must lie in "
                f"(0, num_keys={self.num_keys}], got {self.preload_keys}"
            )
        totals: Dict[str, int] = {}
        for phase in self.phases:
            for tenant, load in phase.tenants.items():
                if load.spec.num_keys > self.num_keys:
                    raise ConfigError(
                        f"scenario {self.name!r} phase {phase.name!r}: "
                        f"tenant {tenant!r} spec covers "
                        f"{load.spec.num_keys} keys but the schedule "
                        f"keyspace is {self.num_keys}"
                    )
                totals[tenant] = totals.get(tenant, 0) + load.ops
        if not totals:
            raise ConfigError(f"scenario {self.name!r}: no tenants defined")
        for tenant in sorted(totals):
            if totals[tenant] <= 0:
                raise ConfigError(
                    f"scenario {self.name!r}: tenant {tenant!r} never "
                    f"issues an operation; drop it from the schedule"
                )

    @property
    def tenant_names(self) -> List[str]:
        """Sorted union of tenants over all phases."""
        names = set()
        for phase in self.phases:
            names.update(phase.tenants)
        return sorted(names)

    @property
    def total_ops(self) -> int:
        """Total op budget over the whole schedule."""
        return sum(phase.ops for phase in self.phases)

    @property
    def total_duration_us(self) -> float:
        """Simulated length of the schedule."""
        return sum(phase.duration_us for phase in self.phases)

    def phase_starts(self) -> List[float]:
        """Simulated start time of each phase."""
        starts: List[float] = []
        now = 0.0
        for phase in self.phases:
            starts.append(now)
            now += phase.duration_us
        return starts

    def tenant_total_ops(self, tenant: str) -> int:
        """One tenant's op budget across every phase."""
        return sum(
            phase.tenants[tenant].ops
            for phase in self.phases
            if tenant in phase.tenants
        )


def interpolate_specs(
    start: WorkloadSpec, end: WorkloadSpec, steps: int
) -> List[WorkloadSpec]:
    """Linear schedule of ``steps`` specs from ``start`` to ``end``.

    Operation ratios are interpolated then renormalised to sum to 1;
    skews, scan lengths, key counts and the hot-set offset interpolate
    linearly (integers rounded).  Endpoints are included: the first
    entry equals ``start``'s parameters, the last ``end``'s.
    """
    if steps < 2:
        raise ConfigError(f"interpolation needs >= 2 steps, got {steps}")
    out: List[WorkloadSpec] = []
    for i in range(steps):
        t = i / (steps - 1)

        def lerp(a: float, b: float) -> float:
            return a + (b - a) * t

        ratios = {
            "get_ratio": lerp(start.get_ratio, end.get_ratio),
            "short_scan_ratio": lerp(
                start.short_scan_ratio, end.short_scan_ratio
            ),
            "long_scan_ratio": lerp(start.long_scan_ratio, end.long_scan_ratio),
            "write_ratio": lerp(start.write_ratio, end.write_ratio),
            "delete_ratio": lerp(start.delete_ratio, end.delete_ratio),
        }
        total = sum(ratios.values())
        if total <= 0:
            raise ConfigError("interpolated ratios vanished; check endpoints")
        out.append(
            replace(
                start,
                num_keys=round(lerp(start.num_keys, end.num_keys)),
                short_scan_length=round(
                    lerp(start.short_scan_length, end.short_scan_length)
                ),
                long_scan_length=round(
                    lerp(start.long_scan_length, end.long_scan_length)
                ),
                point_skew=lerp(start.point_skew, end.point_skew),
                scan_skew=lerp(start.scan_skew, end.scan_skew),
                hot_offset=round(lerp(start.hot_offset, end.hot_offset)),
                name=f"{start.name}~{i}",
                **{k: v / total for k, v in ratios.items()},
            )
        )
    return out


def compose_schedules(
    name: str, schedules: Sequence[ScenarioSchedule]
) -> ScenarioSchedule:
    """Concatenate schedules into one long multi-phase run.

    The keyspace is the max over parts; the preload is the first
    part's (later parts' extra keys arrive through writes, exactly as
    within a growth scenario).  Phase names are prefixed with their
    source scenario.
    """
    if not schedules:
        raise ConfigError("compose_schedules needs >= 1 schedule")
    phases: List[ScenarioPhase] = []
    for schedule in schedules:
        for phase in schedule.phases:
            phases.append(
                ScenarioPhase(
                    name=f"{schedule.name}:{phase.name}",
                    duration_us=phase.duration_us,
                    tenants=dict(phase.tenants),
                )
            )
    return ScenarioSchedule(
        name=name,
        seed=schedules[0].seed,
        phases=tuple(phases),
        num_keys=max(s.num_keys for s in schedules),
        preload_keys=schedules[0].preload_keys,
        arrival_rate_ops_s=schedules[0].arrival_rate_ops_s,
        description="; ".join(s.description for s in schedules if s.description),
    )


# -- the registry -------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioParams:
    """Size/seed knobs shared by every scenario builder."""

    num_keys: int = 4000
    tenants: int = 4
    #: Nominal per-tenant op budget for a full-intensity phase.
    phase_ops: int = 1200
    #: Base open-loop arrival rate a ``rate_scale`` of 1.0 maps to.
    arrival_rate_ops_s: float = 2000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_keys < 100:
            raise ConfigError(
                f"scenarios need num_keys >= 100, got {self.num_keys}"
            )
        if self.tenants < 2:
            raise ConfigError(f"scenarios need >= 2 tenants, got {self.tenants}")
        if self.phase_ops <= 0:
            raise ConfigError(f"phase_ops must be positive, got {self.phase_ops}")
        if self.arrival_rate_ops_s <= 0:
            raise ConfigError(
                f"arrival_rate_ops_s must be positive, "
                f"got {self.arrival_rate_ops_s:g}"
            )

    def tenant_name(self, index: int) -> str:
        """Stable tenant naming shared with the serving layer."""
        return f"client{index:02d}"

    def phase_duration_us(self) -> float:
        """Simulated length of one nominal phase.

        Budget and rate scale together, so a phase's wall time is the
        same for every tenant; the 1.25 margin leaves room for the tail
        of the Poisson arrivals to drain the budget.
        """
        return self.phase_ops / self.arrival_rate_ops_s * 1e6 * 1.25


Builder = Callable[[ScenarioParams], ScenarioSchedule]


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: name, intent, and its builder."""

    name: str
    description: str
    build: Builder = field(repr=False)


#: ``name -> Scenario`` for every registered scenario.
SCENARIOS: Dict[str, Scenario] = {}


def _register(name: str, description: str) -> Callable[[Builder], Builder]:
    def deco(build: Builder) -> Builder:
        if name in SCENARIOS:
            raise ConfigError(f"scenario {name!r} registered twice")
        SCENARIOS[name] = Scenario(name, description, build)
        return build

    return deco


def scenario_names() -> List[str]:
    """Sorted registered scenario names."""
    return sorted(SCENARIOS)


def build_scenario(name: str, params: ScenarioParams) -> ScenarioSchedule:
    """Build one registered scenario's schedule."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
    return scenario.build(params)


def describe_scenarios() -> str:
    """Registry-backed help text for ``repro atlas --list-scenarios``."""
    lines = []
    for name in scenario_names():
        lines.append(f"{name:16s} {SCENARIOS[name].description}")
    return "\n".join(lines)


# -- scenario builders --------------------------------------------------------


def _mix(
    num_keys: int,
    get: float = 0.0,
    short: float = 0.0,
    long_: float = 0.0,
    write: float = 0.0,
    skew: float = 0.9,
    name: str = "mix",
    hot_offset: int = 0,
    scrambled: bool = True,
) -> WorkloadSpec:
    total = get + short + long_ + write
    return WorkloadSpec(
        num_keys=num_keys,
        get_ratio=get / total,
        short_scan_ratio=short / total,
        long_scan_ratio=long_ / total,
        write_ratio=write / total,
        point_skew=skew,
        scan_skew=skew,
        hot_offset=hot_offset,
        scrambled=scrambled,
        name=name,
    )


def _uniform_phase(
    params: ScenarioParams, spec: WorkloadSpec, scale: float = 1.0
) -> Dict[str, TenantPhase]:
    ops = max(1, round(params.phase_ops * scale))
    return {
        params.tenant_name(i): TenantPhase(spec, ops, scale)
        for i in range(params.tenants)
    }


@_register(
    "diurnal",
    "offset sinusoidal tenant waves: per-tenant load rises and falls "
    "across 8 phases like timezone-shifted daily traffic",
)
def _diurnal(params: ScenarioParams) -> ScenarioSchedule:
    n_phases = 8
    spec = _mix(
        params.num_keys, get=0.55, short=0.25, write=0.2, name="diurnal_mix"
    )
    phases = []
    for ph in range(n_phases):
        tenants: Dict[str, TenantPhase] = {}
        for t in range(params.tenants):
            wave = math.sin(2.0 * math.pi * (ph / n_phases + t / params.tenants))
            scale = 0.3 + 0.7 * max(0.0, wave)
            tenants[params.tenant_name(t)] = TenantPhase(
                spec, max(1, round(params.phase_ops * scale)), scale
            )
        phases.append(
            ScenarioPhase(f"hour{ph}", params.phase_duration_us(), tenants)
        )
    return ScenarioSchedule(
        name="diurnal",
        seed=params.seed,
        phases=tuple(phases),
        num_keys=params.num_keys,
        preload_keys=params.num_keys,
        arrival_rate_ops_s=params.arrival_rate_ops_s,
        description=SCENARIOS["diurnal"].description,
    )


@_register(
    "flash_crowd",
    "steady balanced traffic until one tenant spikes 8x onto a tiny hot "
    "keyspace, then decays back over two phases",
)
def _flash_crowd(params: ScenarioParams) -> ScenarioSchedule:
    base = _mix(params.num_keys, get=0.5, short=0.3, write=0.2, name="fc_base")
    crowd_hot = _mix(
        max(100, params.num_keys // 20),
        get=0.95,
        write=0.05,
        skew=1.1,
        name="fc_spike",
    )
    crowd_warm = _mix(
        max(100, params.num_keys // 10),
        get=0.9,
        write=0.1,
        skew=1.0,
        name="fc_decay",
    )
    star = params.tenant_name(0)
    phases = []
    for ph in range(6):
        tenants = _uniform_phase(params, base)
        if ph == 2:
            tenants[star] = TenantPhase(crowd_hot, params.phase_ops * 8, 8.0)
        elif ph == 3:
            tenants[star] = TenantPhase(crowd_warm, params.phase_ops * 3, 3.0)
        phases.append(
            ScenarioPhase(f"t{ph}", params.phase_duration_us(), tenants)
        )
    return ScenarioSchedule(
        name="flash_crowd",
        seed=params.seed,
        phases=tuple(phases),
        num_keys=params.num_keys,
        preload_keys=params.num_keys,
        arrival_rate_ops_s=params.arrival_rate_ops_s,
        description=SCENARIOS["flash_crowd"].description,
    )


@_register(
    "zipf_drift",
    "point-heavy traffic whose skew climbs 0.6 -> 1.1 while the "
    "(unscrambled) hot set rotates through the keyspace each phase",
)
def _zipf_drift(params: ScenarioParams) -> ScenarioSchedule:
    n_phases = 6
    start = _mix(
        params.num_keys, get=0.8, short=0.1, write=0.1, skew=0.6,
        name="drift", scrambled=False,
    )
    end = replace(
        start,
        point_skew=1.1,
        scan_skew=1.1,
        hot_offset=(n_phases - 1) * params.num_keys // n_phases,
    )
    specs = interpolate_specs(start, end, n_phases)
    phases = [
        ScenarioPhase(
            f"drift{ph}",
            params.phase_duration_us(),
            _uniform_phase(params, specs[ph]),
        )
        for ph in range(n_phases)
    ]
    return ScenarioSchedule(
        name="zipf_drift",
        seed=params.seed,
        phases=tuple(phases),
        num_keys=params.num_keys,
        preload_keys=params.num_keys,
        arrival_rate_ops_s=params.arrival_rate_ops_s,
        description=SCENARIOS["zipf_drift"].description,
    )


@_register(
    "scan_storm",
    "point-lookup calm, then a long-scan storm phase that floods the "
    "block path, then back — the adversarial case for scan admission",
)
def _scan_storm(params: ScenarioParams) -> ScenarioSchedule:
    calm = _mix(params.num_keys, get=0.9, write=0.1, name="ss_calm")
    gusts = _mix(
        params.num_keys, get=0.3, short=0.6, write=0.1, name="ss_gusts"
    )
    storm = _mix(
        params.num_keys, get=0.1, long_=0.85, write=0.05, name="ss_storm"
    )
    mixed = _mix(
        params.num_keys, get=0.4, short=0.25, long_=0.25, write=0.1,
        name="ss_mixed",
    )
    sequence = [calm, gusts, storm, mixed, calm]
    phases = [
        ScenarioPhase(
            f"{spec.name}_{ph}",
            params.phase_duration_us(),
            _uniform_phase(params, spec),
        )
        for ph, spec in enumerate(sequence)
    ]
    return ScenarioSchedule(
        name="scan_storm",
        seed=params.seed,
        phases=tuple(phases),
        num_keys=params.num_keys,
        preload_keys=params.num_keys,
        arrival_rate_ops_s=params.arrival_rate_ops_s,
        description=SCENARIOS["scan_storm"].description,
    )


@_register(
    "write_flood",
    "write ratio ramps 0.2 -> 0.85 forcing flush/compaction churn and "
    "block invalidation, then two read-heavy recovery phases",
)
def _write_flood(params: ScenarioParams) -> ScenarioSchedule:
    start = _mix(
        params.num_keys, get=0.7, short=0.1, write=0.2, name="wf_ramp"
    )
    peak = _mix(
        params.num_keys, get=0.1, short=0.05, write=0.85, name="wf_peak"
    )
    recover = _mix(params.num_keys, get=0.85, short=0.05, write=0.1, name="wf_recover")
    specs = interpolate_specs(start, peak, 4) + [recover, recover]
    phases = [
        ScenarioPhase(
            f"flood{ph}",
            params.phase_duration_us(),
            _uniform_phase(params, spec),
        )
        for ph, spec in enumerate(specs)
    ]
    return ScenarioSchedule(
        name="write_flood",
        seed=params.seed,
        phases=tuple(phases),
        num_keys=params.num_keys,
        preload_keys=params.num_keys,
        arrival_rate_ops_s=params.arrival_rate_ops_s,
        description=SCENARIOS["write_flood"].description,
    )


@_register(
    "tenant_churn",
    "tenants arrive staggered one phase apart, then the founding tenant "
    "departs — the cache must keep re-learning who matters",
)
def _tenant_churn(params: ScenarioParams) -> ScenarioSchedule:
    spec = _mix(
        params.num_keys, get=0.6, short=0.2, write=0.2, name="churn_mix"
    )
    n_phases = params.tenants + 3
    phases = []
    for ph in range(n_phases):
        tenants: Dict[str, TenantPhase] = {}
        for t in range(params.tenants):
            arrived = ph >= t
            departed = t == 0 and ph >= n_phases - 2
            if arrived and not departed:
                tenants[params.tenant_name(t)] = TenantPhase(
                    spec, params.phase_ops, 1.0
                )
        phases.append(
            ScenarioPhase(f"epoch{ph}", params.phase_duration_us(), tenants)
        )
    return ScenarioSchedule(
        name="tenant_churn",
        seed=params.seed,
        phases=tuple(phases),
        num_keys=params.num_keys,
        preload_keys=params.num_keys,
        arrival_rate_ops_s=params.arrival_rate_ops_s,
        description=SCENARIOS["tenant_churn"].description,
    )


@_register(
    "keyspace_growth",
    "the live keyspace grows 1x -> 3x across phases; only the first "
    "third is preloaded, the rest comes into existence through writes",
)
def _keyspace_growth(params: ScenarioParams) -> ScenarioSchedule:
    n_phases = 5
    max_keys = params.num_keys * 3
    phases = []
    for ph in range(n_phases):
        keys = params.num_keys + (max_keys - params.num_keys) * ph // (
            n_phases - 1
        )
        spec = _mix(
            keys, get=0.45, short=0.1, write=0.45, name=f"grow{ph}"
        )
        phases.append(
            ScenarioPhase(
                f"grow{ph}",
                params.phase_duration_us(),
                _uniform_phase(params, spec),
            )
        )
    return ScenarioSchedule(
        name="keyspace_growth",
        seed=params.seed,
        phases=tuple(phases),
        num_keys=max_keys,
        preload_keys=params.num_keys,
        arrival_rate_ops_s=params.arrival_rate_ops_s,
        description=SCENARIOS["keyspace_growth"].description,
    )
