"""Workload trace recording and replay.

Section 3.1: "The workload logs can be collected for pretraining to
enhance system scalability, learning stability and avoid further online
learning costs."  This module is that logging path: record an operation
stream to a newline-delimited text file, replay it later (for
unsupervised pretraining against a shadow engine, or for reproducing a
production access pattern in tests).

Format: one operation per line —

    g <key>              point lookup
    s <key> <length>     range scan
    p <key> <value>      put
    d <key>              delete

Multi-tenant streams (the serving layer, the scenario atlas) prefix a
line with a tenant tag: ``@<tenant> g <key>``.  Untagged readers skip
the tag; :func:`replay_tagged_trace` preserves it, yielding
``(tenant, op)`` pairs with ``tenant=None`` on untagged lines.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.workloads.generator import Operation

PathLike = Union[str, Path]

#: One ``(tenant, op)`` pair of a tenant-tagged trace.
TaggedOperation = Tuple[str, Operation]

_KIND_TO_CODE = {"get": "g", "scan": "s", "put": "p", "delete": "d"}
_CODE_TO_KIND = {v: k for k, v in _KIND_TO_CODE.items()}


def _encode(op: Operation) -> str:
    code = _KIND_TO_CODE.get(op.kind)
    if code is None:
        raise ConfigError(f"unknown operation kind {op.kind!r}")
    if op.kind == "scan":
        return f"s {op.key} {op.length}"
    if op.kind == "put":
        value = op.value or ""
        if "\n" in value:
            raise ConfigError("trace values must not contain newlines")
        return f"p {op.key} {value}"
    return f"{code} {op.key}"


def _encode_tagged(tenant: str, op: Operation) -> str:
    if not tenant or " " in tenant or "\n" in tenant or "\t" in tenant:
        raise ConfigError(
            f"trace tenant tags must be non-empty and whitespace-free, "
            f"got {tenant!r}"
        )
    return f"@{tenant} {_encode(op)}"


def _decode(line: str, lineno: int) -> Operation:
    parts = line.rstrip("\n").split(" ", 2)
    code = parts[0]
    kind = _CODE_TO_KIND.get(code)
    if kind is None or len(parts) < 2:
        raise ConfigError(f"bad trace line {lineno}: {line!r}")
    key = parts[1]
    if kind == "scan":
        if len(parts) != 3:
            raise ConfigError(f"bad scan line {lineno}: {line!r}")
        try:
            length = int(parts[2])
        except ValueError:
            raise ConfigError(
                f"bad scan length on trace line {lineno}: {line!r}"
            ) from None
        return Operation("scan", key, length=length)
    if kind == "put":
        value = parts[2] if len(parts) == 3 else ""
        return Operation("put", key, value=value)
    return Operation(kind, key)


def _decode_tagged(line: str, lineno: int) -> Tuple[Optional[str], Operation]:
    body = line.rstrip("\n")
    tenant: Optional[str] = None
    if body.startswith("@"):
        tag, _, rest = body.partition(" ")
        tenant = tag[1:]
        if not tenant or not rest:
            raise ConfigError(f"bad tenant tag on trace line {lineno}: {line!r}")
        body = rest
    return tenant, _decode(body, lineno)


def record_trace(
    ops: Iterable[Union[Operation, TaggedOperation]], path: PathLike
) -> int:
    """Write an operation stream to ``path``; returns operations written.

    Items may be bare :class:`Operation` values or ``(tenant, op)``
    pairs; pairs land as tenant-tagged lines.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for item in ops:
            if isinstance(item, Operation):
                fh.write(_encode(item))
            else:
                tenant, op = item
                fh.write(_encode_tagged(tenant, op))
            fh.write("\n")
            count += 1
    return count


def replay_trace(path: PathLike) -> Iterator[Operation]:
    """Lazily yield the operations recorded at ``path`` (tags dropped)."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if line.strip():
                yield _decode_tagged(line, lineno)[1]


def replay_tagged_trace(
    path: PathLike,
) -> Iterator[Tuple[Optional[str], Operation]]:
    """Lazily yield ``(tenant, op)`` pairs; ``tenant`` is None untagged."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if line.strip():
                yield _decode_tagged(line, lineno)


def load_trace(path: PathLike) -> List[Operation]:
    """Eagerly load a recorded trace."""
    return list(replay_trace(path))


def load_tagged_trace(path: PathLike) -> List[Tuple[Optional[str], Operation]]:
    """Eagerly load a recorded trace with its tenant tags."""
    return list(replay_tagged_trace(path))


class TracingSink:
    """Wrap an engine so every executed operation is also recorded.

    Usage::

        sink = TracingSink(engine)
        sink.get(key); sink.scan(key, 16); sink.put(key, value)
        sink.save("workload.trace")
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        self.operations: List[Operation] = []

    def get(self, key: str):
        """Point lookup, recorded."""
        self.operations.append(Operation("get", key))
        return self._engine.get(key)

    def scan(self, start: str, length: int):
        """Range scan, recorded."""
        self.operations.append(Operation("scan", start, length=length))
        return self._engine.scan(start, length)

    def put(self, key: str, value: str) -> None:
        """Put, recorded."""
        self.operations.append(Operation("put", key, value=value))
        self._engine.put(key, value)

    def delete(self, key: str) -> None:
        """Delete, recorded."""
        self.operations.append(Operation("delete", key))
        self._engine.delete(key)

    def save(self, path: PathLike) -> int:
        """Persist everything recorded so far."""
        return record_trace(self.operations, path)
