"""Workload trace recording and replay.

Section 3.1: "The workload logs can be collected for pretraining to
enhance system scalability, learning stability and avoid further online
learning costs."  This module is that logging path: record an operation
stream to a newline-delimited text file, replay it later (for
unsupervised pretraining against a shadow engine, or for reproducing a
production access pattern in tests).

Format: one operation per line —

    g <key>              point lookup
    s <key> <length>     range scan
    p <key> <value>      put
    d <key>              delete
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import ConfigError
from repro.workloads.generator import Operation

PathLike = Union[str, Path]

_KIND_TO_CODE = {"get": "g", "scan": "s", "put": "p", "delete": "d"}
_CODE_TO_KIND = {v: k for k, v in _KIND_TO_CODE.items()}


def _encode(op: Operation) -> str:
    code = _KIND_TO_CODE.get(op.kind)
    if code is None:
        raise ConfigError(f"unknown operation kind {op.kind!r}")
    if op.kind == "scan":
        return f"s {op.key} {op.length}"
    if op.kind == "put":
        value = op.value or ""
        if "\n" in value:
            raise ConfigError("trace values must not contain newlines")
        return f"p {op.key} {value}"
    return f"{code} {op.key}"


def _decode(line: str, lineno: int) -> Operation:
    parts = line.rstrip("\n").split(" ", 2)
    code = parts[0]
    kind = _CODE_TO_KIND.get(code)
    if kind is None or len(parts) < 2:
        raise ConfigError(f"bad trace line {lineno}: {line!r}")
    key = parts[1]
    if kind == "scan":
        if len(parts) != 3:
            raise ConfigError(f"bad scan line {lineno}: {line!r}")
        return Operation("scan", key, length=int(parts[2]))
    if kind == "put":
        value = parts[2] if len(parts) == 3 else ""
        return Operation("put", key, value=value)
    return Operation(kind, key)


def record_trace(ops: Iterable[Operation], path: PathLike) -> int:
    """Write an operation stream to ``path``; returns operations written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for op in ops:
            fh.write(_encode(op))
            fh.write("\n")
            count += 1
    return count


def replay_trace(path: PathLike) -> Iterator[Operation]:
    """Lazily yield the operations recorded at ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if line.strip():
                yield _decode(line, lineno)


def load_trace(path: PathLike) -> List[Operation]:
    """Eagerly load a recorded trace."""
    return list(replay_trace(path))


class TracingSink:
    """Wrap an engine so every executed operation is also recorded.

    Usage::

        sink = TracingSink(engine)
        sink.get(key); sink.scan(key, 16); sink.put(key, value)
        sink.save("workload.trace")
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        self.operations: List[Operation] = []

    def get(self, key: str):
        """Point lookup, recorded."""
        self.operations.append(Operation("get", key))
        return self._engine.get(key)

    def scan(self, start: str, length: int):
        """Range scan, recorded."""
        self.operations.append(Operation("scan", start, length=length))
        return self._engine.scan(start, length)

    def put(self, key: str, value: str) -> None:
        """Put, recorded."""
        self.operations.append(Operation("put", key, value=value))
        self._engine.put(key, value)

    def delete(self, key: str) -> None:
        """Delete, recorded."""
        self.operations.append(Operation("delete", key))
        self._engine.delete(key)

    def save(self, path: PathLike) -> int:
        """Persist everything recorded so far."""
        return record_trace(self.operations, path)
