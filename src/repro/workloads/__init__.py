"""Workload generation: Zipfian keys, operation mixes, dynamic phases.

* :mod:`repro.workloads.keys` — fixed-width key/value encoding matching
  the paper's 24 B keys and 1000 B (logical) values.
* :mod:`repro.workloads.zipfian` — YCSB-style Zipfian generator with
  optional key scrambling.
* :mod:`repro.workloads.generator` — operation streams from a
  :class:`WorkloadSpec` mix (the paper's four static workloads are
  provided as constructors).
* :mod:`repro.workloads.dynamic` — the Table 3 phase sequence A-F.
"""

from repro.workloads.generator import (
    Operation,
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
    long_scan_workload,
    point_lookup_workload,
    short_scan_workload,
)
from repro.workloads.dynamic import DYNAMIC_PHASES, dynamic_phase_specs
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "Operation",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ZipfianGenerator",
    "point_lookup_workload",
    "short_scan_workload",
    "balanced_workload",
    "long_scan_workload",
    "DYNAMIC_PHASES",
    "dynamic_phase_specs",
]
