"""Workload generation: Zipfian keys, operation mixes, dynamic phases.

* :mod:`repro.workloads.keys` — fixed-width key/value encoding matching
  the paper's 24 B keys and 1000 B (logical) values.
* :mod:`repro.workloads.zipfian` — YCSB-style Zipfian generator with
  optional key scrambling.
* :mod:`repro.workloads.generator` — operation streams from a
  :class:`WorkloadSpec` mix (the paper's four static workloads are
  provided as constructors).
* :mod:`repro.workloads.dynamic` — the Table 3 phase sequence A-F.
* :mod:`repro.workloads.scenarios` — the scenario atlas: seeded,
  composable multi-phase schedules (diurnal waves, flash crowds,
  zipf drift, scan storms, write floods, tenant churn, key-space
  growth) for the serving simulator.
* :mod:`repro.workloads.atlas` — the scenarios × strategies matrix
  runner (imported directly, not re-exported here: it depends on
  :mod:`repro.serve`, which imports this package).
"""

from repro.workloads.generator import (
    Operation,
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
    long_scan_workload,
    point_lookup_workload,
    short_scan_workload,
)
from repro.workloads.dynamic import DYNAMIC_PHASES, dynamic_phase_specs
from repro.workloads.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioParams,
    ScenarioPhase,
    ScenarioSchedule,
    TenantPhase,
    build_scenario,
    compose_schedules,
    describe_scenarios,
    interpolate_specs,
    scenario_names,
)
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "Operation",
    "SCENARIOS",
    "Scenario",
    "ScenarioParams",
    "ScenarioPhase",
    "ScenarioSchedule",
    "TenantPhase",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ZipfianGenerator",
    "build_scenario",
    "compose_schedules",
    "describe_scenarios",
    "interpolate_specs",
    "point_lookup_workload",
    "scenario_names",
    "short_scan_workload",
    "balanced_workload",
    "long_scan_workload",
    "DYNAMIC_PHASES",
    "dynamic_phase_specs",
]
