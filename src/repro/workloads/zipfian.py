"""YCSB-style Zipfian key-id generator.

Implements the Gray et al. rejection-free Zipfian sampler used by YCSB,
with the zeta normalisation constant computed once per ``(n, theta)``.
With ``scrambled=True`` ranks are permuted with a salted FNV hash so hot
keys spread across the key space (YCSB's ScrambledZipfian); unscrambled,
rank 0 is key 0 — useful when hot-range locality is itself under test.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigError

_zeta_cache: Dict[Tuple[int, float], float] = {}


def zeta(n: int, theta: float) -> float:
    """Generalized harmonic number ``sum_{i=1..n} 1/i^theta`` (cached)."""
    key = (n, theta)
    cached = _zeta_cache.get(key)
    if cached is None:
        cached = float(np.sum(1.0 / np.power(np.arange(1, n + 1), theta)))
        _zeta_cache[key] = cached
    return cached


class ZipfianGenerator:
    """Samples ids in ``[0, n)`` with Zipf(theta) popularity.

    Parameters
    ----------
    n:
        Key-space size.
    theta:
        Skew >= 0; 0 is uniform, the paper's default is 0.9 and its
        skewness experiment sweeps past 1.0.  Below 1.0 the YCSB
        closed-form transform is used; at or above 1.0 (where that
        transform's constants diverge) sampling falls back to an exact
        inverse-CDF table.
    seed:
        RNG seed.
    scrambled:
        Permute ranks across the key space (YCSB ScrambledZipfian).
    offset:
        Deterministic hot-set rotation: every sampled id is remapped to
        ``(id + offset) mod n``.  The rank distribution is untouched —
        only *which* keys are hot moves — so time-varying workloads can
        rotate the hot set mid-run without changing the skew shape.
    """

    def __init__(
        self,
        n: int,
        theta: float = 0.9,
        seed: int = 0,
        scrambled: bool = True,
        offset: int = 0,
    ) -> None:
        if n <= 0:
            raise ConfigError("n must be positive")
        if theta < 0.0:
            raise ConfigError("theta must be >= 0")
        if offset < 0:
            raise ConfigError(f"offset must be >= 0, got {offset}")
        self.n = n
        self.theta = theta
        self.scrambled = scrambled
        self.offset = offset % n
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self._cdf: "np.ndarray | None" = None
        if theta >= 1.0:
            pmf = 1.0 / np.power(np.arange(1, n + 1, dtype=float), theta)
            self._cdf = np.cumsum(pmf / pmf.sum())
        elif theta > 0.0:
            self._zeta_n = zeta(n, theta)
            self._zeta_2 = zeta(2, theta)
            self._alpha = 1.0 / (1.0 - theta)
            self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
                1.0 - self._zeta_2 / self._zeta_n
            )

    def _rank_from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Vectorized YCSB Zipfian transform: uniform -> rank."""
        uz = u * self._zeta_n
        ranks = (self.n * np.power(self._eta * u - self._eta + 1.0, self._alpha)).astype(
            np.int64
        )
        ranks = np.where(uz < 1.0, 0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5**self.theta), 1, ranks)
        return np.clip(ranks, 0, self.n - 1)

    def _scramble(self, ranks: np.ndarray) -> np.ndarray:
        if not self.scrambled:
            return ranks
        # Vectorized splitmix64 finalizer, salted, folded into [0, n).
        with np.errstate(over="ignore"):
            salt = (self._seed * 0x9E3779B97F4A7C15 + 1) & 0xFFFFFFFFFFFFFFFF
            x = ranks.astype(np.uint64) + np.uint64(salt)
            x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            x = x ^ (x >> np.uint64(31))
        return (x % np.uint64(self.n)).astype(np.int64)

    def _rotate(self, ids: np.ndarray) -> np.ndarray:
        if not self.offset:
            return ids
        return (ids + np.int64(self.offset)) % np.int64(self.n)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` key ids."""
        if self.theta == 0.0:
            return self._rotate(self._rng.integers(0, self.n, size=size))
        u = self._rng.random(size)
        if self._cdf is not None:
            ranks = np.searchsorted(self._cdf, u).astype(np.int64)
            return self._rotate(self._scramble(np.clip(ranks, 0, self.n - 1)))
        return self._rotate(self._scramble(self._rank_from_uniform(u)))

    def next(self) -> int:
        """Draw one key id."""
        return int(self.sample(1)[0])
