"""The paper's dynamic workload: phases A-F (Table 3).

Operation ratios per phase (Get / Short Scan / Long Scan / Write, %):

    A:  1 /  1 / 97 /  1      (analytical long scans)
    B:  1 / 49 / 49 /  1      (mixed scans)
    C: 49 / 49 /  1 /  1      (read-heavy points + short scans)
    D: 25 / 25 /  1 / 49      (ingestion begins)
    E:  1 / 49 /  1 / 49      (scan + write)
    F:  1 / 12 / 12 / 75      (write-dominated)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.generator import WorkloadSpec

#: (get, short scan, long scan, write) percentages per phase.
DYNAMIC_PHASES: Dict[str, Tuple[int, int, int, int]] = {
    "A": (1, 1, 97, 1),
    "B": (1, 49, 49, 1),
    "C": (49, 49, 1, 1),
    "D": (25, 25, 1, 49),
    "E": (1, 49, 1, 49),
    "F": (1, 12, 12, 75),
}


def dynamic_phase_specs(
    num_keys: int,
    skew: float = 0.9,
    phases: str = "ABCDEF",
    scrambled: bool = True,
) -> List[Tuple[str, WorkloadSpec]]:
    """Build ``(phase-name, spec)`` pairs for a phase string like "ABCDEF"."""
    out: List[Tuple[str, WorkloadSpec]] = []
    for name in phases:
        get, short, long_, write = DYNAMIC_PHASES[name]
        out.append(
            (
                name,
                WorkloadSpec(
                    num_keys=num_keys,
                    get_ratio=get / 100.0,
                    short_scan_ratio=short / 100.0,
                    long_scan_ratio=long_ / 100.0,
                    write_ratio=write / 100.0,
                    point_skew=skew,
                    scan_skew=skew,
                    scrambled=scrambled,
                    name=f"phase_{name}",
                ),
            )
        )
    return out
