"""Merging iterators for range scans.

A scan must merge one cursor per *sorted run*: the MemTable, each Level-0
file, and one per non-empty deeper level.  Sources yield
``(key, priority, value)`` triples in key order, where a lower priority
number means a newer run; :func:`merge_scan` then keeps the newest
version of each key and drops tombstones.

Block reads happen lazily through a ``fetch`` callable, so a block cache
can sit in front of the metered disk transparently.  The one eager cost
is the *seek*: initialising the merge pulls the first entry from every
source, forcing one block read per overlapping run — exactly the
``(L - 1) + r`` seek term in the paper's I/O model.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, List, Optional, Tuple

from repro.lsm.block import BlockHandle, DataBlock
from repro.lsm.memtable import MemTable
from repro.lsm.sstable import SSTable

BlockFetch = Callable[[BlockHandle], DataBlock]
MergeItem = Tuple[str, int, Optional[str]]  # (key, priority, value)


def memtable_source(memtable: MemTable, start: str, priority: int) -> Iterator[MergeItem]:
    """Merge source over the MemTable's entries >= ``start``."""
    for key, value in memtable.entries_from(start):
        yield key, priority, value


def sstable_source(
    table: SSTable, start: str, priority: int, fetch: BlockFetch
) -> Iterator[MergeItem]:  # hot-path
    """Merge source over one SSTable's entries >= ``start``.

    Reads blocks one at a time through ``fetch`` as the consumer
    advances; a table entirely before ``start`` yields nothing and
    costs no I/O.
    """
    block_no = table.first_block_no_for(start)
    if block_no is None:
        return
    handles = table.block_handles
    num_blocks = len(handles)
    first = True
    while block_no < num_blocks:
        block = fetch(handles[block_no])
        entries = block.entries_from(start) if first else block.entries_view()
        first = False
        for key, value in entries:
            yield key, priority, value
        block_no += 1


def level_source(
    files: List[SSTable], start: str, priority: int, fetch: BlockFetch
) -> Iterator[MergeItem]:  # hot-path
    """Merge source over a sorted (non-overlapping) level from ``start``.

    Walks the level's files in key order, opening each lazily, so a scan
    only touches the files it actually reaches.  Built with
    ``chain.from_iterable`` so consuming an item resumes the per-table
    generator directly instead of trampolining through an extra
    delegating frame per entry.
    """
    return itertools.chain.from_iterable(
        sstable_source(table, start, priority, fetch)
        for table in files
        if table.last_key >= start
    )


def merge_scan(sources: List[Iterator[MergeItem]]) -> Iterator[Tuple[str, str]]:
    """Merge run sources into live ``(key, value)`` pairs in key order.

    For duplicate keys, the source with the lowest priority number (the
    newest run) wins; tombstones suppress the key entirely.
    """
    merged = heapq.merge(*sources)
    current_key: Optional[str] = None
    for key, _priority, value in merged:
        if key == current_key:
            continue  # older version of a key we already resolved
        current_key = key
        if value is not None:
            yield key, value
