"""LSM-tree key-value store substrate.

A from-scratch, RocksDB-flavoured LSM-tree used as the storage engine
underneath AdCache.  It reproduces every mechanism the paper's caching
layer interacts with:

* a sorted in-memory MemTable flushed to immutable SSTables,
* SSTables made of fixed-fanout data blocks plus index and bloom filter,
* leveled ("1-leveling") compaction with a configurable size ratio and
  Level-0 slowdown / stop triggers,
* merging iterators that open one cursor per overlapping sorted run, and
* a simulated disk that counts every data-block read (the paper's
  "SST reads" metric).

Public entry point: :class:`~repro.lsm.tree.LSMTree`.
"""

from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree

__all__ = ["LSMOptions", "LSMTree"]
