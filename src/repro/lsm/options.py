"""Configuration for the LSM-tree substrate.

Defaults mirror the paper's experimental setup (Section 5.1) scaled to
simulator-friendly sizes: 1-leveling compaction with a size ratio of 10,
bloom filters at 10 bits per key, 4 KB data blocks holding ``B = 4``
entries of 24-byte keys and 1000-byte values, write slowdown at 4 L0
files and write stop at 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Logical key size in bytes (paper Section 5.1).
KEY_SIZE = 24
#: Logical value size in bytes (paper Section 5.1).
VALUE_SIZE = 1000
#: Logical data-block size in bytes (paper Section 5.1).
BLOCK_SIZE = 4096


@dataclass
class LSMOptions:
    """Tunables for :class:`~repro.lsm.tree.LSMTree`.

    Attributes
    ----------
    entries_per_block:
        Number of key-value entries per data block (``B`` in the paper's
        reward model).  With 24 B keys and 1000 B values a 4 KB block
        holds 4 entries.
    entries_per_sstable:
        Capacity of one SSTable.  The paper uses 4 MB files of 4 KB
        blocks, i.e. 1024 blocks; we default to a smaller file so the
        simulator compacts at laptop scale while keeping many files per
        level.
    memtable_entries:
        Flush threshold for the MemTable.
    size_ratio:
        Capacity ratio between adjacent levels (paper: 10).
    level0_file_num_compaction_trigger:
        Number of L0 files that triggers an L0->L1 compaction.
    level0_slowdown_writes_trigger:
        L0 file count at which writes are slowed (paper: 4).
    level0_stop_writes_trigger:
        L0 file count at which writes stop (paper: 8).
    max_levels:
        Upper bound on the number of levels.
    bloom_bits_per_key:
        Bloom filter budget (paper: 10 bits/key, FPR ~1%).
    key_size / value_size / block_size:
        Logical byte sizes used for cache accounting and the reward
        model; they do not change how much host memory the simulator
        uses.
    auto_compact:
        When True (default) compactions run synchronously as soon as a
        trigger fires.  Tests can disable this to exercise stall errors.
    max_read_retries:
        How many times a transiently failed block read is re-issued
        before the error escalates to the caller.
    retry_backoff_us:
        Simulated latency charged for the first retry; each further
        retry doubles it (exponential backoff).  Charged to the bench
        clock, not host time.
    retry_jitter_frac:
        Fraction of each retry stall drawn as symmetric *seeded* jitter
        (see :class:`~repro.faults.retry.RetryPolicy`).  0 (default)
        keeps the historical deterministic doubling schedule byte for
        byte.
    max_corruption_repairs:
        How many corrupted-block repairs one logical read may attempt
        before escalating (guards against a fault storm re-corrupting
        the block as fast as it is repaired).
    seed:
        Seed for the bloom-filter hash salt; fixed for reproducibility.
    """

    entries_per_block: int = 4
    entries_per_sstable: int = 256
    memtable_entries: int = 256
    size_ratio: int = 10
    level0_file_num_compaction_trigger: int = 4
    level0_slowdown_writes_trigger: int = 4
    level0_stop_writes_trigger: int = 8
    max_levels: int = 7
    bloom_bits_per_key: int = 10
    key_size: int = KEY_SIZE
    value_size: int = VALUE_SIZE
    block_size: int = BLOCK_SIZE
    auto_compact: bool = True
    max_read_retries: int = 4
    retry_backoff_us: float = 50.0
    retry_jitter_frac: float = 0.0
    max_corruption_repairs: int = 3
    seed: int = field(default=0x5EED)

    def __post_init__(self) -> None:
        positive_fields = (
            "entries_per_block",
            "entries_per_sstable",
            "memtable_entries",
            "size_ratio",
            "level0_file_num_compaction_trigger",
            "level0_slowdown_writes_trigger",
            "level0_stop_writes_trigger",
            "max_levels",
            "key_size",
            "value_size",
            "block_size",
        )
        for name in positive_fields:
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"{name} must be a positive integer, got {value!r}")
        if self.bloom_bits_per_key < 0:
            raise ConfigError("bloom_bits_per_key must be >= 0")
        if self.max_read_retries < 0:
            raise ConfigError("max_read_retries must be >= 0")
        if self.retry_backoff_us < 0:
            raise ConfigError("retry_backoff_us must be >= 0")
        if not 0.0 <= self.retry_jitter_frac < 1.0:
            raise ConfigError("retry_jitter_frac must lie in [0, 1)")
        if self.max_corruption_repairs < 0:
            raise ConfigError("max_corruption_repairs must be >= 0")
        if self.entries_per_sstable % self.entries_per_block:
            raise ConfigError(
                "entries_per_sstable must be a multiple of entries_per_block"
            )
        if self.level0_stop_writes_trigger < self.level0_slowdown_writes_trigger:
            raise ConfigError(
                "level0_stop_writes_trigger must be >= level0_slowdown_writes_trigger"
            )
        if self.size_ratio < 2:
            raise ConfigError("size_ratio must be >= 2")

    @property
    def blocks_per_sstable(self) -> int:
        """Number of data blocks in a full SSTable."""
        return self.entries_per_sstable // self.entries_per_block

    def level_capacity_entries(self, level: int) -> int:
        """Target capacity of ``level`` in entries (L1 = one SSTable's worth
        times the compaction trigger, growing by ``size_ratio`` per level)."""
        if level <= 0:
            # L0 is bounded by file count, not entry count.
            return self.level0_file_num_compaction_trigger * self.entries_per_sstable
        base = self.entries_per_sstable * self.level0_file_num_compaction_trigger
        return base * (self.size_ratio ** (level - 1))
