"""Bloom filter for SSTable point-lookup pruning.

Standard k-hash bloom filter over a Python ``bytearray`` bit vector.
Hashing uses double hashing (Kirsch–Mitzenmacher) on top of two salted
FNV-1a digests, which keeps construction fast and dependency-free while
giving the usual ``(1 - e^{-kn/m})^k`` false-positive behaviour.

The paper enables 10 bits per key, which it treats as "FPR close to
zero" in the reward model; :func:`theoretical_fpr` exposes the analytic
rate so tests can validate the measured one against it.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

#: Golden-ratio mix distinguishing a filter's second base hash; shared
#: with batch callers that precompute digests (see ``fnv1a_batch_multi``).
GOLDEN_GAMMA = 0x9E3779B97F4A7C15

#: Batches at or below this size take the scalar hash loop — numpy's
#: fixed per-call overhead beats its per-key savings under ~8 keys.
_SCALAR_BATCH_MAX = 7


def _fnv1a(data: bytes, salt: int) -> int:  # hot-path
    """64-bit FNV-1a hash of ``data`` seeded with ``salt``."""
    h = (_FNV_OFFSET ^ salt) & _MASK64
    prime = _FNV_PRIME
    mask = _MASK64
    for byte in data:
        h = ((h ^ byte) * prime) & mask
    return h


def fnv1a(data: bytes, salt: int = 0) -> int:
    """Public 64-bit salted FNV-1a hash (shared by sketches and shards)."""
    return _fnv1a(data, salt)


def fnv1a_batch(datas: Sequence[bytes], salt: int) -> "np.ndarray":
    """Salted 64-bit FNV-1a of every byte string in ``datas`` at once.

    The scalar hash folds one byte at a time; here the fold loop runs
    over byte *positions* (bounded by the longest input) with numpy
    doing the xor/multiply across the whole batch per position, so the
    Python-level work is O(max_len) instead of O(total bytes).  uint64
    arithmetic wraps modulo 2**64, which is exactly the scalar
    ``& _MASK64`` — every element is bit-identical to :func:`fnv1a`.

    Returns a uint64 ndarray; callers doing per-element work should
    ``.tolist()`` it first (PERF001: numpy scalar indexing is slow).
    """
    n = len(datas)
    basis = np.uint64((_FNV_OFFSET ^ salt) & _MASK64)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    lengths = [len(d) for d in datas]
    max_len = max(lengths)
    h = np.full(n, basis, dtype=np.uint64)
    if max_len == 0:
        return h
    min_len = min(lengths)
    if min_len == max_len:
        # Uniform-length fast path (the common key shape): one buffer
        # build, no per-position masking.
        buf = (
            np.frombuffer(b"".join(datas), dtype=np.uint8)
            .reshape(n, max_len)
            .astype(np.uint64)
        )
        mask = None
        lens = None
    else:
        buf = np.zeros((n, max_len), dtype=np.uint64)
        for i, data in enumerate(datas):
            if data:
                buf[i, : len(data)] = np.frombuffer(data, dtype=np.uint8)
        lens = np.asarray(lengths, dtype=np.int64)
        mask = True
    prime = np.uint64(_FNV_PRIME)
    for pos in range(max_len):
        if mask is None or pos < min_len:
            h = (h ^ buf[:, pos]) * prime
        else:
            assert lens is not None
            h = np.where(lens > pos, (h ^ buf[:, pos]) * prime, h)
    return h


def fnv1a_batch_ints(datas: Sequence[bytes], salt: int) -> List[int]:
    """:func:`fnv1a_batch` as plain Python ints (one per input)."""
    return [int(v) for v in fnv1a_batch(datas, salt).tolist()]


def fnv1a_batch_multi(
    datas: Sequence[bytes], salts: Sequence[int]
) -> "np.ndarray":  # hot-path
    """Salted FNV-1a of every input under every salt in one 2D pass.

    Returns a ``(len(salts), len(datas))`` uint64 array where
    ``out[j][i] == fnv1a(datas[i], salts[j])`` exactly.  Because the
    salt only perturbs the hash basis, one fold loop over byte
    positions serves every salt simultaneously — the numpy xor/multiply
    broadcasts over the whole salts x inputs matrix, amortizing the
    per-call overhead that made one :func:`fnv1a_batch` call per salt
    (or per bloom filter) a poor trade at small batch sizes.
    """
    m, n = len(salts), len(datas)
    if m == 0 or n == 0:
        return np.empty((m, n), dtype=np.uint64)
    basis = np.uint64(_FNV_OFFSET) ^ np.asarray(salts, dtype=np.uint64)
    h = np.repeat(basis[:, None], n, axis=1)
    lengths = [len(d) for d in datas]
    max_len = max(lengths)
    if max_len == 0:
        return h
    min_len = min(lengths)
    if min_len == max_len:
        buf = (
            np.frombuffer(b"".join(datas), dtype=np.uint8)
            .reshape(n, max_len)
            .astype(np.uint64)
        )
        lens = None
    else:
        buf = np.zeros((n, max_len), dtype=np.uint64)
        for i, data in enumerate(datas):
            if data:
                buf[i, : len(data)] = np.frombuffer(data, dtype=np.uint8)
        lens = np.asarray(lengths, dtype=np.int64)
    prime = np.uint64(_FNV_PRIME)
    for pos in range(max_len):
        col = buf[:, pos]
        if lens is None or pos < min_len:
            h = (h ^ col) * prime
        else:
            h = np.where(lens > pos, (h ^ col) * prime, h)
    return h


def optimal_num_hashes(bits_per_key: int) -> int:
    """Optimal number of hash functions for a given bits-per-key budget."""
    if bits_per_key <= 0:
        return 0
    return max(1, round(bits_per_key * math.log(2)))


def theoretical_fpr(bits_per_key: int) -> float:
    """Analytic false-positive rate for the optimal hash count."""
    if bits_per_key <= 0:
        return 1.0
    k = optimal_num_hashes(bits_per_key)
    return (1.0 - math.exp(-k / bits_per_key)) ** k


class BloomFilter:
    """Immutable-after-build bloom filter keyed by string keys.

    Parameters
    ----------
    num_keys:
        Expected number of keys; sizes the bit vector.
    bits_per_key:
        Memory budget.  ``0`` disables the filter (every probe returns
        "maybe present").
    seed:
        Salt mixed into both base hashes, so different trees don't share
        collision patterns.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes", "_seed", "bits_per_key")

    def __init__(self, num_keys: int, bits_per_key: int = 10, seed: int = 0) -> None:
        self.bits_per_key = bits_per_key
        self._seed = seed
        self._num_hashes = optimal_num_hashes(bits_per_key)
        num_bits = max(64, num_keys * bits_per_key) if bits_per_key > 0 else 0
        self._num_bits = num_bits
        self._bits = bytearray((num_bits + 7) // 8) if num_bits else bytearray()

    @classmethod
    def build(
        cls, keys: Iterable[str], bits_per_key: int = 10, seed: int = 0
    ) -> "BloomFilter":
        """Build a filter sized for and populated with ``keys``.

        Population is vectorized: both base digests for every key come
        from one :func:`fnv1a_batch_multi` pass and the k probe
        positions from k numpy ops over the batch, so flush and
        compaction pay one fold loop per SSTable instead of two Python
        hash loops per key.  Bits are a set-union, so ordering is
        irrelevant — the filter is bit-identical to scalar :meth:`add`
        calls.
        """
        key_list = list(keys)
        bloom = cls(len(key_list), bits_per_key=bits_per_key, seed=seed)
        n = len(key_list)
        num_bits = bloom._num_bits
        if not num_bits or n == 0:
            return bloom
        if n <= _SCALAR_BATCH_MAX:
            for key in key_list:
                bloom.add(key)
            return bloom
        datas = [key.encode("utf-8") for key in key_list]
        digests = fnv1a_batch_multi(datas, [seed, seed ^ GOLDEN_GAMMA])
        h1 = digests[0]
        h2 = digests[1] | np.uint64(1)
        nb = np.uint64(num_bits)
        num_hashes = bloom._num_hashes
        pos = np.empty((num_hashes, n), dtype=np.uint64)
        for i in range(num_hashes):
            pos[i] = h1 % nb
            h1 = h1 + h2  # uint64 wrap == the scalar path's & _MASK64
        bits = bloom._bits
        for p in pos.reshape(-1).tolist():  # plain ints (PERF001)
            bits[p >> 3] |= 1 << (p & 7)
        return bloom

    def _positions(self, key: str) -> Iterable[int]:
        """Probe positions for ``key`` (kept for tests/diagnostics; the
        hot paths inline the identical double-hash loop)."""
        data = key.encode("utf-8")
        h1 = _fnv1a(data, self._seed)
        h2 = _fnv1a(data, self._seed ^ 0x9E3779B97F4A7C15) | 1
        for i in range(self._num_hashes):
            yield ((h1 + i * h2) & _MASK64) % self._num_bits

    def add(self, key: str) -> None:  # hot-path
        """Insert ``key`` into the filter."""
        num_bits = self._num_bits
        if not num_bits:
            return
        data = key.encode("utf-8")
        seed = self._seed
        h1 = _fnv1a(data, seed)
        h2 = _fnv1a(data, seed ^ 0x9E3779B97F4A7C15) | 1
        bits = self._bits
        pos = h1 % num_bits
        for _ in range(self._num_hashes):
            bits[pos >> 3] |= 1 << (pos & 7)
            h1 = (h1 + h2) & _MASK64
            pos = h1 % num_bits

    def may_contain(self, key: str) -> bool:  # hot-path
        """Return False only if ``key`` is definitely absent."""
        num_bits = self._num_bits
        if not num_bits:
            return True
        data = key.encode("utf-8")
        seed = self._seed
        h1 = _fnv1a(data, seed)
        h2 = _fnv1a(data, seed ^ 0x9E3779B97F4A7C15) | 1
        bits = self._bits
        pos = h1 % num_bits
        for _ in range(self._num_hashes):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h1 = (h1 + h2) & _MASK64
            pos = h1 % num_bits
        return True

    def may_contain_hashed(self, h1: int, h2: int) -> bool:  # hot-path
        """:meth:`may_contain` from precomputed base digests.

        ``h1`` and ``h2`` are the key's two salted FNV-1a digests
        (salts ``seed`` and ``seed ^ GOLDEN_GAMMA``, as plain ints).
        Batch callers compute digests for many (key, filter) pairs in
        one :func:`fnv1a_batch_multi` pass and leave only the bit
        tests here; the result is bit-identical to ``may_contain(key)``.
        """
        num_bits = self._num_bits
        if not num_bits:
            return True
        h2 |= 1
        bits = self._bits
        pos = h1 % num_bits
        for _ in range(self._num_hashes):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h1 = (h1 + h2) & _MASK64
            pos = h1 % num_bits
        return True

    def may_contain_batch(self, keys: Sequence[str]) -> List[bool]:  # hot-path
        """Per-key :meth:`may_contain` for a whole batch at once.

        Both base digests are computed for the batch in one vectorized
        pass each (:func:`fnv1a_batch`), and the k double-hash probe
        positions come from k numpy ops over the batch instead of k
        Python-loop steps per key.  The bit tests stay plain-Python
        over the ``bytearray`` — per-element numpy access would cost
        more than it saves (PERF001).  Element i equals
        ``may_contain(keys[i])`` exactly.
        """
        num_bits = self._num_bits
        n = len(keys)
        if not num_bits:
            return [True] * n
        if n == 0:
            return []
        if n <= _SCALAR_BATCH_MAX:
            # Below the numpy crossover the scalar probe loop wins.
            may_contain = self.may_contain
            return [may_contain(key) for key in keys]
        datas = [key.encode("utf-8") for key in keys]
        seed = self._seed
        digests = fnv1a_batch_multi(datas, [seed, seed ^ GOLDEN_GAMMA])
        h1 = digests[0]
        h2 = digests[1] | np.uint64(1)
        nb = np.uint64(num_bits)
        num_hashes = self._num_hashes
        pos = np.empty((num_hashes, n), dtype=np.uint64)
        for i in range(num_hashes):
            # A whole-row store per *hash* (k rounds), vectorised over the
            # batch — not a per-element access.
            pos[i] = h1 % nb  # lint: disable=PERF001
            h1 = h1 + h2  # uint64 wrap == the scalar path's & _MASK64
        per_key = pos.T.tolist()  # plain ints before the per-key loop
        bits = self._bits
        out = []
        for positions in per_key:
            hit = True
            for p in positions:
                if not bits[p >> 3] & (1 << (p & 7)):
                    hit = False
                    break
            out.append(hit)
        return out

    def __contains__(self, key: str) -> bool:
        return self.may_contain(key)

    @property
    def seed(self) -> int:
        """The salt mixed into both base hashes (digest precompute key)."""
        return self._seed

    @property
    def size_bytes(self) -> int:
        """Size of the bit vector in bytes."""
        return len(self._bits)

    @property
    def num_hashes(self) -> int:
        """Number of hash probes per key."""
        return self._num_hashes
