"""Bloom filter for SSTable point-lookup pruning.

Standard k-hash bloom filter over a Python ``bytearray`` bit vector.
Hashing uses double hashing (Kirsch–Mitzenmacher) on top of two salted
FNV-1a digests, which keeps construction fast and dependency-free while
giving the usual ``(1 - e^{-kn/m})^k`` false-positive behaviour.

The paper enables 10 bits per key, which it treats as "FPR close to
zero" in the reward model; :func:`theoretical_fpr` exposes the analytic
rate so tests can validate the measured one against it.
"""

from __future__ import annotations

import math
from typing import Iterable

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes, salt: int) -> int:  # hot-path
    """64-bit FNV-1a hash of ``data`` seeded with ``salt``."""
    h = (_FNV_OFFSET ^ salt) & _MASK64
    prime = _FNV_PRIME
    mask = _MASK64
    for byte in data:
        h = ((h ^ byte) * prime) & mask
    return h


def fnv1a(data: bytes, salt: int = 0) -> int:
    """Public 64-bit salted FNV-1a hash (shared by sketches and shards)."""
    return _fnv1a(data, salt)


def optimal_num_hashes(bits_per_key: int) -> int:
    """Optimal number of hash functions for a given bits-per-key budget."""
    if bits_per_key <= 0:
        return 0
    return max(1, round(bits_per_key * math.log(2)))


def theoretical_fpr(bits_per_key: int) -> float:
    """Analytic false-positive rate for the optimal hash count."""
    if bits_per_key <= 0:
        return 1.0
    k = optimal_num_hashes(bits_per_key)
    return (1.0 - math.exp(-k / bits_per_key)) ** k


class BloomFilter:
    """Immutable-after-build bloom filter keyed by string keys.

    Parameters
    ----------
    num_keys:
        Expected number of keys; sizes the bit vector.
    bits_per_key:
        Memory budget.  ``0`` disables the filter (every probe returns
        "maybe present").
    seed:
        Salt mixed into both base hashes, so different trees don't share
        collision patterns.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes", "_seed", "bits_per_key")

    def __init__(self, num_keys: int, bits_per_key: int = 10, seed: int = 0) -> None:
        self.bits_per_key = bits_per_key
        self._seed = seed
        self._num_hashes = optimal_num_hashes(bits_per_key)
        num_bits = max(64, num_keys * bits_per_key) if bits_per_key > 0 else 0
        self._num_bits = num_bits
        self._bits = bytearray((num_bits + 7) // 8) if num_bits else bytearray()

    @classmethod
    def build(
        cls, keys: Iterable[str], bits_per_key: int = 10, seed: int = 0
    ) -> "BloomFilter":
        """Build a filter sized for and populated with ``keys``."""
        key_list = list(keys)
        bloom = cls(len(key_list), bits_per_key=bits_per_key, seed=seed)
        for key in key_list:
            bloom.add(key)
        return bloom

    def _positions(self, key: str) -> Iterable[int]:
        """Probe positions for ``key`` (kept for tests/diagnostics; the
        hot paths inline the identical double-hash loop)."""
        data = key.encode("utf-8")
        h1 = _fnv1a(data, self._seed)
        h2 = _fnv1a(data, self._seed ^ 0x9E3779B97F4A7C15) | 1
        for i in range(self._num_hashes):
            yield ((h1 + i * h2) & _MASK64) % self._num_bits

    def add(self, key: str) -> None:  # hot-path
        """Insert ``key`` into the filter."""
        num_bits = self._num_bits
        if not num_bits:
            return
        data = key.encode("utf-8")
        seed = self._seed
        h1 = _fnv1a(data, seed)
        h2 = _fnv1a(data, seed ^ 0x9E3779B97F4A7C15) | 1
        bits = self._bits
        pos = h1 % num_bits
        for _ in range(self._num_hashes):
            bits[pos >> 3] |= 1 << (pos & 7)
            h1 = (h1 + h2) & _MASK64
            pos = h1 % num_bits

    def may_contain(self, key: str) -> bool:  # hot-path
        """Return False only if ``key`` is definitely absent."""
        num_bits = self._num_bits
        if not num_bits:
            return True
        data = key.encode("utf-8")
        seed = self._seed
        h1 = _fnv1a(data, seed)
        h2 = _fnv1a(data, seed ^ 0x9E3779B97F4A7C15) | 1
        bits = self._bits
        pos = h1 % num_bits
        for _ in range(self._num_hashes):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h1 = (h1 + h2) & _MASK64
            pos = h1 % num_bits
        return True

    def __contains__(self, key: str) -> bool:
        return self.may_contain(key)

    @property
    def size_bytes(self) -> int:
        """Size of the bit vector in bytes."""
        return len(self._bits)

    @property
    def num_hashes(self) -> int:
        """Number of hash probes per key."""
        return self._num_hashes
