"""Write-ahead log (simulated) with checksummed, torn-tail-aware records.

The WAL exists so the engine's write path matches the paper's Figure 2:
every mutation is appended to the log before touching the MemTable, and
the log segment is truncated when its MemTable is flushed to an SSTable.
The log is an in-memory record, but each entry carries a sequence number
and a CRC32 the way RocksDB frames log records, so recovery can detect a
*torn tail*: a crash mid-append leaves a record whose checksum does not
match, and replay must treat the first such record as the end of the
durable log.  The fault injector marks appends torn; fault-free
operation is byte-for-byte the old behaviour.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

LogRecord = Tuple[str, Optional[str]]  # (key, value-or-tombstone)


def _record_crc(seq: int, key: str, value: Optional[str]) -> int:
    payload = f"{seq}\x1f{key}\x1f{'' if value is None else value}"
    return zlib.crc32(payload.encode("utf-8"))


@dataclass
class _FramedRecord:
    """One framed log record: sequence number, payload, stored CRC."""

    seq: int
    key: str
    value: Optional[str]
    crc: int

    def intact(self) -> bool:
        return self.crc == _record_crc(self.seq, self.key, self.value)


class WriteAheadLog:
    """In-memory stand-in for the on-disk write-ahead log."""

    def __init__(self) -> None:
        self._records: List[_FramedRecord] = []
        self._next_seq = 0
        self.appends_total = 0
        self.truncations_total = 0
        self.torn_appends_total = 0
        self.replay_dropped_total = 0
        self.last_replay_dropped = 0
        self._fault_injector: Optional["FaultInjector"] = None

    def set_fault_injector(self, injector: Optional["FaultInjector"]) -> None:
        """Let ``injector`` decide which appends land torn (None disables)."""
        self._fault_injector = injector

    def append(self, key: str, value: Optional[str]) -> None:
        """Durably record a mutation (tombstone when ``value`` is None)."""
        seq = self._next_seq
        self._next_seq += 1
        crc = _record_crc(seq, key, value)
        if self._fault_injector is not None and self._fault_injector.on_wal_append():
            # Torn write: the record made it only partially to the device,
            # so its stored checksum no longer matches the payload.
            crc ^= 0xFFFFFFFF
            self.torn_appends_total += 1
        self._records.append(_FramedRecord(seq, key, value, crc))
        self.appends_total += 1

    def truncate(self) -> int:
        """Drop records covered by a completed flush; returns count dropped."""
        dropped = len(self._records)
        self._records.clear()
        self.truncations_total += 1
        return dropped

    def records(self) -> List[LogRecord]:
        """Pending records as appended (newest last), torn ones included."""
        return [(r.key, r.value) for r in self._records]

    def replay(self) -> List[LogRecord]:
        """Records in apply order for rebuilding a MemTable after a crash.

        Verifies each record's checksum and stops at the first mismatch
        (torn-tail semantics): everything from the torn record onward is
        discarded and counted in :attr:`last_replay_dropped`.
        """
        out: List[LogRecord] = []
        dropped = 0
        for i, record in enumerate(self._records):
            if not record.intact():
                dropped = len(self._records) - i
                break
            out.append((record.key, record.value))
        self.last_replay_dropped = dropped
        self.replay_dropped_total += dropped
        return out

    def __len__(self) -> int:
        return len(self._records)
