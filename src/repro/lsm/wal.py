"""Write-ahead log (simulated).

The WAL exists so the engine's write path matches the paper's Figure 2:
every mutation is appended to the log before touching the MemTable, and
the log segment is truncated when its MemTable is flushed to an SSTable.
Since the simulator has no crash-recovery story to exercise for the
cache experiments, the log is an in-memory record — but it tracks the
append count and logical byte volume so write-path costs can be modelled
and tests can assert the protocol ordering.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

LogRecord = Tuple[str, Optional[str]]  # (key, value-or-tombstone)


class WriteAheadLog:
    """In-memory stand-in for the on-disk write-ahead log."""

    def __init__(self) -> None:
        self._records: List[LogRecord] = []
        self.appends_total = 0
        self.truncations_total = 0

    def append(self, key: str, value: Optional[str]) -> None:
        """Durably record a mutation (tombstone when ``value`` is None)."""
        self._records.append((key, value))
        self.appends_total += 1

    def truncate(self) -> int:
        """Drop records covered by a completed flush; returns count dropped."""
        dropped = len(self._records)
        self._records.clear()
        self.truncations_total += 1
        return dropped

    def records(self) -> List[LogRecord]:
        """Pending records (newest last), e.g. for recovery replay."""
        return list(self._records)

    def replay(self) -> List[LogRecord]:
        """Records in apply order for rebuilding a MemTable after a crash."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)
