"""Leveled compaction ("1-leveling", size ratio 10 by default).

Two triggers, mirroring RocksDB's leveled policy at the granularity the
caching experiments care about:

* **L0 -> L1** when the Level-0 file count reaches the compaction
  trigger: every L0 run plus all overlapping L1 files merge into fresh
  L1 files.
* **Ln -> Ln+1** (n >= 1) when a level exceeds its target capacity
  (base capacity times ``size_ratio`` per level): one victim file plus
  the overlapping files below merge downward.

Compaction rewrites data into SSTables with *new ids*, which is what
invalidates block-cache entries keyed by ``(sst_id, block_no)`` — the
effect the paper's range cache is designed to survive.  Listeners are
notified with a :class:`CompactionEvent` per merge so the stats
collector can count compactions and invalidated blocks per window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lsm.block import Entry
from repro.lsm.options import LSMOptions
from repro.lsm.sstable import SSTable
from repro.lsm.storage import SimulatedDisk
from repro.lsm.version import LevelState
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, Recorder


@dataclass
class CompactionEvent:
    """What one compaction did, for listeners and stats."""

    level_from: int
    level_to: int
    input_sst_ids: List[int] = field(default_factory=list)
    output_sst_ids: List[int] = field(default_factory=list)
    entries_in: int = 0
    entries_out: int = 0
    blocks_invalidated: int = 0


CompactionListener = Callable[[CompactionEvent], None]


class Compactor:
    """Runs compactions against a :class:`LevelState` and disk."""

    def __init__(
        self, options: LSMOptions, disk: SimulatedDisk, levels: LevelState
    ) -> None:
        self._options = options
        self._disk = disk
        self._levels = levels
        self._listeners: List[CompactionListener] = []
        # Round-robin victim cursor per level, RocksDB-style.
        self._cursor: Dict[int, str] = {}
        self.compactions_total = 0
        self.entries_compacted_total = 0
        self.recorder: Recorder = NULL_RECORDER

    def add_listener(self, listener: CompactionListener) -> None:
        """Register a callback fired after every compaction."""
        self._listeners.append(listener)

    # -- trigger loop --------------------------------------------------------

    def maybe_compact(self) -> int:
        """Run compactions until no trigger fires; returns how many ran."""
        ran = 0
        while True:
            if self._levels.level0_file_count >= self._options.level0_file_num_compaction_trigger:
                self._compact_level0()
                ran += 1
                continue
            level = self._find_oversized_level()
            if level is None:
                break
            self._compact_level(level)
            ran += 1
        return ran

    def _find_oversized_level(self) -> Optional[int]:
        for level in range(1, self._options.max_levels - 1):
            if self._levels.level_entry_count(level) > self._options.level_capacity_entries(level):
                return level
        return None

    # -- the two compaction shapes --------------------------------------------

    def _compact_level0(self) -> None:
        l0_files = self._levels.level_files(0)  # newest first
        start = min(t.first_key for t in l0_files)
        end = max(t.last_key for t in l0_files)
        l1_files = [
            t
            for t in self._levels.level_files(1)
            if not (t.last_key < start or t.first_key > end)
        ]
        # Priority order: L0 newest-first, then L1 (older than any L0 data).
        self._run_compaction(0, 1, l0_files, l1_files)

    def _compact_level(self, level: int) -> None:
        victim = self._pick_victim(level)
        below = [
            t
            for t in self._levels.level_files(level + 1)
            if not (t.last_key < victim.first_key or t.first_key > victim.last_key)
        ]
        self._run_compaction(level, level + 1, [victim], below)

    def _pick_victim(self, level: int) -> SSTable:
        """Round-robin over the level's key space (RocksDB's default)."""
        files = self._levels.level_files(level)
        cursor = self._cursor.get(level, "")
        for table in files:
            if table.first_key > cursor:
                self._cursor[level] = table.first_key
                return table
        # Wrapped around the key space.
        self._cursor[level] = files[0].first_key
        return files[0]

    # -- merge mechanics --------------------------------------------------------

    def _run_compaction(
        self,
        level_from: int,
        level_to: int,
        newer_files: List[SSTable],
        older_files: List[SSTable],
    ) -> None:
        drop_tombstones = self._is_bottom_output(level_to)
        merged = self._merge_entries(newer_files, older_files, drop_tombstones)

        event = CompactionEvent(level_from=level_from, level_to=level_to)
        for table in newer_files:
            self._levels.remove(level_from, table.sst_id)
        for table in older_files:
            self._levels.remove(level_to, table.sst_id)
        for table in newer_files + older_files:
            event.input_sst_ids.append(table.sst_id)
            event.entries_in += table.num_entries
            event.blocks_invalidated += table.num_blocks
            self._disk.delete(table.sst_id)

        for chunk_start in range(0, len(merged), self._options.entries_per_sstable):
            chunk = merged[chunk_start : chunk_start + self._options.entries_per_sstable]
            if not chunk:
                continue
            table = SSTable.from_entries(
                self._disk.allocate_sst_id(),
                chunk,
                self._options.entries_per_block,
                bloom_bits_per_key=self._options.bloom_bits_per_key,
                bloom_seed=self._options.seed,
                block_size=self._options.block_size,
            )
            self._disk.install(table)
            self._levels.add_to_level(level_to, table)
            event.output_sst_ids.append(table.sst_id)
            event.entries_out += table.num_entries

        self.compactions_total += 1
        self.entries_compacted_total += event.entries_in
        recorder = self.recorder
        if recorder.enabled:
            recorder.inc(N.LSM_COMPACTIONS)
            recorder.inc(N.LSM_BLOCKS_INVALIDATED, event.blocks_invalidated)
            recorder.observe(N.H_COMPACTION_ENTRIES, event.entries_in)
            recorder.event(
                N.EV_COMPACTION,
                level_from=level_from,
                level_to=level_to,
                entries_in=event.entries_in,
                entries_out=event.entries_out,
                blocks_invalidated=event.blocks_invalidated,
            )
        for listener in self._listeners:
            listener(event)

    def _is_bottom_output(self, level_to: int) -> bool:
        """Tombstones may be dropped when nothing deeper could hold the key."""
        if level_to >= self._options.max_levels - 1:
            return True
        return all(
            not self._levels.level_files(lv)
            for lv in range(level_to + 1, self._options.max_levels)
        )

    @staticmethod
    def _merge_entries(
        newer_files: List[SSTable],
        older_files: List[SSTable],
        drop_tombstones: bool,
    ) -> List[Entry]:
        """Merge input runs, newest version of each key winning."""
        resolved: Dict[str, Optional[str]] = {}
        # Apply oldest first so newer writes overwrite.
        for table in reversed(older_files):
            for key, value in table.all_entries():
                resolved[key] = value
        for table in reversed(newer_files):  # newer_files is newest-first
            for key, value in table.all_entries():
                resolved[key] = value
        items: List[Tuple[str, Optional[str]]] = sorted(resolved.items())
        if drop_tombstones:
            items = [(k, v) for k, v in items if v is not None]
        return items
