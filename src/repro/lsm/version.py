"""Level structure (the LSM-tree's "version" / manifest).

Tracks which SSTables live at which level:

* **Level 0** holds whole flushed MemTables; files may overlap and are
  ordered newest-first.
* **Levels 1+** each hold one sorted run: files are non-overlapping and
  kept sorted by first key.

The counts exposed here (``num_levels`` ``L`` and sorted-run totals
``r``/``r0``) feed the paper's reward model directly.
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Tuple

from repro.errors import InvariantError, StorageError
from repro.lsm.sstable import SSTable


class LevelState:
    """Mutable view of the files at every level.

    Point lookups hit every level per query, so the per-level first-key
    arrays and key-range fences are cached and invalidated on the three
    mutation points (flush install, compaction install, detach) rather
    than rebuilt per lookup.
    """

    def __init__(self, max_levels: int) -> None:
        if max_levels < 2:
            raise StorageError("need at least levels 0 and 1")
        self.max_levels = max_levels
        self._levels: List[List[SSTable]] = [[] for _ in range(max_levels)]
        # Lazily rebuilt caches, one slot per level (None = stale).
        self._firsts: List[Optional[List[str]]] = [None] * max_levels
        self._fences: List[Optional[Tuple[str, str]]] = [None] * max_levels
        self._fence_fresh: List[bool] = [False] * max_levels

    def _invalidate(self, level: int) -> None:
        self._firsts[level] = None
        self._fences[level] = None
        self._fence_fresh[level] = False

    def _level_firsts(self, level: int) -> List[str]:  # hot-path
        """Cached sorted first keys of a sorted level (levels 1+)."""
        firsts = self._firsts[level]
        if firsts is None:
            firsts = [t.first_key for t in self._levels[level]]
            self._firsts[level] = firsts
        return firsts

    def level_fence(self, level: int) -> Optional[Tuple[str, str]]:  # hot-path
        """Cached ``(min first_key, max last_key)``; None when empty.

        A key outside the fence cannot be in any file at the level, so
        point lookups skip the per-file probing (and the bloom checks
        behind it) entirely.
        """
        if self._fence_fresh[level]:
            return self._fences[level]
        files = self._levels[level]
        if not files:
            fence = None
        elif level == 0:
            fence = (
                min(t.first_key for t in files),
                max(t.last_key for t in files),
            )
        else:
            fence = (files[0].first_key, files[-1].last_key)
        self._fences[level] = fence
        self._fence_fresh[level] = True
        return fence

    # -- structure queries ---------------------------------------------------

    def level_files(self, level: int) -> List[SSTable]:
        """Files at ``level`` (L0 newest-first, L1+ sorted by first key)."""
        return list(self._levels[level])

    def iter_level(self, level: int) -> List[SSTable]:  # hot-path
        """The internal file list at ``level`` — read-only, do not mutate.

        The read path iterates levels once per query; handing out the
        backing list (instead of the defensive copy ``level_files``
        makes) keeps that loop allocation-free.
        """
        return self._levels[level]

    def level_entry_count(self, level: int) -> int:
        """Total entries at ``level`` (tombstones included)."""
        return sum(t.num_entries for t in self._levels[level])

    @property
    def level0_file_count(self) -> int:
        """Number of (overlapping) runs in Level 0."""
        return len(self._levels[0])

    @property
    def num_levels(self) -> int:
        """``L``: index of the deepest non-empty level plus one (>= 1)."""
        deepest = 0
        for level in range(self.max_levels - 1, -1, -1):
            if self._levels[level]:
                deepest = level
                break
        return deepest + 1

    @property
    def num_sorted_runs(self) -> int:
        """``r``: L0 file count plus one run per non-empty deeper level."""
        runs = len(self._levels[0])
        runs += sum(1 for level in self._levels[1:] if level)
        return runs

    def total_entries(self) -> int:
        """Entries across all levels (tombstones included)."""
        return sum(self.level_entry_count(lv) for lv in range(self.max_levels))

    # -- file bookkeeping ------------------------------------------------------

    def add_level0(self, table: SSTable) -> None:
        """Install a freshly flushed file as the newest L0 run."""
        self._levels[0].insert(0, table)
        self._invalidate(0)

    def add_to_level(self, level: int, table: SSTable) -> None:
        """Install ``table`` into a sorted level, keeping first-key order.

        Raises if the file would overlap an existing file at that level.
        """
        if level == 0:
            raise StorageError("use add_level0 for level 0")
        files = self._levels[level]
        firsts = self._level_firsts(level)
        idx = bisect.bisect_left(firsts, table.first_key)
        left_ok = idx == 0 or files[idx - 1].last_key < table.first_key
        right_ok = idx == len(files) or table.last_key < files[idx].first_key
        if not (left_ok and right_ok):
            raise StorageError(
                f"file [{table.first_key}..{table.last_key}] overlaps level {level}"
            )
        files.insert(idx, table)
        self._invalidate(level)

    def remove(self, level: int, sst_id: int) -> SSTable:
        """Detach the file with ``sst_id`` from ``level`` and return it."""
        files = self._levels[level]
        for i, table in enumerate(files):
            if table.sst_id == sst_id:
                self._invalidate(level)
                return files.pop(i)
        raise StorageError(f"sst {sst_id} not found at level {level}")

    # -- read-path lookups -----------------------------------------------------

    def find_file(self, level: int, key: str) -> Optional[SSTable]:  # hot-path
        """In a sorted level, the single file whose range may hold ``key``."""
        if level == 0:
            raise StorageError("level 0 files overlap; iterate them instead")
        files = self._levels[level]
        if not files:
            return None
        firsts = self._level_firsts(level)
        idx = bisect.bisect_right(firsts, key) - 1
        if idx < 0:
            return None
        table = files[idx]
        return table if key <= table.last_key else None

    def overlapping_files(
        self, level: int, start: str, end: Optional[str]
    ) -> List[SSTable]:
        """Files at ``level`` intersecting ``[start, end)`` in key order.

        For L0 this preserves newest-first order instead.
        """
        return [t for t in self._levels[level] if t.overlaps(start, end)]

    def all_files(self) -> List[SSTable]:
        """All live files, shallow copy."""
        out: List[SSTable] = []
        for files in self._levels:
            out.extend(files)
        return out

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self, is_live: Optional[Callable[[int], bool]] = None) -> None:
        """Manifest health: sorted non-overlapping runs, unique live ids.

        * every file's ``first_key <= last_key``;
        * levels 1+ are sorted by first key with strictly disjoint key
          ranges (``prev.last_key < next.first_key``);
        * no SSTable id appears twice in the manifest;
        * with ``is_live`` (normally ``disk.has``), every manifest file
          must still exist on the simulated disk.
        """
        seen_ids: dict = {}
        for level, files in enumerate(self._levels):
            for table in files:
                if table.first_key > table.last_key:
                    raise InvariantError(
                        f"LevelState: sst {table.sst_id} at level {level} has "
                        f"inverted key range [{table.first_key!r}.."
                        f"{table.last_key!r}]"
                    )
                if table.sst_id in seen_ids:
                    raise InvariantError(
                        f"LevelState: sst id {table.sst_id} appears at both "
                        f"level {seen_ids[table.sst_id]} and level {level}"
                    )
                seen_ids[table.sst_id] = level
                if is_live is not None and not is_live(table.sst_id):
                    raise InvariantError(
                        f"LevelState: manifest lists sst {table.sst_id} at "
                        f"level {level} but it is gone from disk"
                    )
            if level == 0:
                continue  # L0 runs may overlap by design
            for prev, cur in zip(files, files[1:]):
                if prev.first_key > cur.first_key:
                    raise InvariantError(
                        f"LevelState: level {level} out of order: sst "
                        f"{prev.sst_id} first key {prev.first_key!r} > sst "
                        f"{cur.sst_id} first key {cur.first_key!r}"
                    )
                if prev.last_key >= cur.first_key:
                    raise InvariantError(
                        f"LevelState: level {level} overlap: sst "
                        f"{prev.sst_id} ends at {prev.last_key!r} but sst "
                        f"{cur.sst_id} starts at {cur.first_key!r}"
                    )
