"""Immutable sorted string tables (SSTables).

An SSTable packs a sorted entry run into fixed-fanout data blocks and
carries two auxiliary structures that the read path consults *without*
disk I/O, mirroring RocksDB's pinned index/filter blocks:

* an index of each block's first key, for binary-searching the block
  that may contain a lookup key, and
* a bloom filter over all keys, for skipping the file entirely on point
  lookups of absent keys.

Blocks are only materialised through :class:`~repro.lsm.storage.
SimulatedDisk.read_block` (or a block cache in front of it), so every
data-block access is metered.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.lsm.block import BlockHandle, DataBlock, Entry
from repro.lsm.bloom import BloomFilter


class SSTable:
    """One immutable sorted run file.

    Build via :meth:`from_entries`; entries must be sorted by key and
    free of duplicates (the compaction/flush machinery guarantees this).
    """

    def __init__(
        self,
        sst_id: int,
        blocks: Sequence[DataBlock],
        bloom: BloomFilter,
        block_size: int,
    ) -> None:
        if not blocks:
            raise StorageError("SSTable must contain at least one block")
        self.sst_id = sst_id
        self._blocks: List[DataBlock] = list(blocks)
        self._index: List[str] = [b.first_key for b in self._blocks]
        # Expected per-block checksums, recorded at build time exactly like
        # the footer checksums RocksDB writes; fault injection tampers with
        # the stored copy to model on-disk bit rot.
        self._checksums: List[int] = [b.checksum for b in self._blocks]
        self.bloom = bloom
        self.block_size = block_size
        self.num_entries = sum(len(b) for b in self._blocks)
        # Eager key-range bounds: the file is immutable and every point
        # lookup reads them, so plain attributes beat per-call properties.
        self.first_key: str = self._blocks[0].first_key
        self.last_key: str = self._blocks[-1].last_key
        #: Prebuilt handles by block number (read-only): the read paths
        #: fetch through these instead of constructing a BlockHandle per
        #: probe/scan step.
        self.block_handles: List[BlockHandle] = [b.handle for b in self._blocks]

    @classmethod
    def from_entries(
        cls,
        sst_id: int,
        entries: Sequence[Entry],
        entries_per_block: int,
        bloom_bits_per_key: int = 10,
        bloom_seed: int = 0,
        block_size: int = 4096,
    ) -> "SSTable":
        """Pack sorted ``entries`` into blocks and build the filter/index."""
        if not entries:
            raise StorageError("cannot build an empty SSTable")
        blocks = []
        for block_no, start in enumerate(range(0, len(entries), entries_per_block)):
            chunk = entries[start : start + entries_per_block]
            blocks.append(DataBlock(BlockHandle(sst_id, block_no), chunk))
        bloom = BloomFilter.build(
            (key for key, _ in entries),
            bits_per_key=bloom_bits_per_key,
            seed=bloom_seed ^ sst_id,
        )
        return cls(sst_id, blocks, bloom, block_size)

    # -- metadata (no I/O) ---------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of data blocks."""
        return len(self._blocks)

    def key_in_range(self, key: str) -> bool:  # hot-path
        """Whether ``key`` falls within [first_key, last_key]."""
        return self.first_key <= key <= self.last_key

    def overlaps(self, start: str, end: Optional[str]) -> bool:
        """Whether the file's key span intersects ``[start, end)``.

        ``end=None`` means an unbounded upper end.
        """
        if end is not None and self.first_key >= end:
            return False
        return self.last_key >= start

    def may_contain(self, key: str) -> bool:
        """Bloom-filter probe; False means definitely absent."""
        return key in self.bloom

    def may_contain_batch(self, keys: Sequence[str]) -> List[bool]:
        """Vectorized bloom probe for a whole key batch; element i
        equals ``may_contain(keys[i])`` exactly (see
        :meth:`~repro.lsm.bloom.BloomFilter.may_contain_batch`)."""
        return self.bloom.may_contain_batch(keys)

    def find_block_no(self, key: str) -> Optional[int]:  # hot-path
        """Index lookup: the block that may contain ``key``, or None.

        Returns None when ``key`` sorts before the file's first key or
        after its last key.
        """
        if key < self.first_key or key > self.last_key:
            return None
        idx = bisect.bisect_right(self._index, key) - 1
        return max(idx, 0)

    def first_block_no_for(self, key: str) -> Optional[int]:  # hot-path
        """Block where a scan starting at ``key`` should begin, or None if
        all entries sort before ``key``."""
        if key > self.last_key:
            return None
        idx = bisect.bisect_right(self._index, key) - 1
        return max(idx, 0)

    def handles(self) -> List[BlockHandle]:
        """Handles of all data blocks in order (fresh list)."""
        return list(self.block_handles)

    # -- direct block access (used only by the metered disk) -----------------

    def block_at(self, block_no: int) -> DataBlock:
        """The block at position ``block_no``; raises on bad index."""
        if not 0 <= block_no < len(self._blocks):
            raise StorageError(
                f"block {block_no} out of range for sst {self.sst_id} "
                f"({len(self._blocks)} blocks)"
            )
        return self._blocks[block_no]

    # -- checksums / corruption ----------------------------------------------

    def verify_block(self, block_no: int) -> bool:
        """Whether the block's payload still matches its stored checksum."""
        return self._checksums[block_no] == self.block_at(block_no).checksum

    def is_block_corrupt(self, block_no: int) -> bool:
        """Inverse of :meth:`verify_block` (fault-injection bookkeeping)."""
        return not self.verify_block(block_no)

    def corrupt_block(self, block_no: int) -> None:
        """Tamper with one block's stored checksum (models bit rot).

        The payload object itself is left untouched so clean copies held
        by caches stay clean — exactly the redundancy a repair draws on.
        """
        self.block_at(block_no)  # range check
        self._checksums[block_no] ^= 0xFFFFFFFF

    def repair_block(self, block_no: int) -> None:
        """Restore the stored checksum from the payload (replica restore)."""
        self._checksums[block_no] = self.block_at(block_no).checksum

    def all_entries(self) -> List[Entry]:
        """Every entry in the file in key order (compaction input path)."""
        out: List[Entry] = []
        for block in self._blocks:
            out.extend(block.entries())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SSTable(id={self.sst_id}, [{self.first_key}..{self.last_key}], "
            f"entries={self.num_entries}, blocks={self.num_blocks})"
        )
