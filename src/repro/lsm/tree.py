"""The LSM-tree facade: put / get / scan / delete over the substrate.

:class:`LSMTree` wires together the MemTable, WAL, level structure,
simulated disk and compactor, and exposes the two read paths the cache
layer intercepts:

* **point lookups** — MemTable, then L0 files newest-to-oldest, then one
  file per deeper level, with bloom filters pruning files and every
  surviving block access routed through a pluggable ``block_fetch``
  callable (the block cache's hook);
* **range scans** — a merged iterator over every overlapping sorted run,
  also fetching blocks through the hook.

SST-read counts come from the underlying
:class:`~repro.lsm.storage.SimulatedDisk`; the tree itself never reads
a block except through ``block_fetch``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import sanitize
from repro.errors import (
    ClosedError,
    CorruptionError,
    StorageError,
    TransientIOError,
    WriteStallError,
)
from repro.faults.retry import RetryPolicy
from repro.lsm.block import BlockHandle, DataBlock, Entry
from repro.lsm.bloom import GOLDEN_GAMMA, fnv1a_batch_multi
from repro.lsm.compaction import CompactionListener, Compactor
from repro.lsm.iterator import (
    BlockFetch,
    MergeItem,
    level_source,
    memtable_source,
    merge_scan,
    sstable_source,
)
from repro.lsm.memtable import MemTable
from repro.lsm.options import LSMOptions
from repro.lsm.sstable import SSTable
from repro.lsm.storage import SimulatedDisk
from repro.lsm.version import LevelState
from repro.lsm.wal import WriteAheadLog
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, Recorder

#: Sub-batches at or below this size take the scalar probe loop in
#: :meth:`LSMTree.multi_get_from_sstables` — numpy's fixed per-call cost
#: beats its per-key savings under ~8 keys (measured crossover).
_SCALAR_PROBE_MAX = 7


class LSMTree:
    """A RocksDB-flavoured LSM-tree key-value store (simulated disk).

    Parameters
    ----------
    options:
        Tunables; defaults reproduce the paper's configuration.
    block_fetch:
        Optional hook that serves data-block reads.  Defaults to reading
        straight from the metered disk; the engine replaces it with the
        block cache's fetch-through method.
    """

    def __init__(
        self,
        options: Optional[LSMOptions] = None,
        block_fetch: Optional[BlockFetch] = None,
    ) -> None:
        self.options = options or LSMOptions()
        self.disk = SimulatedDisk()
        self.levels = LevelState(self.options.max_levels)
        self.memtable = MemTable()
        self.wal = WriteAheadLog()
        self.compactor = Compactor(self.options, self.disk, self.levels)
        self._block_fetch: BlockFetch = block_fetch or self.disk.read_block
        self._closed = False
        self._sanitizer = sanitize.from_env(self.options.seed)
        # read-path counters
        self.gets_total = 0
        self.scans_total = 0
        self.bloom_negative_total = 0
        self.bloom_false_positive_total = 0
        self.flushes_total = 0
        self.write_slowdowns_total = 0
        # resilience counters (see fetch_block)
        self.read_retries_total = 0
        self.corruption_recoveries_total = 0
        self.retry_latency_us_total = 0.0
        #: Individual backoff stalls (us), for percentile reporting.
        self.retry_stalls_us: List[float] = []
        self.crash_recoveries_total = 0
        self.wal_records_lost_total = 0
        self.fault_injector = None
        self.recorder: Recorder = NULL_RECORDER
        # Seeded, bounded backoff schedule for transient read faults.
        self.retry_policy = RetryPolicy(
            max_attempts=self.options.max_read_retries,
            backoff_us=self.options.retry_backoff_us,
            jitter_frac=self.options.retry_jitter_frac,
            seed=self.options.seed,
        )

    # -- wiring -----------------------------------------------------------------

    def set_block_fetch(self, fetch: BlockFetch) -> None:
        """Route all data-block reads through ``fetch`` (e.g. a block cache)."""
        self._block_fetch = fetch

    def attach_fault_injector(self, injector) -> None:
        """Wire a :class:`~repro.faults.injector.FaultInjector` into the
        disk read path and the WAL append path (None detaches)."""
        self.fault_injector = injector
        self.disk.set_fault_injector(injector)
        self.wal.set_fault_injector(injector)
        if injector is not None and self.recorder.enabled:
            injector.recorder = self.recorder

    def attach_recorder(self, recorder: Recorder) -> None:
        """Propagate an observability recorder to the tree, its
        compactor, and any attached fault injector (attachment order
        between injector and recorder does not matter)."""
        self.recorder = recorder
        self.compactor.recorder = recorder
        if self.fault_injector is not None:
            self.fault_injector.recorder = recorder

    # -- resilient block reads ---------------------------------------------

    def fetch_block(self, handle: BlockHandle) -> DataBlock:
        """Fetch one data block through the configured ``block_fetch``,
        absorbing storage faults.

        * :class:`TransientIOError` — retried under the seeded, bounded
          :class:`~repro.faults.retry.RetryPolicy` (budget
          ``options.max_read_retries``, exponential backoff, optional
          seeded jitter); each stall is charged to
          :attr:`retry_latency_us_total` so the bench clock sees the
          stall without the host sleeping.
        * :class:`CorruptionError` — the block failed checksum
          verification; the disk repairs it from its redundant clean
          copy and the read is re-issued (never serving bad payloads).

        Exhausting either budget re-raises, so genuinely unrecoverable
        faults still surface as :class:`StorageError` subclasses.
        """
        transient_attempts = 0
        repair_attempts = 0
        while True:
            try:
                return self._block_fetch(handle)
            except TransientIOError:
                if not self.retry_policy.should_retry(transient_attempts):
                    raise
                stall = self.retry_policy.stall_us(transient_attempts)
                self.retry_latency_us_total += stall
                self.retry_stalls_us.append(stall)
                transient_attempts += 1
                self.read_retries_total += 1
                recorder = self.recorder
                if recorder.enabled:
                    recorder.inc(N.FAULT_RETRIES)
                    recorder.observe(N.H_RETRY_STALL_US, stall)
                    recorder.event(
                        N.EV_RETRY,
                        sst=handle.sst_id,
                        block=handle.block_no,
                        attempt=transient_attempts,
                        stall_us=stall,
                    )
            except CorruptionError:
                if repair_attempts >= self.options.max_corruption_repairs:
                    raise
                self.disk.repair_block(handle)
                repair_attempts += 1
                self.corruption_recoveries_total += 1
                recorder = self.recorder
                if recorder.enabled:
                    recorder.inc(N.FAULT_REPAIRS)
                    recorder.event(
                        N.EV_REPAIR, sst=handle.sst_id, block=handle.block_no
                    )

    def add_compaction_listener(self, listener: CompactionListener) -> None:
        """Observe every compaction (used by the stats collector)."""
        self.compactor.add_listener(listener)

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("operation on closed LSMTree")

    def close(self) -> None:
        """Flush pending writes and refuse further operations."""
        if not self._closed:
            if self.memtable:
                self.flush()
            self._closed = True

    def __enter__(self) -> "LSMTree":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- write path ----------------------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or overwrite ``key``."""
        self._write(key, value)

    def delete(self, key: str) -> None:
        """Delete ``key`` (writes a tombstone)."""
        self._write(key, None)

    def _write(self, key: str, value: Optional[str]) -> None:
        self._check_open()
        self._maybe_stall()
        self.wal.append(key, value)
        if value is None:
            self.memtable.delete(key)
        else:
            self.memtable.put(key, value)
        if len(self.memtable) >= self.options.memtable_entries:
            self.flush()

    def _maybe_stall(self) -> None:
        l0 = self.levels.level0_file_count
        if l0 >= self.options.level0_slowdown_writes_trigger:
            self.write_slowdowns_total += 1
            recorder = self.recorder
            if recorder.enabled:
                recorder.inc(N.LSM_WRITE_SLOWDOWNS)
                recorder.event(N.EV_WRITE_STALL, level0_files=l0)
        if l0 >= self.options.level0_stop_writes_trigger:
            if self.options.auto_compact:
                self.compactor.maybe_compact()
            else:
                raise WriteStallError(
                    f"level 0 has {l0} files (stop trigger "
                    f"{self.options.level0_stop_writes_trigger})"
                )

    def flush(self) -> Optional[SSTable]:
        """Flush the MemTable into a new Level-0 SSTable."""
        self._check_open()
        if not self.memtable:
            return None
        entries: List[Entry] = list(self.memtable.entries())
        table = SSTable.from_entries(
            self.disk.allocate_sst_id(),
            entries,
            self.options.entries_per_block,
            bloom_bits_per_key=self.options.bloom_bits_per_key,
            bloom_seed=self.options.seed,
            block_size=self.options.block_size,
        )
        self.disk.install(table)
        self.levels.add_level0(table)
        self.memtable = MemTable()
        self.wal.truncate()
        self.flushes_total += 1
        recorder = self.recorder
        if recorder.enabled:
            recorder.inc(N.LSM_FLUSHES)
            recorder.event(N.EV_FLUSH, sst=table.sst_id, entries=len(entries))
        if self.options.auto_compact:
            self.compactor.maybe_compact()
        if self._sanitizer is not None:
            self._sanitizer.after_mutation(self)
        return table

    # -- point lookups -----------------------------------------------------------------

    def get(self, key: str) -> Optional[str]:
        """Point lookup; returns the value or None if absent/deleted."""
        self._check_open()
        self.gets_total += 1
        found, value = self.memtable.get(key)
        if found:
            return value
        return self.get_from_sstables(key)

    def get_from_memtable(self, key: str) -> Tuple[bool, Optional[str]]:
        """Probe only the MemTable: ``(found, value)``, tombstones found."""
        self._check_open()
        return self.memtable.get(key)

    def get_from_sstables(self, key: str) -> Optional[str]:
        """Probe only the on-disk runs (engine splits the lookup path)."""
        value, _ = self.get_from_sstables_with_origin(key)
        return value

    def get_from_sstables_with_origin(
        self, key: str
    ) -> Tuple[Optional[str], Optional[BlockHandle]]:  # hot-path
        """Like :meth:`get_from_sstables`, also reporting which block
        served the key (for key-pointer caches a la AC-Key).

        Each level's cached key-range fence is consulted before any
        per-file probing: a key outside the fence cannot be at that
        level, so the bloom checks (and their counters) are skipped
        exactly when no file's range would have admitted the key anyway
        — seeded bloom-counter fingerprints are unchanged.
        """
        levels = self.levels
        get_from_table = self._get_from_table
        fence = levels.level_fence(0)
        if fence is not None and fence[0] <= key <= fence[1]:
            for table in levels.iter_level(0):  # newest first
                found, value, handle = get_from_table(table, key)
                if found:
                    return value, handle
        for level in range(1, self.options.max_levels):
            fence = levels.level_fence(level)
            if fence is None or key < fence[0] or key > fence[1]:
                continue
            table = levels.find_file(level, key)
            if table is None:
                continue
            found, value, handle = get_from_table(table, key)
            if found:
                return value, handle
        return None, None

    def multi_get_from_sstables(
        self, keys: Sequence[str]
    ) -> Tuple[List[Optional[str]], List[Optional[BlockHandle]]]:  # hot-path
        """Batched :meth:`get_from_sstables_with_origin` over ``keys``.

        Two amortizations over the scalar loop:

        * **table-major probing** — each table's bloom filter is
          consulted for its whole still-unresolved sub-batch in one
          vectorized pass (:meth:`SSTable.may_contain_batch`) instead
          of one Python hash loop per key;
        * **duplicate-block coalescing** — a per-batch block memo means
          N keys served by one data block cost a single
          :meth:`fetch_block` (one block-cache probe, at most one
          metered disk read) instead of N.

        The set of (key, table) bloom probes — and therefore every
        bloom/counter *total* — is identical to the scalar loop's;
        only the interleaving across keys differs.  A batch of one
        takes the scalar path's exact execution order.  Element i of
        each returned list equals the scalar call's ``(value, handle)``
        for ``keys[i]``.

        Every base bloom digest the whole walk could need — level-0
        tables for every fenced key, plus each key's one candidate file
        per deeper level — comes out of a *single*
        :func:`fnv1a_batch_multi` pass per batch.  Planning hashes for
        keys that resolve before reaching a table is deliberate
        over-approximation: hashing is pure math, so it never perturbs
        which bloom *tests* run (the walk still probes exactly the
        scalar set, guarded by the resolution state) or any counter.
        """
        n = len(keys)
        if n <= _SCALAR_PROBE_MAX:
            # Tiny sub-batches (common when caches absorb most of a
            # batch): numpy's per-call overhead loses to the scalar
            # probe loop, and duplicate blocks are too rare to matter.
            # Per-key probe sets — and counters — match scalar exactly.
            out_v: List[Optional[str]] = []
            out_h: List[Optional[BlockHandle]] = []
            for key in keys:
                value, handle = self.get_from_sstables_with_origin(key)
                out_v.append(value)
                out_h.append(handle)
            return out_v, out_h
        values: List[Optional[str]] = [None] * n
        handles: List[Optional[BlockHandle]] = [None] * n
        resolved = [False] * n
        block_memo: Dict[BlockHandle, DataBlock] = {}
        levels = self.levels
        find_file = levels.find_file
        fetch_block = self.fetch_block
        # ---- plan: which tables can each key touch, at any level ----
        salts: List[int] = []
        in_fence: List[int] = []
        l0_tables: List[SSTable] = []
        fence = levels.level_fence(0)
        if fence is not None:
            lo, hi = fence
            in_fence = [i for i in range(n) if lo <= keys[i] <= hi]
            if in_fence:
                l0_tables = list(levels.iter_level(0))  # newest first
                for table in l0_tables:
                    seed = table.bloom.seed
                    salts.append(seed)
                    salts.append(seed ^ GOLDEN_GAMMA)
        plan: List[List[Tuple[int, SSTable]]] = []
        for level in range(1, self.options.max_levels):
            fence = levels.level_fence(level)
            if fence is None:
                continue
            lo, hi = fence
            pairs: List[Tuple[int, SSTable]] = []
            for i in range(n):
                key = keys[i]
                if key < lo or key > hi:
                    continue
                table = find_file(level, key)
                if table is not None:
                    pairs.append((i, table))
                    seed = table.bloom.seed
                    salts.append(seed)
                    salts.append(seed ^ GOLDEN_GAMMA)
            if pairs:
                plan.append(pairs)
        if not salts:
            return values, handles
        # ---- one vectorized digest pass for the whole walk ----
        uniq = list(dict.fromkeys(salts))
        datas = [key.encode("utf-8") for key in keys]
        matrix = fnv1a_batch_multi(datas, uniq).tolist()
        rows: Dict[int, List[int]] = dict(zip(uniq, matrix))
        # ---- level 0: table-major, newest first ----
        for table in l0_tables:
            if not in_fence:
                break
            first_key = table.first_key
            last_key = table.last_key
            bloom = table.bloom
            seed = bloom.seed
            row1 = rows[seed]
            row2 = rows[seed ^ GOLDEN_GAMMA]
            may_contain_hashed = bloom.may_contain_hashed
            block_handles = table.block_handles
            find_block_no = table.find_block_no
            for i in in_fence:
                key = keys[i]
                if key < first_key or key > last_key:
                    continue
                if not may_contain_hashed(row1[i], row2[i]):
                    self.bloom_negative_total += 1
                    continue
                block_no = find_block_no(key)
                if block_no is None:
                    continue
                handle = block_handles[block_no]
                block = block_memo.get(handle)
                if block is None:
                    block = fetch_block(handle)
                    block_memo[handle] = block
                found, value = block.get(key)
                if found:
                    values[i] = value
                    handles[i] = handle
                    resolved[i] = True
                else:
                    self.bloom_false_positive_total += 1
            in_fence = [i for i in in_fence if not resolved[i]]
        # ---- deeper levels: one planned file per key ----
        for pairs in plan:
            for i, table in pairs:
                if resolved[i]:
                    continue
                bloom = table.bloom
                seed = bloom.seed
                if not bloom.may_contain_hashed(
                    rows[seed][i], rows[seed ^ GOLDEN_GAMMA][i]
                ):
                    self.bloom_negative_total += 1
                    continue
                key = keys[i]
                block_no = table.find_block_no(key)
                if block_no is None:
                    continue
                handle = table.block_handles[block_no]
                block = block_memo.get(handle)
                if block is None:
                    block = fetch_block(handle)
                    block_memo[handle] = block
                found, value = block.get(key)
                if found:
                    values[i] = value
                    handles[i] = handle
                    resolved[i] = True
                else:
                    self.bloom_false_positive_total += 1
        return values, handles

    def _get_from_table(
        self, table: SSTable, key: str
    ) -> Tuple[bool, Optional[str], Optional[BlockHandle]]:  # hot-path
        if key < table.first_key or key > table.last_key:
            return False, None, None
        if not table.may_contain(key):
            self.bloom_negative_total += 1
            return False, None, None
        block_no = table.find_block_no(key)
        if block_no is None:
            return False, None, None
        handle = table.block_handles[block_no]
        block = self.fetch_block(handle)
        found, value = block.get(key)
        if not found:
            self.bloom_false_positive_total += 1
        return found, value, handle if found else None

    # -- range scans -----------------------------------------------------------------

    def scan(
        self, start: str, length: int, fetch: Optional[BlockFetch] = None
    ) -> List[Tuple[str, str]]:  # hot-path
        """Return up to ``length`` live entries with key >= ``start``.

        Runs the merge/dedup/limit loop inline rather than through
        ``islice(merge_scan(...))``: identical consumption order (the
        loop stops right after the ``length``-th live entry, exactly
        where islice stopped pulling), so block-read counts are
        unchanged, but each merged entry no longer trampolines through
        two extra generator frames.

        ``fetch`` overrides the block-read callable; the batched scan
        executor passes a per-batch memoizing wrapper so scans in one
        batch that touch the same data block fetch it once (one block
        cache probe, at most one metered read).  ``None`` — every
        scalar caller — reads through :meth:`fetch_block` unchanged.
        """
        sources = self._scan_sources(start, fetch)
        if length <= 0:
            return []
        out: List[Tuple[str, str]] = []
        append = out.append
        current_key: Optional[str] = None
        # Inlined heapq.merge: same cell layout ([item, order, iterator]),
        # same order-index tie-break (priorities are unique per source, so
        # cell comparison never reaches the iterator), and each winning
        # source advances only after its item is consumed — so an early
        # stop leaves exactly the same generators suspended at exactly
        # the same block as the heapq.merge generator did.
        heap = []
        heap_append = heap.append
        for order, it in enumerate(sources):
            try:
                heap_append([next(it), order, it])
            except StopIteration:
                pass
        heapq.heapify(heap)
        heapreplace = heapq.heapreplace
        heappop = heapq.heappop
        while len(heap) > 1:
            cell = heap[0]
            key, _priority, value = cell[0]
            if key != current_key:
                current_key = key
                if value is not None:
                    append((key, value))
                    if len(out) == length:
                        return out
            try:
                cell[0] = next(cell[2])
            except StopIteration:
                heappop(heap)
            else:
                heapreplace(heap, cell)
        if heap:
            cell = heap[0]
            key, _priority, value = cell[0]
            if key != current_key:
                current_key = key
                if value is not None:
                    append((key, value))
                    if len(out) == length:
                        return out
            for key, _priority, value in cell[2]:
                if key == current_key:
                    continue  # older version of a key we already resolved
                current_key = key
                if value is not None:
                    append((key, value))
                    if len(out) == length:
                        break
        return out

    def scan_iter(self, start: str) -> Iterable[Tuple[str, str]]:
        """Lazily merge all sorted runs from ``start`` (tombstones resolved).

        Initialising the merge performs the seek: one block read per
        overlapping run, as in the paper's I/O model.
        """
        return merge_scan(self._scan_sources(start))

    def _scan_sources(
        self, start: str, fetch: Optional[BlockFetch] = None
    ) -> List[Iterator[MergeItem]]:  # hot-path
        """One merge source per sorted run overlapping ``start``.

        Building the sources is free of I/O — every generator is
        unstarted — so counting the scan here keeps ``scans_total``
        identical for both :meth:`scan` and :meth:`scan_iter` callers.
        """
        self._check_open()
        self.scans_total += 1
        if fetch is None:
            fetch = self.fetch_block
        sources: List[Iterator[MergeItem]] = [
            memtable_source(self.memtable, start, priority=0)
        ]
        priority = 1
        for table in self.levels.level_files(0):  # newest first
            sources.append(sstable_source(table, start, priority, fetch))
            priority += 1
        for level in range(1, self.options.max_levels):
            files = self.levels.level_files(level)
            if files:
                sources.append(level_source(files, start, priority, fetch))
                priority += 1
        return sources

    # -- crash recovery -----------------------------------------------------------------

    def simulate_crash_and_recover(self) -> int:
        """Drop volatile state and rebuild the MemTable from the WAL.

        Models a process crash: the MemTable (volatile) is lost, the
        WAL and SSTables (durable) survive.  Replaying the log restores
        every intact record; a torn tail (records whose checksum fails)
        is discarded and counted in :attr:`wal_records_lost_total`.
        Returns the number of records replayed.
        """
        self._check_open()
        records = self.wal.replay()
        self.memtable = MemTable()
        for key, value in records:
            if value is None:
                self.memtable.delete(key)
            else:
                self.memtable.put(key, value)
        self.crash_recoveries_total += 1
        self.wal_records_lost_total += self.wal.last_replay_dropped
        return len(records)

    # -- bulk loading -----------------------------------------------------------------

    def bulk_load(self, items: Iterable[Tuple[str, str]], seed: int = 7) -> None:
        """Pre-populate the tree with sorted unique ``(key, value)`` pairs.

        Spreads entries across levels proportionally to level capacity
        (deepest level holding the bulk), producing a realistic resident
        LSM shape without replaying millions of puts.  Only valid on an
        empty tree.
        """
        self._check_open()
        if self.levels.total_entries() or self.memtable:
            raise StorageError("bulk_load requires an empty tree")
        entries: List[Entry] = [(k, v) for k, v in items]
        if not entries:
            return
        for i in range(1, len(entries)):
            if entries[i - 1][0] >= entries[i][0]:
                raise StorageError("bulk_load input must be sorted and unique")

        levels_used = self._bulk_levels_for(len(entries))
        weights = np.array(
            [self.options.level_capacity_entries(lv) for lv in levels_used],
            dtype=float,
        )
        probs = weights / weights.sum()
        rng = np.random.default_rng(seed)
        assignment = rng.choice(len(levels_used), size=len(entries), p=probs)
        for slot, level in enumerate(levels_used):
            chunk = [e for e, a in zip(entries, assignment) if a == slot]
            for start in range(0, len(chunk), self.options.entries_per_sstable):
                part = chunk[start : start + self.options.entries_per_sstable]
                if not part:
                    continue
                table = SSTable.from_entries(
                    self.disk.allocate_sst_id(),
                    part,
                    self.options.entries_per_block,
                    bloom_bits_per_key=self.options.bloom_bits_per_key,
                    bloom_seed=self.options.seed,
                    block_size=self.options.block_size,
                )
                self.disk.install(table)
                self.levels.add_to_level(level, table)

    def _bulk_levels_for(self, n: int) -> List[int]:
        """Deepest-first contiguous level span whose capacity covers ``n``."""
        for bottom in range(1, self.options.max_levels):
            capacity = sum(
                self.options.level_capacity_entries(lv) for lv in range(1, bottom + 1)
            )
            if capacity >= n:
                return list(range(1, bottom + 1))
        return list(range(1, self.options.max_levels))

    # -- reward-model inputs -----------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """``L`` in the paper's reward model."""
        return self.levels.num_levels

    @property
    def num_sorted_runs(self) -> int:
        """``r`` in the paper's reward model."""
        return self.levels.num_sorted_runs

    @property
    def level0_run_count(self) -> int:
        """Current number of Level-0 runs."""
        return self.levels.level0_file_count

    @property
    def sst_reads_total(self) -> int:
        """Data-block reads that reached the simulated disk."""
        return self.disk.block_reads_total

    # -- sanitizer protocol -----------------------------------------------------

    def check_invariants(self) -> None:
        """Manifest health cross-checked against the simulated disk.

        Delegates to :meth:`LevelState.check_invariants` with the disk's
        liveness predicate, so a manifest entry whose SSTable was
        dropped (or a compaction that forgot to unlink an input) trips
        here.
        """
        self.levels.check_invariants(is_live=self.disk.has)
