"""In-memory write buffer (MemTable).

A sorted dictionary over string keys.  We keep a plain dict for O(1)
point lookups plus a lazily re-sorted key list for range scans — at
simulator scale this outperforms a hand-rolled balanced tree while
behaving identically at the API level.

Deletes are recorded as tombstones (``value=None``), which must shadow
older values in SSTables during reads and be dropped only by a
bottom-level compaction.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lsm.block import Entry


class MemTable:
    """Mutable sorted buffer of the newest writes."""

    def __init__(self) -> None:
        self._data: Dict[str, Optional[str]] = {}
        self._sorted_keys: List[str] = []
        self._dirty = False

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def put(self, key: str, value: str) -> None:
        """Insert or overwrite ``key``."""
        if key not in self._data:
            self._dirty = True
        self._data[key] = value

    def delete(self, key: str) -> None:
        """Record a tombstone for ``key``."""
        if key not in self._data:
            self._dirty = True
        self._data[key] = None

    def get(self, key: str) -> Tuple[bool, Optional[str]]:
        """Look up ``key``; ``(found, value)`` with tombstones found=True."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def _ensure_sorted(self) -> None:
        if self._dirty:
            self._sorted_keys = sorted(self._data)
            self._dirty = False

    def entries_from(self, key: str) -> Iterator[Entry]:  # hot-path
        """Yield entries with key >= ``key`` in key order (tombstones included).

        Iterates by index — slicing the sorted-key list would copy the
        whole tail for every scan seek.
        """
        self._ensure_sorted()
        keys = self._sorted_keys
        data = self._data
        for idx in range(bisect.bisect_left(keys, key), len(keys)):
            k = keys[idx]
            yield k, data[k]

    def entries(self) -> Iterator[Entry]:
        """Yield all entries in key order (tombstones included)."""
        self._ensure_sorted()
        for k in self._sorted_keys:
            yield k, self._data[k]

    def approximate_bytes(self, key_size: int, value_size: int) -> int:
        """Logical footprint used for flush decisions in byte-based setups."""
        return len(self._data) * (key_size + value_size)
