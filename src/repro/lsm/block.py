"""Data blocks: the unit of disk I/O and of block-cache residency.

A :class:`DataBlock` is an immutable, sorted run of key-value entries.
Blocks are identified globally by :class:`BlockHandle` —
``(sst_id, block_no)`` — which is exactly how RocksDB's block cache
keys entries (file number + offset).  Compaction writes new SSTables
with fresh ids, so handles of compacted-away files silently stop
matching: the cached blocks become dead weight until evicted, the
invalidation behaviour the paper's motivation hinges on.
"""

from __future__ import annotations

import bisect
import zlib
from typing import List, NamedTuple, Optional, Sequence, Tuple

Entry = Tuple[str, Optional[str]]  # value None == tombstone


class BlockHandle(NamedTuple):
    """Global identity of a data block: which SSTable, which slot.

    A ``NamedTuple`` rather than a frozen dataclass: handles are hashed
    on every block-cache probe and dict operation, and the C tuple hash
    produces the same values as the generated dataclass hash (both hash
    the ``(sst_id, block_no)`` field tuple) at a fraction of the cost.
    Equality and ordering are likewise field-tuple lexicographic.
    """

    sst_id: int
    block_no: int


class DataBlock:
    """An immutable sorted sequence of entries within one SSTable.

    Entries are ``(key, value)`` pairs where ``value is None`` encodes a
    tombstone.  Keys within a block are strictly increasing.
    """

    __slots__ = ("handle", "_keys", "_values", "_checksum", "_pairs", "first_key", "last_key")

    def __init__(self, handle: BlockHandle, entries: Sequence[Entry]) -> None:
        self.handle = handle
        if entries:
            # One C-level transpose instead of two per-entry list comps;
            # blocks are built in bulk during every flush and compaction.
            keys_t, values_t = zip(*entries)
            keys: List[str] = list(keys_t)
            self._keys = keys
            self._values: List[Optional[str]] = list(values_t)
            # Eager bounds: the point-lookup path reads these on every
            # probe, so they are plain attributes rather than properties.
            self.first_key: str = keys[0]
            self.last_key: str = keys[-1]
        else:
            self._keys = []
            self._values = []
        self._checksum: Optional[int] = None
        self._pairs: Optional[List[Entry]] = None

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def checksum(self) -> int:
        """CRC32 over the block payload (computed once, then cached).

        The SSTable records this at build time; the disk re-checks it on
        every metered read so corrupted blocks are *detected* and raise
        instead of being silently served.
        """
        if self._checksum is None:
            # The \x00/\x01 tag keeps tombstones distinct from empty values.
            payload = "\x1f".join(
                key + "\x1e" + ("\x00" if value is None else "\x01" + value)
                for key, value in zip(self._keys, self._values)
            )
            self._checksum = zlib.crc32(payload.encode("utf-8"))
        return self._checksum

    def get(self, key: str) -> Tuple[bool, Optional[str]]:  # hot-path
        """Look up ``key``; returns ``(found, value)``.

        ``found`` is True for tombstones too — the caller must treat a
        ``(True, None)`` result as "deleted, stop searching older runs".
        """
        keys = self._keys
        idx = bisect.bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            return True, self._values[idx]
        return False, None

    def _pairs_list(self) -> List[Entry]:  # hot-path
        """``(key, value)`` tuples, zipped once and cached (immutable block)."""
        pairs = self._pairs
        if pairs is None:
            pairs = self._pairs = list(zip(self._keys, self._values))
        return pairs

    def entries_from(self, key: str) -> List[Entry]:  # hot-path
        """All entries with key >= ``key``, in order (fresh list)."""
        idx = bisect.bisect_left(self._keys, key)
        return self._pairs_list()[idx:]

    def entries(self) -> List[Entry]:
        """All entries in key order (fresh list)."""
        return list(self._pairs_list())

    def entries_view(self) -> List[Entry]:  # hot-path
        """All entries in key order, **without** copying.

        Returns the block's cached pairs list itself; callers must only
        iterate it.  Scan sources walk every block past the first in
        full, so skipping the defensive copy saves one list allocation
        per block read on the merge path.
        """
        return self._pairs_list()

    def keys(self) -> List[str]:
        """All keys in order."""
        return list(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DataBlock({self.handle.sst_id}:{self.handle.block_no}, "
            f"[{self.first_key}..{self.last_key}], n={len(self)})"
        )
