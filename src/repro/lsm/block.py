"""Data blocks: the unit of disk I/O and of block-cache residency.

A :class:`DataBlock` is an immutable, sorted run of key-value entries.
Blocks are identified globally by :class:`BlockHandle` —
``(sst_id, block_no)`` — which is exactly how RocksDB's block cache
keys entries (file number + offset).  Compaction writes new SSTables
with fresh ids, so handles of compacted-away files silently stop
matching: the cached blocks become dead weight until evicted, the
invalidation behaviour the paper's motivation hinges on.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

Entry = Tuple[str, Optional[str]]  # value None == tombstone


@dataclass(frozen=True, order=True)
class BlockHandle:
    """Global identity of a data block: which SSTable, which slot."""

    sst_id: int
    block_no: int


class DataBlock:
    """An immutable sorted sequence of entries within one SSTable.

    Entries are ``(key, value)`` pairs where ``value is None`` encodes a
    tombstone.  Keys within a block are strictly increasing.
    """

    __slots__ = ("handle", "_keys", "_values", "_checksum")

    def __init__(self, handle: BlockHandle, entries: Sequence[Entry]) -> None:
        self.handle = handle
        self._keys: List[str] = [key for key, _ in entries]
        self._values: List[Optional[str]] = [value for _, value in entries]
        self._checksum: Optional[int] = None

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def checksum(self) -> int:
        """CRC32 over the block payload (computed once, then cached).

        The SSTable records this at build time; the disk re-checks it on
        every metered read so corrupted blocks are *detected* and raise
        instead of being silently served.
        """
        if self._checksum is None:
            # The \x00/\x01 tag keeps tombstones distinct from empty values.
            payload = "\x1f".join(
                key + "\x1e" + ("\x00" if value is None else "\x01" + value)
                for key, value in zip(self._keys, self._values)
            )
            self._checksum = zlib.crc32(payload.encode("utf-8"))
        return self._checksum

    @property
    def first_key(self) -> str:
        """Smallest key in the block."""
        return self._keys[0]

    @property
    def last_key(self) -> str:
        """Largest key in the block."""
        return self._keys[-1]

    def get(self, key: str) -> Tuple[bool, Optional[str]]:
        """Look up ``key``; returns ``(found, value)``.

        ``found`` is True for tombstones too — the caller must treat a
        ``(True, None)`` result as "deleted, stop searching older runs".
        """
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return True, self._values[idx]
        return False, None

    def entries_from(self, key: str) -> List[Entry]:
        """All entries with key >= ``key``, in order."""
        idx = bisect.bisect_left(self._keys, key)
        return list(zip(self._keys[idx:], self._values[idx:]))

    def entries(self) -> List[Entry]:
        """All entries in key order."""
        return list(zip(self._keys, self._values))

    def keys(self) -> List[str]:
        """All keys in order."""
        return list(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DataBlock({self.handle.sst_id}:{self.handle.block_no}, "
            f"[{self.first_key}..{self.last_key}], n={len(self)})"
        )
