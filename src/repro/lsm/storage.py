"""Simulated disk: SSTable residency and block-read accounting.

The paper measures "SST reads" — the number of data-block reads that
reach the storage device.  :class:`SimulatedDisk` is the single funnel
for those reads: every block fetched by the read path that is not served
by a cache goes through :meth:`read_block` and increments the counters.

The disk also carries an optional per-read listener so the benchmark
harness can charge simulated latency to a clock without the LSM code
knowing about timing at all.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import StorageError
from repro.lsm.block import BlockHandle, DataBlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lsm.sstable import SSTable

ReadListener = Callable[[BlockHandle], None]


class SimulatedDisk:
    """Stores SSTables and meters every data-block read."""

    def __init__(self) -> None:
        self._tables: Dict[int, "SSTable"] = {}
        self._next_sst_id = 1
        self.block_reads_total = 0
        self.bytes_read_total = 0
        self.sstables_written_total = 0
        self.sstables_deleted_total = 0
        self._read_listeners: List[ReadListener] = []

    # -- SSTable lifecycle -------------------------------------------------

    def allocate_sst_id(self) -> int:
        """Reserve a globally unique SSTable id (monotonically increasing)."""
        sst_id = self._next_sst_id
        self._next_sst_id += 1
        return sst_id

    def install(self, table: "SSTable") -> None:
        """Make a freshly built SSTable readable."""
        if table.sst_id in self._tables:
            raise StorageError(f"sst id {table.sst_id} already installed")
        self._tables[table.sst_id] = table
        self.sstables_written_total += 1

    def delete(self, sst_id: int) -> None:
        """Remove an SSTable (after compaction obsoletes it)."""
        if sst_id not in self._tables:
            raise StorageError(f"sst id {sst_id} not on disk")
        del self._tables[sst_id]
        self.sstables_deleted_total += 1

    def has(self, sst_id: int) -> bool:
        """Whether ``sst_id`` is currently live on disk."""
        return sst_id in self._tables

    def live_sst_ids(self) -> List[int]:
        """Ids of all live SSTables."""
        return list(self._tables)

    # -- metered reads -----------------------------------------------------

    def read_block(self, handle: BlockHandle) -> DataBlock:
        """Fetch a data block from "disk", counting the I/O."""
        table = self._tables.get(handle.sst_id)
        if table is None:
            raise StorageError(f"read of block {handle} from deleted/unknown sst")
        block = table.block_at(handle.block_no)
        self.block_reads_total += 1
        self.bytes_read_total += table.block_size
        for listener in self._read_listeners:
            listener(handle)
        return block

    def add_read_listener(self, listener: ReadListener) -> None:
        """Register a callback invoked on every metered block read."""
        self._read_listeners.append(listener)

    def remove_read_listener(self, listener: ReadListener) -> None:
        """Unregister a previously added read listener."""
        self._read_listeners.remove(listener)

    # -- introspection -----------------------------------------------------

    def table(self, sst_id: int) -> Optional["SSTable"]:
        """The live SSTable with ``sst_id``, or None."""
        return self._tables.get(sst_id)

    @property
    def num_tables(self) -> int:
        """Number of live SSTables."""
        return len(self._tables)

    def total_entries(self) -> int:
        """Total entries across live SSTables (tombstones included)."""
        return sum(t.num_entries for t in self._tables.values())
