"""Simulated disk: SSTable residency and block-read accounting.

The paper measures "SST reads" — the number of data-block reads that
reach the storage device.  :class:`SimulatedDisk` is the single funnel
for those reads: every block fetched by the read path that is not served
by a cache goes through :meth:`read_block` and increments the counters.

The disk also carries an optional per-read listener so the benchmark
harness can charge simulated latency to a clock without the LSM code
knowing about timing at all.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import CorruptionError, StorageError, TransientIOError
from repro.lsm.block import BlockHandle, DataBlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.lsm.sstable import SSTable

ReadListener = Callable[[BlockHandle], None]


class SimulatedDisk:
    """Stores SSTables and meters every data-block read."""

    def __init__(self, verify_checksums: bool = True) -> None:
        self._tables: Dict[int, "SSTable"] = {}
        self._next_sst_id = 1
        self.verify_checksums = verify_checksums
        self.block_reads_total = 0
        self.bytes_read_total = 0
        self.sstables_written_total = 0
        self.sstables_deleted_total = 0
        # fault-path accounting (successful reads stay in block_reads_total
        # so cache/hit-rate math is undisturbed by retried attempts)
        self.failed_reads_total = 0
        self.transient_errors_total = 0
        self.corruptions_detected_total = 0
        self.corruption_repairs_total = 0
        self._read_listeners: List[ReadListener] = []
        self._fault_injector: Optional["FaultInjector"] = None

    def set_fault_injector(self, injector: Optional["FaultInjector"]) -> None:
        """Route every read attempt through ``injector`` (None disables)."""
        self._fault_injector = injector

    # -- SSTable lifecycle -------------------------------------------------

    def allocate_sst_id(self) -> int:
        """Reserve a globally unique SSTable id (monotonically increasing)."""
        sst_id = self._next_sst_id
        self._next_sst_id += 1
        return sst_id

    def install(self, table: "SSTable") -> None:
        """Make a freshly built SSTable readable."""
        if table.sst_id in self._tables:
            raise StorageError(
                f"double install of sst id {table.sst_id} "
                f"({len(self._tables)} tables live)"
            )
        self._tables[table.sst_id] = table
        self.sstables_written_total += 1

    def delete(self, sst_id: int) -> None:
        """Remove an SSTable (after compaction obsoletes it)."""
        if sst_id not in self._tables:
            raise StorageError(
                f"delete of sst id {sst_id} which is not on disk "
                f"({len(self._tables)} tables live)"
            )
        del self._tables[sst_id]
        self.sstables_deleted_total += 1

    def has(self, sst_id: int) -> bool:
        """Whether ``sst_id`` is currently live on disk."""
        return sst_id in self._tables

    def live_sst_ids(self) -> List[int]:
        """Ids of all live SSTables."""
        return list(self._tables)

    # -- metered reads -----------------------------------------------------

    def read_block(self, handle: BlockHandle) -> DataBlock:
        """Fetch a data block from "disk", counting the I/O.

        Raises :class:`TransientIOError` when the fault injector decides
        this attempt fails, and :class:`CorruptionError` when the block's
        payload no longer matches its stored checksum.  Failed attempts
        are counted separately from successful reads.
        """
        table = self._tables.get(handle.sst_id)
        if table is None:
            raise StorageError(
                f"read of block {handle} from deleted/unknown sst "
                f"({len(self._tables)} tables live)"
            )
        if self._fault_injector is not None:
            try:
                self._fault_injector.before_block_read(handle, table)
            except TransientIOError:
                self.failed_reads_total += 1
                self.transient_errors_total += 1
                raise
        block = table.block_at(handle.block_no)
        if self.verify_checksums and not table.verify_block(handle.block_no):
            self.failed_reads_total += 1
            self.corruptions_detected_total += 1
            raise CorruptionError(f"checksum mismatch reading block {handle}")
        self.block_reads_total += 1
        self.bytes_read_total += table.block_size
        for listener in self._read_listeners:
            listener(handle)
        return block

    def repair_block(self, handle: BlockHandle) -> None:
        """Restore a corrupted block from its redundant clean copy.

        Models fetching the block from a replica (or re-reading the
        next-newer copy of the data): the stored checksum is recomputed
        from the intact payload, after which reads succeed again.
        """
        table = self._tables.get(handle.sst_id)
        if table is None:
            raise StorageError(
                f"cannot repair block {handle}: sst not live "
                f"({len(self._tables)} tables live)"
            )
        table.repair_block(handle.block_no)
        self.corruption_repairs_total += 1

    def add_read_listener(self, listener: ReadListener) -> None:
        """Register a callback invoked on every metered block read."""
        self._read_listeners.append(listener)

    def remove_read_listener(self, listener: ReadListener) -> None:
        """Unregister a previously added read listener."""
        self._read_listeners.remove(listener)

    # -- introspection -----------------------------------------------------

    def table(self, sst_id: int) -> Optional["SSTable"]:
        """The live SSTable with ``sst_id``, or None."""
        return self._tables.get(sst_id)

    @property
    def num_tables(self) -> int:
        """Number of live SSTables."""
        return len(self._tables)

    def total_entries(self) -> int:
        """Total entries across live SSTables (tombstones included)."""
        return sum(t.num_entries for t in self._tables.values())
