"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An option object was constructed with invalid values."""


class StorageError(ReproError):
    """The simulated storage layer was asked to do something impossible."""


class CacheError(ReproError):
    """A cache component was misused (bad budget, unknown key class...)."""


class WriteStallError(ReproError):
    """A write was rejected because Level-0 reached its stop trigger.

    Mirrors RocksDB's write-stop behaviour.  The engine normally waits
    for compaction instead of surfacing this, so user code only sees it
    when compactions are disabled.
    """


class ClosedError(ReproError):
    """An operation was attempted on a closed store or engine."""
