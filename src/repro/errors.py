"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An option object was constructed with invalid values."""


class StorageError(ReproError):
    """The simulated storage layer was asked to do something impossible."""


class TransientIOError(StorageError):
    """A block read failed transiently (injected device hiccup).

    Retryable: the resilient read path backs off and re-issues the read;
    callers only see this once the retry budget is exhausted.
    """


class CorruptionError(StorageError):
    """A block's stored checksum no longer matches its payload.

    Permanent until the block is repaired from a redundant clean copy
    (:meth:`~repro.lsm.storage.SimulatedDisk.repair_block`); the read
    path never serves data that failed verification.
    """


class TornWriteError(StorageError):
    """A WAL record failed its checksum during recovery replay.

    Replay treats the first torn record as the end of the durable log
    (torn-tail semantics); this error surfaces only when a caller asks
    for strict replay.
    """


class CacheError(ReproError):
    """A cache component was misused (bad budget, unknown key class...)."""


class InvariantError(ReproError):
    """A runtime invariant check found corrupted internal state.

    Raised by the ``check_invariants()`` protocol (the sanitizer layer,
    see :mod:`repro.sanitize`): byte-accounting drift, structure
    cross-inconsistency, broken skip-list ordering, or a version/
    manifest that disagrees with the disk.  This is never a user error —
    it means a bug mutated internal state, and the message names the
    structure and the exact discrepancy."""


class WriteStallError(ReproError):
    """A write was rejected because Level-0 reached its stop trigger.

    Mirrors RocksDB's write-stop behaviour.  The engine normally waits
    for compaction instead of surfacing this, so user code only sees it
    when compactions are disabled.
    """


class ClosedError(ReproError):
    """An operation was attempted on a closed store or engine."""


class ObsError(ReproError):
    """The observability layer was misused or fed malformed artifacts.

    Raised for unregistered metric names, kind mismatches (e.g. calling
    ``observe`` on a counter), and audit/export files that fail schema
    validation or cannot support replay.
    """
