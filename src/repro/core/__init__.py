"""AdCache core: the adaptive cache manager on top of the LSM substrate.

* :mod:`repro.core.config` — :class:`AdCacheConfig` tunables.
* :mod:`repro.core.stats` — per-window workload/IO statistics.
* :mod:`repro.core.engine` — :class:`KVEngine`, the cached key-value
  engine implementing the paper's query-handling and cache-fill paths
  over any composition of block / KV / range caches.
* :mod:`repro.core.controller` — the window-based policy decision
  controller (actor-critic in, cache boundary + admission params out).
* :mod:`repro.core.adcache` — :class:`AdCacheEngine`, the fully wired
  system (Figure 4), plus ablation variants.
"""

from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.core.engine import KVEngine

__all__ = ["AdCacheEngine", "AdCacheConfig", "KVEngine"]
