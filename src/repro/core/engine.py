"""The cached key-value engine: query handling and cache fill paths.

:class:`KVEngine` implements the paper's Figure 5 on top of any cache
composition:

* **Query handling path** — a request probes the range cache first,
  then the MemTable, then the SSTables (whose block reads flow through
  the block cache), and only then the simulated disk.
* **Cache fill path** — blocks read from disk populate the block cache;
  query *results* are admitted into the range/KV caches subject to the
  configured admission control.

Every baseline in the paper's evaluation is a composition of the same
engine: block cache only, KV cache only, range cache with some eviction
policy, or the full AdCache stack with a controller attached.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro import sanitize
from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.base import CacheStats
from repro.cache.block_cache import BlockCache
from repro.cache.kp_cache import KPCache
from repro.cache.kv_cache import KVCache
from repro.cache.range_cache import RangeCache
from repro.core.stats import StatsCollector, WindowStats
from repro.lsm.block import BlockHandle, DataBlock
from repro.lsm.iterator import BlockFetch
from repro.lsm.tree import LSMTree
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, Recorder

if TYPE_CHECKING:  # bench.simclock imports this module; runtime import is local
    from repro.bench.simclock import SimClock
    from repro.serve.tier2 import Tier2Client

Entry = Tuple[str, str]
#: Controller callback: receives the sealed window's statistics.
WindowCallback = Callable[[WindowStats], None]


class KVEngine:
    """LSM-tree + cache composition + optional window controller.

    Parameters
    ----------
    tree:
        The LSM storage engine (its ``block_fetch`` is rewired when a
        block cache is supplied).
    block_cache / range_cache / kv_cache:
        Any subset; omitted components are skipped in both paths.
    freq_admission:
        Frequency gate for point-result admission (AdCache only).
    scan_admission:
        Partial-admission policy for scan results (AdCache only).
    window_size:
        Operations per control window; at each boundary the collector
        seals a :class:`WindowStats` and hands it to ``on_window``.
    on_window:
        The policy decision controller's entry point (may be None for
        static baselines — stats are still collected).
    """

    def __init__(
        self,
        tree: LSMTree,
        block_cache: Optional[BlockCache] = None,
        range_cache: Optional[RangeCache] = None,
        kv_cache: Optional[KVCache] = None,
        kp_cache: Optional[KPCache] = None,
        freq_admission: Optional[FrequencyAdmission] = None,
        scan_admission: Optional[PartialScanAdmission] = None,
        block_scan_admission: Optional[PartialScanAdmission] = None,
        window_size: int = 1000,
        on_window: Optional[WindowCallback] = None,
    ) -> None:
        self.tree = tree
        self.block_cache = block_cache
        self.range_cache = range_cache
        self.kv_cache = kv_cache
        self.kp_cache = kp_cache
        self.freq_admission = freq_admission
        self.scan_admission = scan_admission
        self.block_scan_admission = block_scan_admission
        self.window_size = window_size
        self.on_window = on_window
        self.collector = StatsCollector()
        self.windows: List[WindowStats] = []

        if block_cache is not None:
            tree.set_block_fetch(block_cache.fetch_through)
        tree.add_compaction_listener(
            lambda event: self.collector.note_compaction(event.blocks_invalidated)
        )
        self._write_lock = threading.Lock()
        self._window_lock = threading.Lock()
        self._io_snapshot = tree.disk.block_reads_total
        self._block_stats_snapshot = (
            block_cache.stats if block_cache is not None else None
        )
        self.crashes_total = 0
        #: Shared-L2 hook; set by the serving layer's Tier2Coordinator
        #: when the fleet runs tiered (None keeps the flat read path).
        self.tier2_client: Optional["Tier2Client"] = None
        # Observability: a NullRecorder by default, so every instrumented
        # site costs one attribute read when observability is off.
        self.recorder: Recorder = NULL_RECORDER
        self._obs_clock: Optional["SimClock"] = None
        self._obs_block_stats: Optional[CacheStats] = None
        self._obs_range_stats: Optional[CacheStats] = None
        self._obs_admit_snapshot: Tuple[int, int] = (0, 0)
        self._obs_l2_snapshot: Tuple[int, int, int, int] = (0, 0, 0, 0)

    # -- observability ---------------------------------------------------------------

    def attach_recorder(self, recorder: Recorder) -> None:
        """Wire an observability recorder through the whole composition.

        Propagates to the LSM tree (and through it the compactor and any
        attached fault injector) and snapshots the cache/admission
        counters so window metrics report per-window deltas.  Timestamps
        come from a dedicated sim clock over this engine's metered
        counters — never wall time — advanced at window boundaries.
        """
        self.recorder = recorder
        self.tree.attach_recorder(recorder)
        if self.block_cache is not None:
            self.block_cache.recorder = recorder
        if self.range_cache is not None:
            self.range_cache.recorder = recorder
        if self.freq_admission is not None:
            self.freq_admission.recorder = recorder
        if self.scan_admission is not None:
            self.scan_admission.recorder = recorder
        if recorder.enabled:
            # Imported here: bench.simclock imports this module, so a
            # module-level import would be a cycle.
            from repro.bench.simclock import SimClock

            self._obs_clock = SimClock(self)
            self._obs_block_stats = (
                self.block_cache.stats if self.block_cache is not None else None
            )
            self._obs_range_stats = (
                self.range_cache.stats.snapshot()
                if self.range_cache is not None
                else None
            )
            fa = self.freq_admission
            self._obs_admit_snapshot = (
                (fa.admitted_total, fa.rejected_total) if fa is not None else (0, 0)
            )

    def _obs_window_metrics(self, window: WindowStats) -> None:
        """Fold one sealed window into the recorder (pre-``on_window``).

        Runs before the controller callback so it sees the window as the
        collector sealed it, ahead of any chaos-harness poisoning; the
        ``is_healthy`` guard keeps non-finite fields out of the integer
        counters regardless.
        """
        recorder = self.recorder
        clock = self._obs_clock
        if clock is not None:
            clock.charge()
            recorder.advance_to(clock.charged_us_total)
        if window.is_healthy():
            recorder.inc(N.WINDOW_OPS, window.ops)
            recorder.inc(N.WINDOW_POINTS, window.points)
            recorder.inc(N.WINDOW_SCANS, window.scans)
            recorder.inc(N.WINDOW_WRITES, window.writes)
            recorder.inc(N.WINDOW_DELETES, window.deletes)
            recorder.inc(N.WINDOW_IO_MISS, window.io_miss)
            recorder.inc(N.RANGE_HITS, window.range_point_hits + window.range_scan_hits)
            recorder.inc(N.BLOCK_HITS, window.block_hits)
            recorder.inc(N.BLOCK_MISSES, window.block_misses)
            recorder.observe(N.H_WINDOW_IO_MISS, window.io_miss)
        if self.block_cache is not None and self._obs_block_stats is not None:
            current = self.block_cache.stats
            delta = current.delta(self._obs_block_stats)
            self._obs_block_stats = current
            recorder.inc(N.BLOCK_EVICTIONS, delta.evictions)
            recorder.inc(N.BLOCK_REJECTIONS, delta.rejections)
        if self.range_cache is not None and self._obs_range_stats is not None:
            current = self.range_cache.stats.snapshot()
            delta = current.delta(self._obs_range_stats)
            self._obs_range_stats = current
            recorder.inc(N.RANGE_INSERTIONS, delta.insertions)
            recorder.inc(N.RANGE_EVICTIONS, delta.evictions)
            recorder.inc(N.RANGE_REJECTIONS, delta.rejections)
        fa = self.freq_admission
        if fa is not None:
            admitted, rejected = fa.admitted_total, fa.rejected_total
            prev_admitted, prev_rejected = self._obs_admit_snapshot
            recorder.inc(N.ADMIT_POINT_ACCEPTED, admitted - prev_admitted)
            recorder.inc(N.ADMIT_POINT_REJECTED, rejected - prev_rejected)
            self._obs_admit_snapshot = (admitted, rejected)
        client = self.tier2_client
        if client is not None:
            probes, hits = client.probes, client.hits
            demotions, admits = client.demotions, client.admits
            p0, h0, d0, a0 = self._obs_l2_snapshot
            recorder.inc(N.L2_HITS, hits - h0)
            recorder.inc(N.L2_MISSES, (probes - hits) - (p0 - h0))
            recorder.inc(N.L2_DEMOTIONS, demotions - d0)
            recorder.inc(N.L2_ADMITS, admits - a0)
            recorder.inc(N.L2_REJECTS, (demotions - admits) - (d0 - a0))
            self._obs_l2_snapshot = (probes, hits, demotions, admits)
        for gauge, value in (
            (N.G_RANGE_OCCUPANCY, window.range_occupancy),
            (N.G_BLOCK_OCCUPANCY, window.block_occupancy),
            (N.G_RANGE_RATIO, window.range_ratio),
            (N.G_NUM_LEVELS, float(window.num_levels)),
            (N.G_LEVEL0_RUNS, float(window.level0_runs)),
        ):
            if math.isfinite(value):
                recorder.set_gauge(gauge, value)

    # -- reads ---------------------------------------------------------------

    def get(self, key: str) -> Optional[str]:  # hot-path
        """Point lookup via the query handling path."""
        collector = self.collector
        window_size = self.window_size
        range_cache = self.range_cache
        if range_cache is not None:
            value = range_cache.get_point(key)
            if value is not None:
                collector.note_point(True)
                if collector.current.ops >= window_size:
                    self._maybe_end_window()
                return value
        kv_cache = self.kv_cache
        if kv_cache is not None:
            value = kv_cache.get(key)
            if value is not None:
                collector.note_point(False, True)
                if collector.current.ops >= window_size:
                    self._maybe_end_window()
                return value
        tree = self.tree
        kp_cache = self.kp_cache
        found, value = tree.get_from_memtable(key)
        if not found:
            if kp_cache is not None:
                # tree.fetch_block keeps KP-cache reads on the same
                # transient-retry / corruption-repair path as the tree's.
                hit, value = kp_cache.lookup(key, tree.fetch_block)
                if hit:
                    collector.note_point(False)
                    if collector.current.ops >= window_size:
                        self._maybe_end_window()
                    return value
            value, origin = tree.get_from_sstables_with_origin(key)
            if value is not None:
                self._fill_point(key, value)
                if kp_cache is not None and origin is not None:
                    kp_cache.remember(key, origin)
        collector.note_point(False)
        if collector.current.ops >= window_size:
            self._maybe_end_window()
        return value

    def scan(self, start: str, length: int) -> List[Entry]:  # hot-path
        """Range scan via the query handling path."""
        collector = self.collector
        range_cache = self.range_cache
        if range_cache is not None:
            cached = range_cache.get_range(start, length)
            if cached is not None:
                collector.note_scan(length, True)
                if collector.current.ops >= self.window_size:
                    self._maybe_end_window()
                return cached
        result = self._scan_tree(start, length)
        if range_cache is not None and result:
            self._fill_scan(start, result)
        collector.note_scan(length, False)
        if collector.current.ops >= self.window_size:
            self._maybe_end_window()
        return result

    def multi_get(self, keys: Sequence[str]) -> List[Optional[str]]:  # hot-path
        """Batched point lookups through the query handling path.

        Three stages, each preserving the scalar path's per-key
        effects:

        1. cache probes in arrival order (range -> KV -> MemTable ->
           KP), recording hits exactly as :meth:`get` does — except
           that a key repeated within the batch is probed once: all
           requests see the same pre-batch snapshot, so later
           occurrences share the first's result and count as hits
           (no I/O happened for them);
        2. one table-major batched SSTable pass over the remaining
           misses — vectorized bloom probes and per-batch
           duplicate-block coalescing
           (:meth:`~repro.lsm.tree.LSMTree.multi_get_from_sstables`);
        3. fills for the found keys: KV puts in arrival order, one
           arrival-order vectorized sketch pass for admission
           (:meth:`~repro.cache.admission.FrequencyAdmission.observe_and_decide_batch`),
           and a sort-and-splice run into the range cache
           (:meth:`~repro.cache.range_cache.RangeCache.insert_points`).

        A batch of one executes :meth:`get`'s exact effect sequence —
        digests, fingerprints, and counters are bit-identical.  Larger
        batches keep identical admission decisions and counter totals
        for the probe work but spend fewer block fetches; that saving
        is the point.
        """
        collector = self.collector
        window_size = self.window_size
        range_cache = self.range_cache
        kv_cache = self.kv_cache
        kp_cache = self.kp_cache
        tree = self.tree
        n = len(keys)
        out: List[Optional[str]] = [None] * n
        pending_idx: List[int] = []
        pending_keys: List[str] = []
        first_of: Dict[str, int] = {}
        dups: List[Tuple[int, int]] = []
        get_point = range_cache.get_point if range_cache is not None else None
        kv_get = kv_cache.get if kv_cache is not None else None
        get_from_memtable = tree.get_from_memtable
        kp_lookup = kp_cache.lookup if kp_cache is not None else None
        tree_fetch = tree.fetch_block
        note_point = collector.note_point
        current = collector.current
        for i in range(n):
            key = keys[i]
            if n > 1:
                first = first_of.get(key)
                if first is not None:
                    # Duplicate within the batch: same snapshot, same
                    # answer; copied from the first occurrence after the
                    # tree pass resolves it.
                    dups.append((i, first))
                    note_point(True)
                    if current.ops >= window_size:
                        self._maybe_end_window()
                        current = collector.current
                    continue
                first_of[key] = i
            if get_point is not None:
                value = get_point(key)
                if value is not None:
                    out[i] = value
                    note_point(True)
                    if current.ops >= window_size:
                        self._maybe_end_window()
                        current = collector.current
                    continue
            if kv_get is not None:
                value = kv_get(key)
                if value is not None:
                    out[i] = value
                    note_point(False, True)
                    if current.ops >= window_size:
                        self._maybe_end_window()
                        current = collector.current
                    continue
            found, value = get_from_memtable(key)
            if found:
                out[i] = value
                note_point(False)
                if current.ops >= window_size:
                    self._maybe_end_window()
                    current = collector.current
                continue
            if kp_lookup is not None:
                hit, value = kp_lookup(key, tree_fetch)
                if hit:
                    out[i] = value
                    note_point(False)
                    if current.ops >= window_size:
                        self._maybe_end_window()
                        current = collector.current
                    continue
            pending_idx.append(i)
            pending_keys.append(key)
        if pending_idx:
            values, origins = tree.multi_get_from_sstables(pending_keys)
            found_keys: List[str] = []
            found_values: List[str] = []
            found_origins: List[Optional[BlockHandle]] = []
            for j, value in enumerate(values):
                if value is not None:
                    found_keys.append(pending_keys[j])
                    found_values.append(value)
                    found_origins.append(origins[j])
            if found_keys:
                if kv_cache is not None:
                    for key, value in zip(found_keys, found_values):
                        kv_cache.put(key, value)
                if range_cache is not None:
                    if self.freq_admission is not None:
                        decisions = self.freq_admission.observe_and_decide_batch(
                            found_keys
                        )
                    else:
                        decisions = [True] * len(found_keys)
                    admitted = [
                        (key, value)
                        for key, value, admit in zip(
                            found_keys, found_values, decisions
                        )
                        if admit
                    ]
                    rejected = len(found_keys) - len(admitted)
                    if rejected:
                        range_cache.stats.rejections += rejected
                    if admitted:
                        range_cache.insert_points(admitted)
                if kp_cache is not None:
                    for key, origin in zip(found_keys, found_origins):
                        if origin is not None:
                            kp_cache.remember(key, origin)
            for j, i in enumerate(pending_idx):
                out[i] = values[j]
                collector.note_point(False)
                if collector.current.ops >= window_size:
                    self._maybe_end_window()
        for i, first in dups:
            out[i] = out[first]
        return out

    def multi_put(self, pairs: Sequence[Entry]) -> None:  # hot-path
        """Batched inserts; the per-pair effect sequence is exactly
        :meth:`put`'s (WAL and MemTable work cannot coalesce without
        changing flush timing), with the attribute lookups hoisted out
        of the loop."""
        tree = self.tree
        range_cache = self.range_cache
        kv_cache = self.kv_cache
        kp_cache = self.kp_cache
        collector = self.collector
        window_size = self.window_size
        lock = self._write_lock
        for key, value in pairs:
            with lock:
                tree.put(key, value)
            if range_cache is not None:
                range_cache.on_write(key, value)
            if kv_cache is not None:
                kv_cache.on_write(key, value)
            if kp_cache is not None:
                kp_cache.on_write(key)
            collector.note_write()
            if collector.current.ops >= window_size:
                self._maybe_end_window()

    def multi_scan(
        self, requests: Sequence[Tuple[str, int]]
    ) -> List[List[Entry]]:  # hot-path
        """Batched scan dispatch with within-batch block coalescing.

        All requests in one batch observe the same pre-batch snapshot
        (callers hand the engine read-only runs — see
        :func:`~repro.bench.harness.apply_batch` and the router's
        same-kind runs).  Requests execute in arrival order — cache
        admissions and evictions evolve exactly as the scalar loop's
        would — with two batch-only savings:

        * **coalesced block fetches** — tree scans in the batch share a
          block memo, so scans touching the same data block fetch it
          once (one block-cache probe, at most one metered read);
        * **covering-window reuse** — each tree scan's materialized
          result is the first ``length`` live entries >= ``start`` and
          lists *every* live entry of its window, so a later request
          whose window sits inside the most recent one is sliced out
          directly: no merge, no fetches, no re-admission.

        A batch of one runs the scalar :meth:`scan` verbatim — digests,
        fingerprints, and counters are bit-identical.  Larger batches
        return identical entries per request; window-served requests
        count as range hits (no I/O happened).
        """
        n = len(requests)
        if n == 1:
            start, length = requests[0]
            return [self.scan(start, length)]
        collector = self.collector
        window_size = self.window_size
        range_cache = self.range_cache
        out: List[List[Entry]] = [[] for _ in range(n)]
        memo_start: Optional[str] = None
        memo_keys: List[str] = []
        memo_entries: List[Entry] = []
        block_memo: Dict[BlockHandle, DataBlock] = {}
        tree_fetch = self.tree.fetch_block

        def fetch(handle: BlockHandle) -> DataBlock:
            block = block_memo.get(handle)
            if block is None:
                block = tree_fetch(handle)
                block_memo[handle] = block
            return block

        for i in range(n):
            start, length = requests[i]
            if range_cache is not None:
                cached = range_cache.get_range(start, length)
                if cached is not None:
                    out[i] = cached
                    collector.note_scan(length, True)
                    if collector.current.ops >= window_size:
                        self._maybe_end_window()
                    continue
            if memo_start is not None and start >= memo_start:
                lo = bisect.bisect_left(memo_keys, start)
                if len(memo_keys) - lo >= length:
                    out[i] = memo_entries[lo : lo + length]
                    collector.note_scan(length, True)
                    if collector.current.ops >= window_size:
                        self._maybe_end_window()
                    continue
            result = self._scan_tree(start, length, fetch=fetch)
            if range_cache is not None and result:
                self._fill_scan(start, result)
            collector.note_scan(length, False)
            if collector.current.ops >= window_size:
                self._maybe_end_window()
            out[i] = result
            memo_start = start
            memo_entries = result
            memo_keys = [key for key, _ in result]
        return out

    def _scan_tree(
        self,
        start: str,
        length: int,
        fetch: Optional[BlockFetch] = None,
    ) -> List[Entry]:
        """Scan the LSM-tree, optionally capping block-cache fills.

        The paper notes its partial-admission policy "can also be
        applied to the block cache, where the number of blocks instead
        of the number of keys is controlled": a scan may fill at most
        ``admit_count(blocks_touched)`` blocks.  (Single-writer hook;
        under multi-client load leave ``block_scan_admission`` unset.)

        ``fetch`` is the batched dispatcher's per-batch memoizing block
        reader (:meth:`multi_scan`); ``None`` reads every block through
        the tree's own fetch path.
        """
        tree_scan = self.tree.scan
        if self.block_scan_admission is None or self.block_cache is None:
            return tree_scan(start, length, fetch)
        expected_blocks = max(1, length // self.tree.options.entries_per_block)
        budget = self.block_scan_admission.admit_count(expected_blocks)
        remaining = [budget]

        def hook(_handle) -> bool:
            if remaining[0] <= 0:
                return False
            remaining[0] -= 1
            return True

        previous = self.block_cache.admission_hook
        self.block_cache.admission_hook = hook
        try:
            return tree_scan(start, length, fetch)
        finally:
            self.block_cache.admission_hook = previous

    # -- cache fill path ---------------------------------------------------------------

    def _fill_point(self, key: str, value: str) -> None:
        if self.kv_cache is not None:
            self.kv_cache.put(key, value)
        if self.range_cache is not None:
            if self.freq_admission is not None:
                if self.freq_admission.observe_and_decide(key):
                    self.range_cache.insert_point(key, value)
                else:
                    self.range_cache.stats.rejections += 1
            else:
                self.range_cache.insert_point(key, value)

    def _fill_scan(self, start: str, result: List[Entry]) -> None:
        assert self.range_cache is not None
        if self.scan_admission is not None:
            admit = self.scan_admission.admit_count(len(result))
        else:
            admit = len(result)
        if admit > 0:
            self.range_cache.insert_range(start, result, admit)
        else:
            self.range_cache.stats.rejections += 1
        recorder = self.recorder
        if recorder.enabled:
            length = len(result)
            if admit >= length:
                recorder.inc(N.ADMIT_SCAN_FULL)
            elif admit > 0:
                recorder.inc(N.ADMIT_SCAN_PARTIAL)
            else:
                recorder.inc(N.ADMIT_SCAN_REJECTED)
                recorder.event(N.EV_CACHE_REJECT, cache="range", scan_length=length)
            if admit > 0:
                recorder.observe(N.H_SCAN_ADMITTED, admit)

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: str) -> None:  # hot-path
        """Insert/overwrite; keeps every cache coherent."""
        with self._write_lock:
            self.tree.put(key, value)
        if self.range_cache is not None:
            self.range_cache.on_write(key, value)
        if self.kv_cache is not None:
            self.kv_cache.on_write(key, value)
        if self.kp_cache is not None:
            self.kp_cache.on_write(key)
        collector = self.collector
        collector.note_write()
        if collector.current.ops >= self.window_size:
            self._maybe_end_window()

    def delete(self, key: str) -> None:  # hot-path
        """Delete; removes the key from every cache."""
        with self._write_lock:
            self.tree.delete(key)
        if self.range_cache is not None:
            self.range_cache.on_delete(key)
        if self.kv_cache is not None:
            self.kv_cache.on_delete(key)
        if self.kp_cache is not None:
            self.kp_cache.on_delete(key)
        collector = self.collector
        collector.note_delete()
        if collector.current.ops >= self.window_size:
            self._maybe_end_window()

    # -- crash recovery ---------------------------------------------------------------

    def crash_and_recover(self) -> int:
        """Simulate a process crash and bring the engine back up.

        The tree loses its MemTable and rebuilds it from the WAL
        (torn-tail records are discarded); every cache is volatile, so
        all of them are dropped — recovered reads repopulate them from
        durable state, which keeps cache contents trivially consistent
        with what survived the crash.  Returns the number of WAL records
        replayed.
        """
        with self._write_lock:
            replayed = self.tree.simulate_crash_and_recover()
            for cache in (
                self.block_cache,
                self.range_cache,
                self.kv_cache,
                self.kp_cache,
            ):
                if cache is not None:
                    cache.clear()
            if self.block_cache is not None:
                self._block_stats_snapshot = self.block_cache.stats
            self.crashes_total += 1
            recorder = self.recorder
            if recorder.enabled:
                recorder.inc(N.ENGINE_CRASHES)
                recorder.event(N.EV_CRASH_RECOVER, wal_records_replayed=replayed)
        return replayed

    # -- window machinery ---------------------------------------------------------------

    def _maybe_end_window(self) -> None:
        """Seal the window if full.

        Hot-path callers pre-check ``collector.current.ops`` inline so
        this is only entered near a boundary; the check repeats under
        the lock because another thread may have sealed it first.
        """
        if self.collector.current.ops < self.window_size:
            return
        with self._window_lock:
            if self.collector.current.ops < self.window_size:
                return  # another thread sealed it
            self._end_window()

    def _end_window(self) -> None:
        io_now = self.tree.disk.block_reads_total
        io_miss = io_now - self._io_snapshot
        self._io_snapshot = io_now
        if self.block_cache is not None and self._block_stats_snapshot is not None:
            current = self.block_cache.stats
            delta = current.delta(self._block_stats_snapshot)
            self._block_stats_snapshot = current
            block_hits, block_misses = delta.hits, delta.misses
            block_occ = self.block_cache.occupancy
        else:
            block_hits = block_misses = 0
            block_occ = 0.0
        range_occ = (
            self.range_cache.occupancy if self.range_cache is not None else 0.0
        )
        window = self.collector.end_window(
            io_miss=io_miss,
            block_hits=block_hits,
            block_misses=block_misses,
            num_levels=self.tree.num_levels,
            level0_runs=self.tree.level0_run_count,
            range_occupancy=range_occ,
            block_occupancy=block_occ,
            range_ratio=self.current_range_ratio,
        )
        self.windows.append(window)
        if self._sanitize_sweep_due():
            self.check_invariants()
        recorder = self.recorder
        if recorder.enabled:
            self._obs_window_metrics(window)
        if self.on_window is not None:
            self.on_window(window)
        if recorder.enabled:
            recorder.event(
                N.EV_WINDOW,
                index=window.window_index,
                ops=window.ops,
                range_ratio=window.range_ratio,
            )
            recorder.end_window(window.window_index)

    # -- sanitizer protocol -----------------------------------------------------

    def _caches(self):
        return (self.block_cache, self.range_cache, self.kv_cache, self.kp_cache)

    def _sanitize_sweep_due(self) -> bool:
        """Full sweeps run at window boundaries when sanitizing is on —
        via ``REPRO_SANITIZE`` or any cache's enabled sanitizer."""
        if sanitize.env_enabled():
            return True
        return any(c is not None and c.sanitizing for c in self._caches())

    def check_invariants(self) -> None:
        """Sweep every attached cache and the LSM manifest."""
        for cache in self._caches():
            if cache is not None:
                cache.check_invariants()
        self.tree.check_invariants()

    # -- serving-layer surface ---------------------------------------------------

    @property
    def cache_budget_total(self) -> int:
        """Combined byte budget across every attached cache."""
        return sum(c.budget_bytes for c in self._caches() if c is not None)

    def set_cache_budget(self, total_bytes: int) -> int:
        """Re-split a new total budget across the attached caches.

        The serving layer's global arbiter moves budget *between* engine
        shards; each shard then re-splits its new total proportionally
        to the shares its caches currently hold (an AdCache engine
        instead re-splits at its controller's learned boundary — see
        :meth:`AdCacheEngine.set_cache_budget`).  Returns the evictions
        the resize forced.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be >= 0")
        caches = [c for c in self._caches() if c is not None]
        if not caches:
            return 0
        old_total = sum(c.budget_bytes for c in caches)
        evicted = 0
        if old_total <= 0:
            # Nothing to be proportional to: give everything to the
            # first cache (composition order: block first).
            shares = [total_bytes if i == 0 else 0 for i in range(len(caches))]
        else:
            shares = [c.budget_bytes * total_bytes // old_total for c in caches]
            shares[0] += total_bytes - sum(shares)  # rounding remainder
        for cache, share in zip(caches, shares):
            evicted += cache.resize(share)
        return evicted

    @property
    def last_window(self) -> Optional[WindowStats]:
        """The most recently sealed control window, if any."""
        return self.windows[-1] if self.windows else None

    # -- introspection ---------------------------------------------------------------

    @property
    def current_range_ratio(self) -> float:
        """Fraction of the combined cache budget held by the range cache."""
        range_budget = (
            self.range_cache.budget_bytes if self.range_cache is not None else 0
        )
        block_budget = (
            self.block_cache.budget_bytes if self.block_cache is not None else 0
        )
        total = range_budget + block_budget
        return range_budget / total if total else 0.0

    @property
    def sst_reads_total(self) -> int:
        """Query-path data-block reads that reached the simulated disk."""
        return self.tree.disk.block_reads_total

    def flush_window(self) -> Optional[WindowStats]:
        """Force-seal a partial window (end-of-run bookkeeping)."""
        if self.collector.ops_in_window == 0:
            return None
        with self._window_lock:
            self._end_window()
        return self.windows[-1]
