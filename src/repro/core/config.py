"""Configuration for AdCache (cache budget, RL hyper-parameters).

Defaults reproduce the paper's Section 5.1 setup: windows of 1000
operations, smoothing factor alpha = 0.9, actor/critic learning rates
of 1e-3, and a 50/50 initial boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigError


@dataclass
class AdCacheConfig:
    """Tunables for :class:`~repro.core.adcache.AdCacheEngine`.

    Attributes
    ----------
    total_cache_bytes:
        The single memory budget split between block and range cache.
    initial_range_ratio:
        Starting fraction of the budget given to the range cache.
    window_size:
        Operations per control window (paper: 1000).
    alpha:
        Reward smoothing factor.  The paper uses 0.9 over runs three
        orders of magnitude longer; at simulator scale a lighter EMA
        (default 0.3) keeps credit within a few windows of the action
        that earned it.  Figure 10's alpha sweep still reproduces by
        setting this explicitly.
    actor_lr / critic_lr:
        Initial Adam learning rates (paper: 1e-3 / 1e-3 at 50k-window
        scale; defaults are 1e-2 for simulator-length runs).
    gamma:
        TD discount.  0 (default) scores each window's action against
        the critic's state baseline directly; positive values recover
        multi-window credit as in classic actor-critic.
    hidden_dim:
        Width of the actor/critic hidden layers (paper: 256).
    enable_partitioning:
        Ablation switch: let the RL agent move the cache boundary.
    enable_admission:
        Ablation switch: apply frequency/partial admission control.
    online_learning:
        When False the agent only infers (the paper's "pretrained"
        frozen configuration in Figure 10).
    point_threshold_max:
        The point-admission action is scaled into [0, this]; normalized
        key frequencies live in that range for realistic skews.
    a_max:
        The scan parameter ``a`` action is scaled into [0, this].
    initial_a / initial_b:
        Starting partial-admission parameters; the paper initialises
        ``a`` near the workload's short-scan length.
    max_ratio_step:
        Rate limit on how far the applied block/range boundary may move
        per window.  A full-budget jump evicts a window's worth of
        entries at once — the transition hit-rate drop the paper
        observes at the C->D phase switch — so the boundary walks
        toward the agent's target instead of teleporting.
    replay_capacity / updates_per_window:
        The background trainer keeps recent window transitions and
        replays a few per window on top of the fresh one.  The paper
        trains over tens of millions of operations; replay recovers
        comparable sample efficiency at simulator-scale run lengths
        while keeping all computation off the serving path.
    reward_mode:
        ``"delta"`` is the paper's relative-change reward; ``"level"``
        (default) rewards the smoothed hit-rate level itself, letting
        the critic's baseline supply the difference signal.  Level mode
        keeps a learning gradient at plateaus, which matters at
        simulator-scale run lengths.
    actor_warmup_windows:
        Windows of critic-only training before policy updates start, so
        the value baseline exists before any action gets credit.
    enable_block_scan_admission:
        Apply the partial-admission policy to block-cache fills during
        scans too (the paper's "can also be applied to the block cache"
        note), with the learned (a, b) scaled to block counts.
        Single-client only.
    enable_degraded_guard:
        Validate every window's statistics before they reach the RL
        update.  On degenerate stats (non-finite values, negative
        counters — a stats blackout) the controller pins the applied
        parameters to the safe static defaults (the paper's static
        split, admission wide open) and skips training until the window
        stream recovers.
    degraded_recovery_windows:
        Consecutive healthy windows required before a degraded
        controller resumes RL control.
    sketch_width / sketch_depth / sketch_saturation:
        Count-Min sketch geometry for frequency admission (saturation 8
        per the paper's decay example).
    num_shards:
        Shards for the block cache (multi-client support).
    range_shard_boundaries:
        When set, the range cache becomes a key-range-partitioned
        :class:`~repro.cache.sharded_range.ShardedRangeCache` with these
        split keys (Section 4.4's sharded architecture).  None keeps a
        single lock-guarded range cache.
    exploration_log_std:
        Initial Gaussian exploration (log scale).
    seed:
        Master seed for the agent, sketch, and skip lists.
    sanitize:
        Run runtime invariant checks (:mod:`repro.sanitize`) on the
        block and range caches after a deterministic random sample of
        mutations, and a full sweep at every window boundary.  The
        ``REPRO_SANITIZE`` environment variable enables the same checks
        without touching configs.
    """

    total_cache_bytes: int = 4 << 20
    initial_range_ratio: float = 0.5
    window_size: int = 1000
    alpha: float = 0.3
    actor_lr: float = 1e-2
    critic_lr: float = 1e-2
    gamma: float = 0.0
    hidden_dim: int = 256
    enable_partitioning: bool = True
    enable_admission: bool = True
    online_learning: bool = True
    point_threshold_max: float = 0.05
    a_max: float = 128.0
    initial_a: float = 16.0
    initial_b: float = 0.5
    max_ratio_step: float = 0.05
    replay_capacity: int = 256
    updates_per_window: int = 8
    reward_mode: str = "level"
    actor_warmup_windows: int = 10
    enable_block_scan_admission: bool = False
    enable_degraded_guard: bool = True
    degraded_recovery_windows: int = 2
    sketch_width: int = 4096
    sketch_depth: int = 4
    sketch_saturation: int = 8
    num_shards: int = 1
    range_shard_boundaries: Optional[Tuple[str, ...]] = None
    exploration_log_std: float = -1.2
    seed: int = 0
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.total_cache_bytes < 0:
            raise ConfigError("total_cache_bytes must be >= 0")
        if not 0.0 <= self.initial_range_ratio <= 1.0:
            raise ConfigError("initial_range_ratio must be in [0, 1]")
        if self.window_size <= 0:
            raise ConfigError("window_size must be positive")
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError("alpha must be in [0, 1]")
        if self.actor_lr <= 0 or self.critic_lr <= 0:
            raise ConfigError("learning rates must be positive")
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigError("gamma must be in [0, 1]")
        if self.a_max <= 0:
            raise ConfigError("a_max must be positive")
        if not 0.0 < self.point_threshold_max <= 1.0:
            raise ConfigError("point_threshold_max must be in (0, 1]")
        if self.num_shards <= 0:
            raise ConfigError("num_shards must be positive")
        if self.degraded_recovery_windows <= 0:
            raise ConfigError("degraded_recovery_windows must be positive")
