"""Per-window workload and I/O statistics (the Stats Collector).

The Background Tuning Module's first half: an engine-side collector
that tallies each operation as it happens and, at the end of every
window, folds in deltas from the disk counters, the cache stats, and
the compaction listener to produce one :class:`WindowStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping


@dataclass
class WindowStats:
    """Everything the controller sees about one window."""

    window_index: int = 0
    ops: int = 0
    points: int = 0
    scans: int = 0
    writes: int = 0
    deletes: int = 0
    scan_length_sum: int = 0
    # cache outcomes observed at the engine level
    range_point_hits: int = 0
    range_scan_hits: int = 0
    kv_hits: int = 0
    block_hits: int = 0
    block_misses: int = 0
    # I/O and structural churn
    io_miss: int = 0  # disk block reads in the window (query path)
    compactions: int = 0
    blocks_invalidated: int = 0
    # end-of-window snapshots
    num_levels: int = 1
    level0_runs: int = 0
    range_occupancy: float = 0.0
    block_occupancy: float = 0.0
    range_ratio: float = 0.0

    @property
    def reads(self) -> int:
        """Read operations (points + scans)."""
        return self.points + self.scans

    @property
    def point_ratio(self) -> float:
        """Fraction of operations that were point lookups."""
        return self.points / self.ops if self.ops else 0.0

    @property
    def scan_ratio(self) -> float:
        """Fraction of operations that were scans."""
        return self.scans / self.ops if self.ops else 0.0

    @property
    def write_ratio(self) -> float:
        """Fraction of operations that were writes/deletes."""
        return (self.writes + self.deletes) / self.ops if self.ops else 0.0

    @property
    def avg_scan_length(self) -> float:
        """Mean requested scan length over the window."""
        return self.scan_length_sum / self.scans if self.scans else 0.0

    @property
    def range_hit_rate(self) -> float:
        """Range-cache hits over read operations."""
        if not self.reads:
            return 0.0
        return (self.range_point_hits + self.range_scan_hits) / self.reads

    @property
    def block_hit_rate(self) -> float:
        """Block-cache hit fraction among block accesses."""
        total = self.block_hits + self.block_misses
        return self.block_hits / total if total else 0.0

    def is_healthy(self) -> bool:
        """Whether the window is safe to feed into the RL controller.

        A stats blackout (collector outage, counter wrap, poisoned
        feed) shows up as non-finite or impossible values; the
        controller's degraded-mode guard checks this before computing a
        reward, so degenerate stats can never reach the actor-critic.
        """
        fields = (
            self.ops,
            self.points,
            self.scans,
            self.writes,
            self.deletes,
            self.scan_length_sum,
            self.io_miss,
            self.block_hits,
            self.block_misses,
            self.num_levels,
            self.level0_runs,
            self.range_occupancy,
            self.block_occupancy,
            self.range_ratio,
        )
        if any(not math.isfinite(float(v)) for v in fields):
            return False
        if self.ops <= 0 or self.io_miss < 0:
            return False
        if self.points < 0 or self.scans < 0 or self.scan_length_sum < 0:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field dict (the obs audit log's window payload)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WindowStats":
        """Rebuild from :meth:`to_dict` output (or a shard export).

        Tolerant by design: missing fields take their dataclass
        defaults and unknown keys are ignored, so audit logs written by
        an older or newer schema still load — cross-version replay then
        fails loudly at verification, not at parse time.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def merge_windows(windows: list[WindowStats]) -> WindowStats:
    """Aggregate several windows into one (cross-shard reporting).

    Counters sum; end-of-window snapshots (levels, occupancies, ratio)
    take the op-weighted mean so the merged view reflects where the
    traffic actually went.  The serving layer uses this to expose a
    fleet-wide window built from each shard's export.

    Edge cases are handled explicitly rather than propagated:

    * an empty list merges to the default (empty) window;
    * when no window did any work (all ``ops == 0`` — e.g. a fleet of
      idle shards at startup) the snapshots fall back to a plain mean,
      so occupancy and split still describe the shards instead of
      collapsing to zero;
    * non-finite snapshot values (a blackout-poisoned shard) are
      excluded from the means so one bad shard cannot NaN the fleet
      view — its *counters* still sum, and ``is_healthy()`` on the
      poisoned per-shard window is how blackouts are detected.
    """
    out = WindowStats()
    if not windows:
        return out
    total_ops = sum(max(0, w.ops) for w in windows)
    # Weighted-mean accumulators: value-sum and weight-sum per snapshot
    # field, skipping non-finite contributions.
    occ_range = occ_block = ratio = 0.0
    occ_range_w = occ_block_w = ratio_w = 0.0
    for w in windows:
        out.ops += w.ops
        out.points += w.points
        out.scans += w.scans
        out.writes += w.writes
        out.deletes += w.deletes
        out.scan_length_sum += w.scan_length_sum
        out.range_point_hits += w.range_point_hits
        out.range_scan_hits += w.range_scan_hits
        out.kv_hits += w.kv_hits
        out.block_hits += w.block_hits
        out.block_misses += w.block_misses
        out.io_miss += w.io_miss
        out.compactions += w.compactions
        out.blocks_invalidated += w.blocks_invalidated
        out.num_levels = max(out.num_levels, w.num_levels)
        out.level0_runs = max(out.level0_runs, w.level0_runs)
        weight = float(max(0, w.ops)) if total_ops else 1.0
        if math.isfinite(w.range_occupancy):
            occ_range += w.range_occupancy * weight
            occ_range_w += weight
        if math.isfinite(w.block_occupancy):
            occ_block += w.block_occupancy * weight
            occ_block_w += weight
        if math.isfinite(w.range_ratio):
            ratio += w.range_ratio * weight
            ratio_w += weight
    if occ_range_w:
        out.range_occupancy = occ_range / occ_range_w
    if occ_block_w:
        out.block_occupancy = occ_block / occ_block_w
    if ratio_w:
        out.range_ratio = ratio / ratio_w
    out.window_index = max(w.window_index for w in windows)
    return out


class StatsCollector:
    """Accumulates one window at a time; engine feeds it per-op events."""

    def __init__(self) -> None:
        #: The in-progress window.  Public so hot paths (engine per-op
        #: window checks, the simulated clock's counter captures) can
        #: read counters without a property hop; it is a *live* object
        #: that is replaced wholesale at every :meth:`end_window`, so
        #: never retain a reference across a window boundary.
        self.current = WindowStats()
        self._window_index = 0
        self._pending_compactions = 0
        self._pending_blocks_invalidated = 0
        # lifetime aggregates (for end-of-run reports)
        self.lifetime = WindowStats()

    # -- per-op events ------------------------------------------------------------

    def note_point(self, range_hit: bool, kv_hit: bool = False) -> None:  # hot-path
        """Record one point lookup and where it was served."""
        cur = self.current
        cur.ops += 1
        cur.points += 1
        if range_hit:
            cur.range_point_hits += 1
        if kv_hit:
            cur.kv_hits += 1

    def note_scan(self, length: int, range_hit: bool) -> None:  # hot-path
        """Record one range scan of requested ``length``."""
        cur = self.current
        cur.ops += 1
        cur.scans += 1
        cur.scan_length_sum += length
        if range_hit:
            cur.range_scan_hits += 1

    def note_write(self) -> None:  # hot-path
        """Record one put."""
        cur = self.current
        cur.ops += 1
        cur.writes += 1

    def note_delete(self) -> None:  # hot-path
        """Record one delete."""
        cur = self.current
        cur.ops += 1
        cur.deletes += 1

    def note_compaction(self, blocks_invalidated: int) -> None:
        """Compaction-listener hook (may fire mid-window)."""
        self._pending_compactions += 1
        self._pending_blocks_invalidated += blocks_invalidated

    @property
    def ops_in_window(self) -> int:
        """Operations recorded since the last :meth:`end_window`."""
        return self.current.ops

    def totals(self) -> WindowStats:  # hot-path
        """Lifetime counters including the in-progress window.

        Built in one constructor call (the serving simulator captures
        totals once per request, so the two-pass accumulate loop this
        replaces showed up in profiles).
        """
        life = self.lifetime
        cur = self.current
        return WindowStats(
            ops=life.ops + cur.ops,
            points=life.points + cur.points,
            scans=life.scans + cur.scans,
            writes=life.writes + cur.writes,
            deletes=life.deletes + cur.deletes,
            scan_length_sum=life.scan_length_sum + cur.scan_length_sum,
            range_point_hits=life.range_point_hits + cur.range_point_hits,
            range_scan_hits=life.range_scan_hits + cur.range_scan_hits,
            kv_hits=life.kv_hits + cur.kv_hits,
            block_hits=life.block_hits + cur.block_hits,
            block_misses=life.block_misses + cur.block_misses,
            io_miss=life.io_miss + cur.io_miss,
            compactions=life.compactions + cur.compactions,
            blocks_invalidated=life.blocks_invalidated + cur.blocks_invalidated,
        )

    # -- window boundary ------------------------------------------------------------

    def end_window(
        self,
        io_miss: int,
        block_hits: int,
        block_misses: int,
        num_levels: int,
        level0_runs: int,
        range_occupancy: float,
        block_occupancy: float,
        range_ratio: float,
    ) -> WindowStats:
        """Seal the window with I/O deltas and snapshots; start the next."""
        window = self.current
        window.window_index = self._window_index
        window.io_miss = io_miss
        window.block_hits = block_hits
        window.block_misses = block_misses
        window.compactions = self._pending_compactions
        window.blocks_invalidated = self._pending_blocks_invalidated
        window.num_levels = num_levels
        window.level0_runs = level0_runs
        window.range_occupancy = range_occupancy
        window.block_occupancy = block_occupancy
        window.range_ratio = range_ratio

        self._accumulate_lifetime(window)
        self._window_index += 1
        self.current = WindowStats()
        self._pending_compactions = 0
        self._pending_blocks_invalidated = 0
        return window

    def _accumulate_lifetime(self, w: WindowStats) -> None:
        life = self.lifetime
        life.ops += w.ops
        life.points += w.points
        life.scans += w.scans
        life.writes += w.writes
        life.deletes += w.deletes
        life.scan_length_sum += w.scan_length_sum
        life.range_point_hits += w.range_point_hits
        life.range_scan_hits += w.range_scan_hits
        life.kv_hits += w.kv_hits
        life.block_hits += w.block_hits
        life.block_misses += w.block_misses
        life.io_miss += w.io_miss
        life.compactions += w.compactions
        life.blocks_invalidated += w.blocks_invalidated
