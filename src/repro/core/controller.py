"""The Policy Decision Controller (Background Tuning Module).

At every window boundary the controller:

1. computes the window's reward from the I/O-estimate model
   (:mod:`repro.rl.reward`), smoothing included;
2. performs one actor-critic update with the *previous* window's
   (state, action) and this window's reward — the one-window delay the
   paper describes in Section 4.2;
3. adapts the actor learning rate (``lr *= 1 - reward``);
4. samples the next action and applies it: moves the block/range
   boundary and retunes the admission thresholds.

Every step is recorded in :attr:`history` so the paper's Figure 10
(parameter-evolution and convergence plots) can be regenerated.
"""

from __future__ import annotations

import math
from random import Random
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.block_cache import BlockCache
from repro.cache.range_cache import RangeCache
from repro.core.config import AdCacheConfig
from repro.core.stats import WindowStats
from repro.obs import names as N
from repro.obs.recorder import NULL_RECORDER, ObsRecorder, Recorder
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import state_vector
from repro.rl.reward import RewardCalculator, adapt_learning_rate


@dataclass
class ControlRecord:
    """One window's controller activity (for analysis and Figure 10)."""

    window_index: int
    reward: float
    trend: float
    h_estimate: float
    h_smoothed: float
    actor_lr: float
    range_ratio: float
    point_threshold: float
    scan_a: float
    scan_b: float
    degraded: bool = False


class PolicyDecisionController:
    """Actor-critic in, cache boundary and admission parameters out.

    Parameters
    ----------
    config:
        AdCache configuration (budgets, learning setup, ablations).
    agent:
        The actor-critic agent (possibly pretrained).
    block_cache / range_cache:
        The two partitions the dynamic boundary moves between.
    freq_admission / scan_admission:
        Admission mechanisms retuned each window.
    entries_per_block / level0_max_runs:
        LSM constants for the I/O-estimate reward.
    """

    def __init__(
        self,
        config: AdCacheConfig,
        agent: ActorCriticAgent,
        block_cache: Optional[BlockCache],
        range_cache: Optional[RangeCache],
        freq_admission: Optional[FrequencyAdmission],
        scan_admission: Optional[PartialScanAdmission],
        entries_per_block: int,
        level0_max_runs: int,
        block_scan_admission: Optional[PartialScanAdmission] = None,
    ) -> None:
        self.config = config
        self.agent = agent
        self.block_cache = block_cache
        self.range_cache = range_cache
        self.freq_admission = freq_admission
        self.scan_admission = scan_admission
        self.block_scan_admission = block_scan_admission
        self.entries_per_block = entries_per_block
        self.level0_max_runs = level0_max_runs
        self.reward_calc = RewardCalculator(
            alpha=config.alpha,
            entries_per_block=entries_per_block,
            mode=config.reward_mode,
        )
        self.history: List[ControlRecord] = []
        self._prev_state: Optional[np.ndarray] = None
        self._prev_action: Optional[np.ndarray] = None
        self._replay: Deque[Tuple[np.ndarray, np.ndarray, float, np.ndarray]] = deque(
            maxlen=max(1, config.replay_capacity)
        )
        self._replay_rng = Random(config.seed + 17)
        # Currently applied parameters (actions are normalized to [0,1]).
        self._range_ratio = config.initial_range_ratio
        self._point_threshold = 0.0
        self._a = config.initial_a
        self._b = config.initial_b
        # Degraded-mode guard state (see on_window).
        self._degraded = False
        self._healthy_streak = 0
        self.degraded_windows_total = 0
        self.degraded_activations_total = 0
        self.degraded_recoveries_total = 0
        self.recorder: Recorder = NULL_RECORDER

    # -- observability ------------------------------------------------

    def attach_recorder(
        self, recorder: Recorder, agent_init: Optional[Dict[str, Any]] = None
    ) -> None:
        """Start auditing decisions on ``recorder``.

        ``agent_init`` is the agent's construction record (seeds and
        dimensions); with it the audit log replays bit-for-bit offline
        (see :mod:`repro.obs.audit`).  ``None`` means the agent was
        supplied externally, so the log documents but cannot rebuild it.
        """
        self.recorder = recorder
        if isinstance(recorder, ObsRecorder):
            recorder.audit.set_header(
                asdict(self.config),
                agent_init,
                self.entries_per_block,
                self.level0_max_runs,
            )

    def _observe(self, window: WindowStats, record: ControlRecord) -> ControlRecord:
        """Fold one decision into the recorder (metrics, trace, audit)."""
        recorder = self.recorder
        if not isinstance(recorder, ObsRecorder):
            return record
        recorder.inc(N.CTRL_DECISIONS)
        if record.degraded:
            recorder.inc(N.CTRL_DEGRADED_WINDOWS)
        for gauge, value in (
            (N.G_REWARD, record.reward),
            (N.G_ACTOR_LR, record.actor_lr),
            (N.G_POINT_THRESHOLD, record.point_threshold),
            (N.G_SCAN_A, record.scan_a),
            (N.G_SCAN_B, record.scan_b),
        ):
            recorder.set_gauge(gauge, value)
        recorder.event(
            N.EV_DECISION,
            window=record.window_index,
            reward=record.reward,
            range_ratio=record.range_ratio,
            degraded=record.degraded,
        )
        recorder.audit.record(window, record, recorder.now_us)
        return record

    # -- current applied parameters ------------------------------------------------

    @property
    def range_ratio(self) -> float:
        """Currently applied range-cache share of the budget."""
        return self._range_ratio

    @property
    def point_threshold(self) -> float:
        """Currently applied frequency-admission bar."""
        return self._point_threshold

    @property
    def scan_params(self) -> tuple:
        """Currently applied partial-admission ``(a, b)``."""
        return self._a, self._b

    @property
    def degraded(self) -> bool:
        """Whether the controller is currently pinned to safe defaults."""
        return self._degraded

    # -- window entry point ------------------------------------------------

    def on_window(self, window: WindowStats) -> ControlRecord:
        """Process one sealed window (the engine's ``on_window`` hook).

        Degenerate windows (non-finite or impossible statistics — a
        stats blackout) never reach the RL machinery: the controller
        enters degraded mode, pins the applied parameters to the safe
        static defaults, and only resumes learning after
        ``config.degraded_recovery_windows`` consecutive healthy
        windows.
        """
        guard = self.config.enable_degraded_guard
        if guard and not window.is_healthy():
            return self._degrade(window)
        reward_out = self.reward_calc.compute(
            points=window.points,
            scans=window.scans,
            avg_scan_length=window.avg_scan_length,
            io_miss=window.io_miss,
            num_levels=window.num_levels,
            level0_max_runs=self.level0_max_runs,
        )
        state = self._featurize(window, reward_out.h_smoothed)
        if guard and not (
            math.isfinite(reward_out.reward)
            and math.isfinite(reward_out.trend)
            and bool(np.all(np.isfinite(state)))
        ):
            # The smoothing state may have absorbed the bad value; clear
            # it so recovery starts from fresh statistics.
            self.reward_calc.reset()
            return self._degrade(window)
        if self._degraded:
            self._healthy_streak += 1
            if self._healthy_streak < self.config.degraded_recovery_windows:
                self.degraded_windows_total += 1
                return self._record_pinned(window, reward_out)
            self._degraded = False
            self.degraded_recoveries_total += 1
            if self.recorder.enabled:
                self.recorder.event(
                    N.EV_DEGRADED_EXIT,
                    window=window.window_index,
                    healthy_streak=self._healthy_streak,
                )

        if (
            self.config.online_learning
            and self._prev_state is not None
            and self._prev_action is not None
        ):
            transition = (self._prev_state, self._prev_action, reward_out.reward, state)
            self._replay.append(transition)
            train_actor = window.window_index >= self.config.actor_warmup_windows
            self.agent.update(*transition, update_actor=train_actor)
            # Replay a few recent transitions: the asynchronous trainer's
            # extra passes, off the serving path.
            for _ in range(max(0, self.config.updates_per_window - 1)):
                s, a, r, s2 = self._replay_rng.choice(self._replay)
                self.agent.update(s, a, r, s2, update_actor=train_actor)
            # A non-finite trend must not poison the multiplicative lr
            # update (lr * (1 - trend) would go NaN and stick).
            if math.isfinite(reward_out.trend):
                self.agent.set_actor_lr(
                    adapt_learning_rate(self.agent.actor_lr, reward_out.trend)
                )

        action = self.agent.act(state, explore=self.config.online_learning)
        applied = self._apply(self.agent.clip_action(action))
        self._prev_state = state
        # Learn from the action that actually ran: the rate limiter may
        # clamp the sampled boundary move, and crediting the raw sample
        # with the clamped execution's reward would drag the policy
        # toward whatever extreme the noise proposed.
        self._prev_action = applied

        record = ControlRecord(
            window_index=window.window_index,
            reward=reward_out.reward,
            trend=reward_out.trend,
            h_estimate=reward_out.h_estimate,
            h_smoothed=reward_out.h_smoothed,
            actor_lr=self.agent.actor_lr,
            range_ratio=self._range_ratio,
            point_threshold=self._point_threshold,
            scan_a=self._a,
            scan_b=self._b,
        )
        self.history.append(record)
        return self._observe(window, record)

    # -- degraded mode ------------------------------------------------

    def _degrade(self, window: WindowStats) -> ControlRecord:
        """Handle one degenerate window: pin safe defaults, skip RL."""
        if not self._degraded:
            self._degraded = True
            self.degraded_activations_total += 1
            if self.recorder.enabled:
                self.recorder.event(
                    N.EV_DEGRADED_ENTER, window=window.window_index
                )
        self._healthy_streak = 0
        self.degraded_windows_total += 1
        # Any pending transition may span the blackout; never train on it.
        self._prev_state = None
        self._prev_action = None
        return self._record_pinned(window, None)

    def _record_pinned(
        self, window: WindowStats, reward_out
    ) -> ControlRecord:
        """Apply the safe static defaults and log a degraded record."""
        self._apply_safe_defaults()
        record = ControlRecord(
            window_index=window.window_index,
            reward=reward_out.reward if reward_out is not None else 0.0,
            trend=reward_out.trend if reward_out is not None else 0.0,
            h_estimate=reward_out.h_estimate if reward_out is not None else 0.0,
            h_smoothed=reward_out.h_smoothed if reward_out is not None else 0.0,
            actor_lr=self.agent.actor_lr,
            range_ratio=self._range_ratio,
            point_threshold=self._point_threshold,
            scan_a=self._a,
            scan_b=self._b,
            degraded=True,
        )
        self.history.append(record)
        return self._observe(window, record)

    def _apply_safe_defaults(self) -> None:
        """Walk the applied parameters to the paper's static defaults.

        The boundary moves at most ``max_ratio_step`` per window (same
        rate limit as RL actions, so degrading cannot flush a cache);
        admission opens fully so no result is rejected while blind.
        """
        if self.config.enable_partitioning:
            step = self.config.max_ratio_step
            target = self.config.initial_range_ratio
            ratio = min(
                self._range_ratio + step, max(self._range_ratio - step, target)
            )
            self._range_ratio = ratio
            total = self.config.total_cache_bytes
            range_budget = int(total * ratio)
            if self.range_cache is not None:
                self.range_cache.resize(range_budget)
            if self.block_cache is not None:
                self.block_cache.resize(total - range_budget)
        if self.config.enable_admission:
            self._point_threshold = 0.0
            self._a = self.config.initial_a
            self._b = self.config.initial_b
            if self.freq_admission is not None:
                self.freq_admission.set_threshold(self._point_threshold)
            if self.scan_admission is not None:
                self.scan_admission.set_params(self._a, self._b)
            if self.block_scan_admission is not None:
                self.block_scan_admission.set_params(
                    self._a / self.entries_per_block, self._b
                )

    # -- internals ------------------------------------------------

    def _featurize(self, window: WindowStats, h_smoothed: float) -> np.ndarray:
        return state_vector(
            point_ratio=window.point_ratio,
            scan_ratio=window.scan_ratio,
            write_ratio=window.write_ratio,
            avg_scan_length=window.avg_scan_length,
            range_hit_rate=window.range_hit_rate,
            block_hit_rate=window.block_hit_rate,
            h_smoothed=h_smoothed,
            range_occupancy=window.range_occupancy,
            block_occupancy=window.block_occupancy,
            compactions=window.compactions,
            current_range_ratio=self._range_ratio,
            current_point_threshold_norm=(
                self._point_threshold / self.config.point_threshold_max
            ),
            current_a_norm=self._a / self.config.a_max,
            current_b=self._b,
        )

    def _apply(self, action: np.ndarray) -> np.ndarray:
        """Execute an action; returns the normalized action as applied."""
        ratio, thr_norm, a_norm, b = (float(x) for x in action)
        if self.config.enable_partitioning:
            # Walk the boundary toward the target at a bounded rate so a
            # single exploratory action cannot flush either cache.
            step = self.config.max_ratio_step
            old_ratio = self._range_ratio
            ratio = min(self._range_ratio + step, max(self._range_ratio - step, ratio))
            self._range_ratio = ratio
            if ratio != old_ratio and self.recorder.enabled:
                self.recorder.event(
                    N.EV_BOUNDARY_MOVE, range_ratio=ratio, previous=old_ratio
                )
            total = self.config.total_cache_bytes
            range_budget = int(total * ratio)
            if self.range_cache is not None:
                self.range_cache.resize(range_budget)
            if self.block_cache is not None:
                self.block_cache.resize(total - range_budget)
        if self.config.enable_admission:
            self._point_threshold = thr_norm * self.config.point_threshold_max
            self._a = a_norm * self.config.a_max
            self._b = b
            if self.freq_admission is not None:
                self.freq_admission.set_threshold(self._point_threshold)
            if self.scan_admission is not None:
                self.scan_admission.set_params(self._a, self._b)
            if self.block_scan_admission is not None:
                # Same policy, block-count units.
                self.block_scan_admission.set_params(
                    self._a / self.entries_per_block, self._b
                )
        return np.array(
            [
                self._range_ratio,
                self._point_threshold / self.config.point_threshold_max,
                self._a / self.config.a_max,
                self._b,
            ],
            dtype=np.float32,
        )
