"""AdCacheEngine: the fully wired adaptive caching system (Figure 4).

Composes the LSM tree with a block cache and a range cache under a
dynamic memory boundary, frequency admission for point results,
partial admission for scan results, and the actor-critic policy
decision controller running at window boundaries.

Ablation variants (Figure 11b) are one-flag configurations:

* ``enable_partitioning=False`` — admission control only; the boundary
  stays at ``initial_range_ratio``.
* ``enable_admission=False`` — adaptive partitioning only; every result
  is admitted.
* ``online_learning=False`` with a pretrained agent — the "pretrained"
  frozen configuration of Figure 10.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.cache.admission import FrequencyAdmission, PartialScanAdmission
from repro.cache.block_cache import BlockCache
from repro.cache.range_cache import RangeCache
from repro.cache.sketch import CountMinSketch
from repro.core.config import AdCacheConfig
from repro.core.controller import PolicyDecisionController
from repro.core.engine import KVEngine
from repro.lsm.options import KEY_SIZE, VALUE_SIZE
from repro.lsm.tree import LSMTree
from repro.obs.recorder import Recorder
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM

#: Actions: range ratio, point threshold, scan ``a``, scan ``b``.
ACTION_DIM = 4


class AdCacheEngine(KVEngine):
    """The AdCache system: adaptive partitioning + admission + RL.

    Parameters
    ----------
    tree:
        The LSM-tree storage engine to manage caching for.
    config:
        All tunables; ``config.total_cache_bytes`` is the unified
        budget the dynamic boundary splits.
    agent:
        Optionally a pre-built (e.g. pretrained) actor-critic agent;
        a fresh one is created otherwise.
    """

    def __init__(
        self,
        tree: LSMTree,
        config: Optional[AdCacheConfig] = None,
        agent: Optional[ActorCriticAgent] = None,
    ) -> None:
        config = config or AdCacheConfig()
        self.config = config
        opts = tree.options
        entry_charge = opts.key_size + opts.value_size

        range_budget = int(config.total_cache_bytes * config.initial_range_ratio)
        block_budget = config.total_cache_bytes - range_budget
        block_cache = BlockCache(
            block_budget,
            block_size=opts.block_size,
            backing_fetch=tree.disk.read_block,
            num_shards=config.num_shards,
        )
        if config.range_shard_boundaries:
            from repro.cache.sharded_range import ShardedRangeCache

            range_cache = ShardedRangeCache(
                range_budget,
                config.range_shard_boundaries,
                entry_charge=entry_charge,
                seed=config.seed,
            )
        else:
            range_cache = RangeCache(
                range_budget, entry_charge=entry_charge, seed=config.seed
            )
        if config.sanitize:
            block_cache.enable_sanitizer(seed=config.seed)
            range_cache.enable_sanitizer(seed=config.seed + 1)

        sketch = CountMinSketch(
            width=config.sketch_width,
            depth=config.sketch_depth,
            saturation=config.sketch_saturation,
            seed=config.seed,
        )
        freq_admission = (
            FrequencyAdmission(sketch, threshold=0.0)
            if config.enable_admission
            else None
        )
        scan_admission = (
            PartialScanAdmission(a=config.initial_a, b=config.initial_b)
            if config.enable_admission
            else None
        )
        block_scan_admission = None
        if config.enable_admission and config.enable_block_scan_admission:
            block_scan_admission = PartialScanAdmission(
                a=config.initial_a / opts.entries_per_block, b=config.initial_b
            )

        self._agent_init: Optional[Dict[str, Any]] = None
        if agent is None:
            initial_policy = [
                config.initial_range_ratio,
                0.0,  # point-admission bar: admit everything
                config.initial_a / config.a_max,
                config.initial_b,
            ]
            # The agent's full construction record: with it, an audit
            # log replays the decision stream bit-for-bit offline (see
            # repro.obs.audit).  Externally supplied agents carry state
            # the log cannot reconstruct, so they record None.
            self._agent_init = {
                "state_dim": STATE_DIM,
                "action_dim": ACTION_DIM,
                "hidden_dim": config.hidden_dim,
                "actor_lr": config.actor_lr,
                "critic_lr": config.critic_lr,
                "gamma": config.gamma,
                "initial_log_std": config.exploration_log_std,
                "seed": config.seed,
                "initial_policy": initial_policy,
            }
            agent = ActorCriticAgent(
                state_dim=STATE_DIM,
                action_dim=ACTION_DIM,
                hidden_dim=config.hidden_dim,
                actor_lr=config.actor_lr,
                critic_lr=config.critic_lr,
                gamma=config.gamma,
                initial_log_std=config.exploration_log_std,
                seed=config.seed,
            )
            # Start from the paper's initial configuration — the
            # configured boundary, admission wide open, (a, b) at their
            # initial values — instead of an arbitrary mid-scale point.
            agent.set_initial_policy(np.array(initial_policy, dtype=np.float32))
        self.agent = agent
        self.controller = PolicyDecisionController(
            config=config,
            agent=agent,
            block_cache=block_cache,
            range_cache=range_cache,
            freq_admission=freq_admission,
            scan_admission=scan_admission,
            block_scan_admission=block_scan_admission,
            entries_per_block=opts.entries_per_block,
            level0_max_runs=opts.level0_stop_writes_trigger,
        )

        super().__init__(
            tree=tree,
            block_cache=block_cache,
            range_cache=range_cache,
            kv_cache=None,
            freq_admission=freq_admission,
            scan_admission=scan_admission,
            block_scan_admission=block_scan_admission,
            window_size=config.window_size,
            on_window=self.controller.on_window,
        )

    def attach_recorder(self, recorder: Recorder) -> None:
        """Wire observability through the engine *and* the controller.

        On top of the base engine wiring, starts the controller's
        decision audit with this engine's agent construction record, so
        the exported log is replayable when the agent was built here.
        """
        super().attach_recorder(recorder)
        self.controller.attach_recorder(recorder, agent_init=self._agent_init)

    @property
    def entry_charge(self) -> int:
        """Logical bytes charged per cached key-value entry."""
        return self.tree.options.key_size + self.tree.options.value_size

    def set_cache_budget(self, total_bytes: int) -> int:
        """Adopt a new total budget, split at the learned boundary.

        The serving layer's global arbiter moves budget between shards;
        an AdCache shard re-splits its new total at the controller's
        *current* range ratio (not the raw cache shares, which drift
        with rounding) and updates ``config.total_cache_bytes`` so every
        subsequent controller decision scales from the new total.
        Returns the evictions the resize forced.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be >= 0")
        self.config.total_cache_bytes = total_bytes
        ratio = self.controller.range_ratio
        range_budget = int(total_bytes * ratio)
        evicted = 0
        if self.range_cache is not None:
            evicted += self.range_cache.resize(range_budget)
        if self.block_cache is not None:
            evicted += self.block_cache.resize(total_bytes - range_budget)
        return evicted


def default_entry_charge() -> int:
    """The paper's logical entry footprint (24 B key + 1000 B value)."""
    return KEY_SIZE + VALUE_SIZE
