"""Gaussian-policy actor-critic for continuous cache control.

The actor maps the window's workload-state vector to action means in
``[0, 1]^d`` (sigmoid-squashed); exploration adds state-independent
Gaussian noise with a learnable per-dimension log-std.  The critic
estimates the state value; a one-step TD error drives both updates:

* critic minimises ``0.5 * delta^2``,
* actor ascends ``delta * log pi(a | s)``.

Action dimensions are interpreted by the AdCache controller
(:mod:`repro.core.controller`): range/block split, point-admission
threshold, and the scan-admission parameters ``a`` and ``b``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.rl.nn import MLP, sigmoid
from repro.rl.optim import Adam

Array = np.ndarray

_LOG_STD_MIN, _LOG_STD_MAX = -4.0, 0.0


class ActorCriticAgent:
    """Online actor-critic with sigmoid-bounded continuous actions.

    Parameters
    ----------
    state_dim / action_dim:
        Dimensions of the observation and action vectors.
    hidden_dim:
        Width of the two hidden layers (paper: 256).
    actor_lr / critic_lr:
        Initial Adam rates (paper: 1e-3 each).  The actor rate is the
        one the paper adapts online (``lr *= 1 - reward``).
    gamma:
        TD discount.
    initial_log_std:
        Starting exploration noise (log scale).
    seed:
        Init + exploration RNG seed.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden_dim: int = 256,
        actor_lr: float = 1e-3,
        critic_lr: float = 1e-3,
        gamma: float = 0.9,
        initial_log_std: float = -1.6,
        seed: int = 0,
    ) -> None:
        if state_dim <= 0 or action_dim <= 0:
            raise ConfigError("state_dim and action_dim must be positive")
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.gamma = gamma
        self.actor = MLP([state_dim, hidden_dim, hidden_dim, action_dim], seed=seed)
        self.critic = MLP([state_dim, hidden_dim, hidden_dim, 1], seed=seed + 1)
        self.log_std = np.full(action_dim, initial_log_std, dtype=np.float32)
        self._actor_opt = Adam(self.actor.parameters() + [self.log_std], lr=actor_lr)
        self._critic_opt = Adam(self.critic.parameters(), lr=critic_lr)
        self._rng = np.random.default_rng(seed + 2)
        self.updates_total = 0

    def set_initial_policy(self, action_means: Array) -> None:
        """Pin the untrained policy's mean to ``action_means``.

        Scales the final layer's weights down and sets its biases to the
        logit of each target, so the initial policy reproduces a chosen
        configuration (e.g. the paper's 50/50 boundary with admission
        wide open) instead of an arbitrary mid-scale point.
        """
        targets = np.clip(np.asarray(action_means, dtype=np.float32), 1e-4, 1 - 1e-4)
        if targets.shape != (self.action_dim,):
            raise ConfigError(f"expected {self.action_dim} action means")
        self.actor.weights[-1] *= 0.01
        self.actor.biases[-1][...] = np.log(targets / (1.0 - targets))

    # -- acting ---------------------------------------------------------------

    def action_mean(self, state: Array) -> Array:
        """Deterministic policy output in [0, 1]^d."""
        return sigmoid(self.actor.forward(np.asarray(state, dtype=np.float32)))

    def act(self, state: Array, explore: bool = True) -> Array:
        """Sample an action; deterministic when ``explore`` is False.

        The returned action is clipped to [0, 1] for execution; the
        unclipped sample is what :meth:`update` expects back.
        """
        mean = self.action_mean(state)
        if not explore:
            return mean
        std = np.exp(self.log_std)
        sample = mean + std * self._rng.standard_normal(self.action_dim).astype(
            np.float32
        )
        return sample

    @staticmethod
    def clip_action(action: Array) -> Array:
        """Executable version of a possibly-out-of-range sample."""
        return np.clip(action, 0.0, 1.0)

    # -- learning ---------------------------------------------------------------

    def value(self, state: Array) -> float:
        """Critic estimate V(s)."""
        return float(self.critic.forward(np.asarray(state, dtype=np.float32))[0])

    def update(
        self,
        state: Array,
        action: Array,
        reward: float,
        next_state: Array,
        done: bool = False,
        update_actor: bool = True,
        delta_clip: Optional[float] = 0.2,
    ) -> float:
        """One TD(0) actor-critic step; returns the TD error ``delta``.

        ``update_actor=False`` trains only the critic (used to warm the
        value baseline before policy updates begin).  ``delta_clip``
        bounds the advantage fed to the actor so a still-cold critic
        cannot imprint arbitrary early actions onto the policy.
        """
        state = np.asarray(state, dtype=np.float32)
        next_state = np.asarray(next_state, dtype=np.float32)
        action = np.asarray(action, dtype=np.float32)

        v_next = 0.0 if done else self.value(next_state)
        v_out = self.critic.forward(state, remember=True)
        v = float(v_out[0])
        delta = reward + self.gamma * v_next - v

        # Critic: minimise 0.5 * delta^2  =>  dL/dv = -(delta).
        critic_grads = self.critic.backward(np.array([-delta], dtype=np.float32))
        self._critic_opt.step(critic_grads)
        if not update_actor:
            self.updates_total += 1
            return float(delta)
        if delta_clip is not None:
            delta = float(np.clip(delta, -delta_clip, delta_clip))

        # Actor: maximise delta * log pi(a|s) with pi = N(mu(s), sigma^2).
        pre = self.actor.forward(state, remember=True)
        mu = sigmoid(pre)
        std = np.exp(self.log_std)
        var = std * std
        # d(-delta * logpi)/dmu = -delta * (a - mu) / var
        dmu = (-delta) * (action - mu) / var
        dpre = dmu * mu * (1.0 - mu)  # through the sigmoid
        actor_grads = self.actor.backward(dpre.astype(np.float32))
        # d(-delta * logpi)/dlog_std = -delta * ((a - mu)^2 / var - 1)
        dlog_std = (-delta) * (((action - mu) ** 2) / var - 1.0)
        self._actor_opt.step(actor_grads + [dlog_std.astype(np.float32)])
        np.clip(self.log_std, _LOG_STD_MIN, _LOG_STD_MAX, out=self.log_std)

        self.updates_total += 1
        return float(delta)

    # -- learning-rate control (paper's adaptive actor rate) ---------------------

    @property
    def actor_lr(self) -> float:
        """Current actor learning rate."""
        return self._actor_opt.lr

    def set_actor_lr(self, lr: float) -> None:
        """Set the actor learning rate (clamped to a sane range)."""
        self._actor_opt.lr = float(min(1e-1, max(1e-6, lr)))

    # -- introspection / persistence -----------------------------------------------

    def memory_overhead_bytes(self) -> Dict[str, int]:
        """Reproduce Table 2: weights, gradients, optimizer states."""
        weight_bytes = self.actor.size_bytes + self.critic.size_bytes + self.log_std.nbytes
        # Backprop holds one gradient per parameter at peak.
        gradient_bytes = weight_bytes
        optimizer_bytes = self._actor_opt.state_bytes + self._critic_opt.state_bytes
        return {
            "model_weights": weight_bytes,
            "gradients": gradient_bytes,
            "optimizer_states": optimizer_bytes,
            "total": weight_bytes + gradient_bytes + optimizer_bytes,
        }

    @property
    def num_parameters(self) -> int:
        """Total scalar parameters across actor + critic (+ log_std)."""
        return (
            self.actor.num_parameters
            + self.critic.num_parameters
            + self.log_std.size
        )

    def state_dict(self) -> Dict[str, Array]:
        """Serializable snapshot of all learnable parameters."""
        out = {f"actor_{k}": v for k, v in self.actor.state_dict().items()}
        out.update({f"critic_{k}": v for k, v in self.critic.state_dict().items()})
        out["log_std"] = self.log_std.copy()
        return out

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.actor.load_state_dict(
            {k[len("actor_") :]: v for k, v in state.items() if k.startswith("actor_")}
        )
        self.critic.load_state_dict(
            {k[len("critic_") :]: v for k, v in state.items() if k.startswith("critic_")}
        )
        self.log_std[:] = state["log_std"].astype(np.float32)

    def save(self, path: str) -> None:
        """Persist parameters to an ``.npz`` file (pretraining hand-off)."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters from :meth:`save` output."""
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})
