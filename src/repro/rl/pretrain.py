"""Pretraining the actor before deployment (paper Section 3.6).

Two modes, as described:

* **Supervised** — the actor regresses onto ``(state, target-action)``
  pairs.  Targets come either from controlled experiments or from the
  rule-of-thumb expert in :func:`heuristic_target`, which encodes the
  paper's own findings (block cache for stable read/scan phases, range
  cache under update pressure, partial admission for long scans).
* **Unsupervised** — the ordinary online actor-critic loop run against
  recorded or synthetic workloads before deployment; see
  ``examples/pretraining.py`` for the end-to-end flow.

A pretrained agent can be saved with ``agent.save(path)`` and shipped to
other machines, reproducing the paper's portability argument.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import SCAN_LEN_SCALE, STATE_DIM, state_vector
from repro.rl.nn import sigmoid
from repro.rl.optim import Adam

Array = np.ndarray
Sample = Tuple[Array, Array]  # (state, target action in [0,1]^d)


def heuristic_target(
    point_ratio: float,
    scan_ratio: float,
    write_ratio: float,
    avg_scan_length: float,
) -> np.ndarray:
    """Expert rule mapping a workload mix to a sensible action.

    Encodes the paper's observed best choices: short-scan phases favour
    the block cache (low range ratio), update-heavy phases favour the
    range cache, long infrequent scans get partial admission, and
    point-heavy skewed traffic benefits from a mild frequency bar.
    """
    # Range/block split: updates push toward range cache (compaction
    # resilience); scans with short lengths push toward block cache.
    range_ratio = 0.3 + 0.6 * write_ratio + 0.3 * point_ratio - 0.4 * scan_ratio
    if scan_ratio > 0.3 and avg_scan_length <= 24:
        range_ratio -= 0.3  # short scans: block layout wins
    range_ratio = float(min(1.0, max(0.0, range_ratio)))

    # Frequency bar: meaningful only for point-heavy mixes.
    point_threshold = 0.1 if point_ratio > 0.6 else 0.0

    # Scan admission: full for short scans, partial beyond ~16.
    a_norm = min(1.0, max(0.1, 20.0 / SCAN_LEN_SCALE))
    b = 0.5 if avg_scan_length > 24 else 0.9
    return np.array([range_ratio, point_threshold, a_norm, b], dtype=np.float32)


def generate_supervised_dataset(
    num_samples: int = 512, seed: int = 0
) -> List[Sample]:
    """Synthesize representative workload states with expert targets.

    Samples random operation mixes (Dirichlet over point/scan/write),
    scan lengths, and plausible hit/occupancy values, then labels each
    with :func:`heuristic_target`.
    """
    if num_samples <= 0:
        raise ConfigError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    samples: List[Sample] = []
    for _ in range(num_samples):
        mix = rng.dirichlet([1.0, 1.0, 1.0])
        point_ratio, scan_ratio, write_ratio = (float(x) for x in mix)
        avg_scan_length = float(rng.choice([0.0, 8.0, 16.0, 32.0, 64.0]))
        if scan_ratio < 0.05:
            avg_scan_length = 0.0
        target = heuristic_target(point_ratio, scan_ratio, write_ratio, avg_scan_length)
        state = state_vector(
            point_ratio=point_ratio,
            scan_ratio=scan_ratio,
            write_ratio=write_ratio,
            avg_scan_length=avg_scan_length,
            range_hit_rate=float(rng.uniform(0.0, 1.0)),
            block_hit_rate=float(rng.uniform(0.0, 1.0)),
            h_smoothed=float(rng.uniform(0.0, 1.0)),
            range_occupancy=float(rng.uniform(0.0, 1.0)),
            block_occupancy=float(rng.uniform(0.0, 1.0)),
            compactions=int(rng.integers(0, 5)),
            current_range_ratio=float(rng.uniform(0.0, 1.0)),
            current_point_threshold_norm=float(rng.uniform(0.0, 0.5)),
            current_a_norm=float(rng.uniform(0.0, 1.0)),
            current_b=float(rng.uniform(0.0, 1.0)),
        )
        samples.append((state, target))
    return samples


def pretrain_unsupervised(
    agent: ActorCriticAgent,
    engine_factory,
    workloads,
    ops_per_workload: int,
) -> ActorCriticAgent:
    """Unsupervised pretraining: run the online RL loop offline.

    ``engine_factory(agent)`` must build a fresh AdCache engine wired to
    ``agent``; each entry of ``workloads`` is an iterable of operations
    (e.g. ``WorkloadGenerator(spec, seed).ops(n)`` or a replayed trace).
    The same agent accumulates learning across all workloads and is
    returned ready to ship (``agent.save``).
    """
    import itertools

    from repro.bench.harness import apply_operation

    for workload in workloads:
        engine = engine_factory(agent)
        for op in itertools.islice(iter(workload), ops_per_workload):
            apply_operation(engine, op)
    return agent


def pretrain_actor_supervised(
    agent: ActorCriticAgent,
    dataset: List[Sample],
    epochs: int = 50,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
) -> List[float]:
    """Regress the actor's mean onto expert targets; returns loss curve.

    Uses a dedicated Adam instance so pretraining does not disturb the
    online optimizer's moment estimates.
    """
    if not dataset:
        raise ConfigError("dataset must not be empty")
    states = np.stack([s for s, _ in dataset]).astype(np.float32)
    targets = np.stack([t for _, t in dataset]).astype(np.float32)
    if states.shape[1] != STATE_DIM:
        raise ConfigError(f"states must have {STATE_DIM} features")
    opt = Adam(agent.actor.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    losses: List[float] = []
    n = len(dataset)
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            x, y = states[idx], targets[idx]
            pre = agent.actor.forward(x, remember=True)
            mu = sigmoid(pre)
            err = mu - y
            epoch_loss += float((err**2).mean()) * len(idx)
            # d(MSE)/dpre through the sigmoid; mean over batch and dims.
            grad = (2.0 * err * mu * (1.0 - mu)) / (len(idx) * y.shape[1])
            grads = agent.actor.backward(grad.astype(np.float32))
            opt.step(grads)
        losses.append(epoch_loss / n)
    return losses
