"""State featurization: window statistics -> actor/critic input vector.

The paper's controller observes "access type ratios, cache hit
statistics, and scan lengths" plus occupancy, and — since the policy is
stateful control — the currently applied action parameters.  All
features are scaled into roughly [0, 1] so the 256-unit MLPs train
stably without input normalisation layers.
"""

from __future__ import annotations

import numpy as np

#: Scan lengths are normalised against this (longest workload scans: 64).
SCAN_LEN_SCALE = 128.0

#: Number of features produced by :func:`state_vector`.
STATE_DIM = 14


def state_vector(
    point_ratio: float,
    scan_ratio: float,
    write_ratio: float,
    avg_scan_length: float,
    range_hit_rate: float,
    block_hit_rate: float,
    h_smoothed: float,
    range_occupancy: float,
    block_occupancy: float,
    compactions: int,
    current_range_ratio: float,
    current_point_threshold_norm: float,
    current_a_norm: float,
    current_b: float,
) -> np.ndarray:
    """Assemble the controller's observation for one window."""
    return np.array(
        [
            min(1.0, max(0.0, point_ratio)),
            min(1.0, max(0.0, scan_ratio)),
            min(1.0, max(0.0, write_ratio)),
            min(1.0, avg_scan_length / SCAN_LEN_SCALE),
            min(1.0, max(0.0, range_hit_rate)),
            min(1.0, max(0.0, block_hit_rate)),
            min(1.0, max(-1.0, h_smoothed)),
            min(1.0, max(0.0, range_occupancy)),
            min(1.0, max(0.0, block_occupancy)),
            compactions / (1.0 + compactions),
            min(1.0, max(0.0, current_range_ratio)),
            min(1.0, max(0.0, current_point_threshold_norm)),
            min(1.0, max(0.0, current_a_norm)),
            min(1.0, max(0.0, current_b)),
        ],
        dtype=np.float32,
    )
