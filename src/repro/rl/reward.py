"""The paper's I/O-estimate reward model (Section 3.5).

Result caches have no natural "block hit rate", so the paper estimates
the block I/Os a window *would* have cost with no cache at all:

    IO_estimate = p * (1 + FPR)                       (point lookups)
                + s * l / B                           (scan data blocks)
                + s * (L + r0max / 2 - 1)             (scan seek phase)

and scores the window as ``h_estimate = 1 - IO_miss / IO_estimate``,
where ``IO_miss`` is the window's *measured* disk block reads.  The RL
reward is the relative change of an exponentially smoothed
``h_estimate``; the actor learning rate then adapts as
``lr <- lr * (1 - reward)`` so workload shifts (negative reward) raise
exploration while stability anneals it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class RewardOutput:
    """One window's reward computation, fully unpacked for logging.

    ``reward`` drives the actor-critic update; ``trend`` is always the
    paper's relative change of the smoothed hit rate and drives the
    adaptive learning rate (``lr *= 1 - trend``) regardless of mode.
    """

    io_estimate: float
    io_miss: int
    h_estimate: float
    h_smoothed: float
    reward: float
    trend: float = 0.0


def estimate_no_cache_io(
    points: int,
    scans: int,
    avg_scan_length: float,
    entries_per_block: int,
    num_levels: int,
    level0_max_runs: int,
    bloom_fpr: float = 0.0,
) -> float:
    """``IO_estimate`` for one window (see module docstring).

    ``num_levels`` is ``L``, ``level0_max_runs`` is ``r0^max`` (the
    write-stop trigger), ``entries_per_block`` is ``B``.
    """
    if entries_per_block <= 0:
        raise ConfigError("entries_per_block must be positive")
    point_io = points * (1.0 + bloom_fpr)
    scan_data_io = scans * (avg_scan_length / entries_per_block)
    scan_seek_io = scans * (num_levels + level0_max_runs / 2.0 - 1.0)
    return point_io + scan_data_io + scan_seek_io


class RewardCalculator:
    """Stateful smoothed-hit-rate reward (one instance per controller).

    Parameters
    ----------
    alpha:
        Exponential smoothing factor in [0, 1]; the paper's default 0.9
        weights history heavily, damping transient hit-rate noise.
    entries_per_block:
        ``B`` from the LSM configuration.
    bloom_fpr:
        Assumed bloom false-positive rate (paper: ~0 at 10 bits/key).
    """

    def __init__(
        self,
        alpha: float = 0.9,
        entries_per_block: int = 4,
        bloom_fpr: float = 0.0,
        mode: str = "level",
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ConfigError("alpha must be in [0, 1]")
        if mode not in ("delta", "level"):
            raise ConfigError("mode must be 'delta' or 'level'")
        self.alpha = alpha
        self.entries_per_block = entries_per_block
        self.bloom_fpr = bloom_fpr
        self.mode = mode
        self._h_smoothed: float = 0.0
        self._initialized = False

    @property
    def h_smoothed(self) -> float:
        """Current smoothed estimated hit rate."""
        return self._h_smoothed

    def compute(
        self,
        points: int,
        scans: int,
        avg_scan_length: float,
        io_miss: int,
        num_levels: int,
        level0_max_runs: int,
    ) -> RewardOutput:
        """Score one window and update the smoothed state."""
        io_estimate = estimate_no_cache_io(
            points,
            scans,
            avg_scan_length,
            self.entries_per_block,
            num_levels,
            level0_max_runs,
            self.bloom_fpr,
        )
        if io_estimate <= 0.0:
            # Pure-write window: no read traffic to score; hold state.
            reward = self._h_smoothed if self.mode == "level" else 0.0
            return RewardOutput(
                0.0, io_miss, self._h_smoothed, self._h_smoothed, reward, 0.0
            )
        h_estimate = 1.0 - io_miss / io_estimate
        if not self._initialized:
            self._h_smoothed = h_estimate
            self._initialized = True
            reward = h_estimate if self.mode == "level" else 0.0
            return RewardOutput(
                io_estimate, io_miss, h_estimate, self._h_smoothed, reward, 0.0
            )
        previous = self._h_smoothed
        self._h_smoothed = self.alpha * previous + (1.0 - self.alpha) * h_estimate
        if abs(self._h_smoothed) < 1e-9:
            trend = 0.0
        else:
            trend = (self._h_smoothed - previous) / abs(self._h_smoothed)
        if self.mode == "level":
            # Smoothed hit-rate level: the critic's state-value baseline
            # turns this into an advantage, and unlike the pure relative
            # change it keeps a gradient at plateaus (a suboptimal stable
            # configuration still scores below a better one).
            reward = self._h_smoothed
        else:
            reward = trend
        return RewardOutput(
            io_estimate, io_miss, h_estimate, self._h_smoothed, reward, trend
        )

    def reset(self) -> None:
        """Forget smoothing state (fresh deployment)."""
        self._h_smoothed = 0.0
        self._initialized = False


def adapt_learning_rate(
    lr: float, reward: float, lr_min: float = 1e-5, lr_max: float = 1e-2
) -> float:
    """The paper's adaptive actor rate: ``lr * (1 - reward)``, clamped.

    Negative rewards (hit-rate drops, i.e. workload shifts) raise the
    rate to explore; positive rewards anneal it toward convergence.
    A non-finite reward (degenerate window statistics) leaves the rate
    unchanged — a NaN would otherwise propagate through the
    multiplicative update and stick forever.
    """
    if not math.isfinite(reward):
        return float(min(lr_max, max(lr_min, lr)))
    return float(min(lr_max, max(lr_min, lr * (1.0 - reward))))
