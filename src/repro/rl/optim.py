"""Adam optimizer (Kingma & Ba) over lists of numpy arrays.

Maintains first/second moment estimates per parameter — the "optimizer
states" line of the paper's Table 2 memory accounting.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError

Array = np.ndarray


class Adam:
    """Adam with bias correction; updates parameters in place.

    Parameters
    ----------
    params:
        The live parameter arrays (shared with the model).
    lr:
        Learning rate; mutable via :attr:`lr` for the paper's adaptive
        actor rate.
    """

    def __init__(
        self,
        params: Sequence[Array],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ConfigError("lr must be positive")
        self._params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: List[Array] = [np.zeros_like(p, dtype=np.float32) for p in params]
        self._v: List[Array] = [np.zeros_like(p, dtype=np.float32) for p in params]
        self._t = 0

    def step(self, grads: Sequence[Array]) -> None:
        """Apply one update given gradients aligned with the parameters."""
        if len(grads) != len(self._params):
            raise ConfigError(
                f"expected {len(self._params)} gradients, got {len(grads)}"
            )
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self._params, grads, self._m, self._v):
            g = g.astype(np.float32).reshape(p.shape)
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bc1
            v_hat = v / bc2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    @property
    def state_bytes(self) -> int:
        """Bytes held in moment estimates (2 tensors per parameter)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))

    @property
    def steps_taken(self) -> int:
        """Number of optimizer steps applied so far."""
        return self._t
