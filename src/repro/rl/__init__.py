"""Reinforcement-learning substrate (numpy, no framework).

The paper's controller is a small actor-critic pair: fully connected
networks with two hidden layers of 256 units trained with Adam.  At
~140k parameters a framework is overkill, so :mod:`repro.rl.nn`
implements the MLP with manual backprop, :mod:`repro.rl.optim` the
Adam optimizer, and :mod:`repro.rl.actor_critic` the Gaussian-policy
agent.  :mod:`repro.rl.reward` reproduces the I/O-estimate reward with
exponential smoothing and the adaptive actor learning rate;
:mod:`repro.rl.pretrain` the supervised/unsupervised pretraining phase.
"""

from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.nn import MLP
from repro.rl.optim import Adam
from repro.rl.reward import RewardCalculator

__all__ = ["ActorCriticAgent", "MLP", "Adam", "RewardCalculator"]
