"""Minimal fully connected network with manual backprop (numpy).

Supports the two-hidden-layer, 256-unit, float32 architecture the paper
reports (Section 4.3) and exposes the parameter/byte counts needed to
reproduce its Table 2 memory-overhead numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError

Array = np.ndarray


def relu(x: Array) -> Array:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: Array) -> Array:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class MLP:
    """Feed-forward net: Linear -> ReLU (hidden layers) -> Linear.

    The output layer is linear; squashing (sigmoid for the actor's
    bounded actions) is applied by the caller so the same class serves
    actor and critic.

    Parameters
    ----------
    layer_sizes:
        e.g. ``[state_dim, 256, 256, action_dim]``.
    seed:
        He-initialisation seed.
    """

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0) -> None:
        if len(layer_sizes) < 2:
            raise ConfigError("need at least input and output sizes")
        if any(s <= 0 for s in layer_sizes):
            raise ConfigError("layer sizes must be positive")
        rng = np.random.default_rng(seed)
        self.layer_sizes = list(layer_sizes)
        self.weights: List[Array] = []
        self.biases: List[Array] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(
                (rng.standard_normal((fan_in, fan_out)) * scale).astype(np.float32)
            )
            self.biases.append(np.zeros(fan_out, dtype=np.float32))
        self._cache: Optional[List[Array]] = None

    # -- inference ------------------------------------------------------------

    def forward(self, x: Array, remember: bool = False) -> Array:
        """Compute outputs for ``x`` of shape ``(d,)`` or ``(n, d)``.

        With ``remember=True`` the per-layer activations are stored for
        a subsequent :meth:`backward`.
        """
        single = x.ndim == 1
        h = np.atleast_2d(np.asarray(x, dtype=np.float32))
        activations = [h]
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i < last:
                h = relu(h)
            activations.append(h)
        if remember:
            self._cache = activations
        return h[0] if single else h

    # -- training ------------------------------------------------------------

    def backward(self, grad_out: Array) -> List[Array]:
        """Backprop ``dLoss/dOutput`` through the remembered forward pass.

        Returns gradients interleaved ``[dW0, db0, dW1, db1, ...]``
        matching :meth:`parameters`.
        """
        if self._cache is None:
            raise ConfigError("backward() requires a forward(remember=True) first")
        activations = self._cache
        self._cache = None
        grad = np.atleast_2d(np.asarray(grad_out, dtype=np.float32))
        grads: List[Array] = [np.empty(0)] * (2 * len(self.weights))
        for i in range(len(self.weights) - 1, -1, -1):
            inputs = activations[i]
            grads[2 * i] = inputs.T @ grad
            grads[2 * i + 1] = grad.sum(axis=0)
            if i > 0:
                grad = grad @ self.weights[i].T
                grad = grad * (activations[i] > 0)  # ReLU mask
        return grads

    # -- parameter plumbing ------------------------------------------------------------

    def parameters(self) -> List[Array]:
        """Live parameter arrays interleaved ``[W0, b0, W1, b1, ...]``."""
        params: List[Array] = []
        for w, b in zip(self.weights, self.biases):
            params.append(w)
            params.append(b)
        return params

    @property
    def num_parameters(self) -> int:
        """Total scalar parameters."""
        return sum(p.size for p in self.parameters())

    @property
    def size_bytes(self) -> int:
        """Bytes of float32 weight storage (Table 2's 'model weights')."""
        return sum(p.nbytes for p in self.parameters())

    def state_dict(self) -> Dict[str, Array]:
        """Copy of all parameters, keyed for (de)serialisation."""
        out: Dict[str, Array] = {}
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            out[f"w{i}"] = w.copy()
            out[f"b{i}"] = b.copy()
        return out

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Load parameters saved by :meth:`state_dict` (shape-checked)."""
        for i in range(len(self.weights)):
            w, b = state[f"w{i}"], state[f"b{i}"]
            if w.shape != self.weights[i].shape or b.shape != self.biases[i].shape:
                raise ConfigError("state dict shape mismatch")
            # Copy in place: optimizers hold references to these arrays.
            self.weights[i][...] = w.astype(np.float32)
            self.biases[i][...] = b.astype(np.float32)
