"""Benchmark harness: strategy factory, run loop, cost model, reports.

* :mod:`repro.bench.simclock` — deterministic simulated-time cost model
  (disk reads dominate, as on the paper's NVMe testbed with direct I/O).
* :mod:`repro.bench.strategies` — builds each of the paper's evaluated
  cache schemes over a shared LSM tree.
* :mod:`repro.bench.harness` — drives workloads, measures estimated hit
  rate / SST reads / simulated QPS, and seeds databases.
* :mod:`repro.bench.report` — ascii tables and rankings (Table 4 style).
* :mod:`repro.bench.perf` — host-side wall-clock microbenchmarks
  (``repro bench``) and the perf-regression gate over ``BENCH_*.json``.
"""

from repro.bench.harness import RunResult, run_workload, seed_database
from repro.bench.perf import PerfReport, compare_reports, run_perf
from repro.bench.simclock import CostModel
from repro.bench.strategies import STRATEGIES, build_engine

__all__ = [
    "RunResult",
    "run_workload",
    "seed_database",
    "CostModel",
    "STRATEGIES",
    "build_engine",
    "PerfReport",
    "compare_reports",
    "run_perf",
]
