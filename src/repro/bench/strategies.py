"""Factory for the paper's evaluated cache-management strategies.

Section 5.1's lineup, each built over a caller-supplied LSM tree and a
single cache budget:

* ``block``          — RocksDB's default block cache (LRU, sharded).
* ``kv``             — KV (row) cache: point results only.
* ``range``          — Range Cache with LRU eviction.
* ``range-lecar``    — Range Cache with LeCaR eviction.
* ``range-cacheus``  — Range Cache with Cacheus eviction.
* ``adcache``        — the full system.

Plus the ablations of Figure 11(b) and the frozen pretrained variant of
Figure 10:

* ``adcache-admission``  — admission control only (fixed boundary).
* ``adcache-partition``  — adaptive partitioning only (no admission).
* ``adcache-pretrained`` — pretrained actor, no online learning.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cache.block_cache import BlockCache
from repro.cache.cacheus import CacheusPolicy
from repro.cache.kv_cache import KVCache
from repro.cache.lecar import LeCaRPolicy
from repro.cache.range_cache import RangeCache
from repro.core.adcache import ACTION_DIM, AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.core.engine import KVEngine
from repro.errors import ConfigError
from repro.lsm.tree import LSMTree
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM
from repro.rl.pretrain import generate_supervised_dataset, pretrain_actor_supervised


def _entry_charge(tree: LSMTree) -> int:
    return tree.options.key_size + tree.options.value_size


def _block_engine(
    tree: LSMTree,
    cache_bytes: int,
    seed: int,
    num_shards: int,
    policy_factory=None,
    prefetch: bool = False,
) -> KVEngine:
    cache = BlockCache(
        cache_bytes,
        block_size=tree.options.block_size,
        backing_fetch=tree.disk.read_block,
        num_shards=num_shards,
        policy_factory=policy_factory,
    )
    if prefetch:
        from repro.cache.prefetcher import CompactionPrefetcher

        CompactionPrefetcher.attach(tree, cache)
    return KVEngine(tree, block_cache=cache)


def _clock_factory():
    from repro.cache.clock import ClockPolicy

    return ClockPolicy()


def _arc_factory(cache_bytes: int, tree: LSMTree):
    from repro.cache.arc import ARCPolicy

    return ARCPolicy(capacity_hint=max(8, cache_bytes // tree.options.block_size))


def _make_tinylfu(seed: int):
    from repro.cache.tinylfu import TinyLFUPolicy

    return TinyLFUPolicy(seed=seed)


def _tinylfu_factory(seed: int):
    return lambda: _make_tinylfu(seed)


def _kv_engine(tree: LSMTree, cache_bytes: int, seed: int, num_shards: int) -> KVEngine:
    cache = KVCache(cache_bytes, entry_charge=_entry_charge(tree))
    return KVEngine(tree, kv_cache=cache)


def _ackey_engine(tree: LSMTree, cache_bytes: int, seed: int, num_shards: int) -> KVEngine:
    """AC-Key-flavoured hierarchy: KV + KP + block caches.

    AC-Key adapts the three budgets with ARC; this simplified baseline
    uses a fixed 25% KV / 5% KP / 70% block split (its reported steady
    state under mixed workloads) — enough to compare the *architecture*
    against the paper's two-cache design.
    """
    from repro.cache.kp_cache import KPCache

    kv_budget = cache_bytes // 4
    kp_budget = cache_bytes // 20
    block_budget = cache_bytes - kv_budget - kp_budget
    block = BlockCache(
        block_budget,
        block_size=tree.options.block_size,
        backing_fetch=tree.disk.read_block,
        num_shards=num_shards,
    )
    kv = KVCache(kv_budget, entry_charge=_entry_charge(tree))
    kp = KPCache(kp_budget, is_live=tree.disk.has)
    return KVEngine(tree, block_cache=block, kv_cache=kv, kp_cache=kp)


def _range_engine_with(policy_factory) -> Callable[..., KVEngine]:
    def build(tree: LSMTree, cache_bytes: int, seed: int, num_shards: int) -> KVEngine:
        charge = _entry_charge(tree)
        capacity_entries = max(16, cache_bytes // charge)
        policy = policy_factory(capacity_entries, seed)
        cache = RangeCache(cache_bytes, entry_charge=charge, policy=policy, seed=seed)
        return KVEngine(tree, range_cache=cache)

    return build


def _adcache_engine(
    tree: LSMTree,
    cache_bytes: int,
    seed: int,
    num_shards: int,
    *,
    enable_partitioning: bool = True,
    enable_admission: bool = True,
    pretrained_frozen: bool = False,
    config: Optional[AdCacheConfig] = None,
) -> AdCacheEngine:
    if config is None:
        config = AdCacheConfig(
            total_cache_bytes=cache_bytes,
            enable_partitioning=enable_partitioning,
            enable_admission=enable_admission,
            online_learning=not pretrained_frozen,
            num_shards=num_shards,
            seed=seed,
        )
    agent = None
    if pretrained_frozen:
        agent = ActorCriticAgent(
            STATE_DIM,
            ACTION_DIM,
            hidden_dim=config.hidden_dim,
            actor_lr=config.actor_lr,
            critic_lr=config.critic_lr,
            seed=seed,
        )
        dataset = generate_supervised_dataset(256, seed=seed)
        pretrain_actor_supervised(agent, dataset, epochs=30, lr=1e-3, seed=seed)
    return AdCacheEngine(tree, config=config, agent=agent)


STRATEGIES: Dict[str, Callable[..., KVEngine]] = {
    "block": _block_engine,
    "block-clock": lambda tree, cache_bytes, seed, num_shards: _block_engine(
        tree, cache_bytes, seed, num_shards, policy_factory=_clock_factory
    ),
    "block-arc": lambda tree, cache_bytes, seed, num_shards: _block_engine(
        tree,
        cache_bytes,
        seed,
        num_shards,
        policy_factory=lambda: _arc_factory(cache_bytes, tree),
    ),
    "block-prefetch": lambda tree, cache_bytes, seed, num_shards: _block_engine(
        tree, cache_bytes, seed, num_shards, prefetch=True
    ),
    "block-tinylfu": lambda tree, cache_bytes, seed, num_shards: _block_engine(
        tree, cache_bytes, seed, num_shards, policy_factory=_tinylfu_factory(seed)
    ),
    "range-tinylfu": _range_engine_with(
        lambda cap, seed: _make_tinylfu(seed)
    ),
    "kv": _kv_engine,
    "ackey": _ackey_engine,
    "range": _range_engine_with(lambda _cap, _seed: None),
    "range-lecar": _range_engine_with(
        lambda cap, seed: LeCaRPolicy(history_size=cap, seed=seed)
    ),
    "range-cacheus": _range_engine_with(
        lambda cap, seed: CacheusPolicy(history_size=cap, seed=seed)
    ),
    "adcache": _adcache_engine,
    "adcache-admission": lambda tree, cache_bytes, seed, num_shards: _adcache_engine(
        tree, cache_bytes, seed, num_shards, enable_partitioning=False
    ),
    "adcache-partition": lambda tree, cache_bytes, seed, num_shards: _adcache_engine(
        tree, cache_bytes, seed, num_shards, enable_admission=False
    ),
    "adcache-pretrained": lambda tree, cache_bytes, seed, num_shards: _adcache_engine(
        tree, cache_bytes, seed, num_shards, pretrained_frozen=True
    ),
}

#: Display names matching the paper's legends.
DISPLAY_NAMES: Dict[str, str] = {
    "block": "RocksDB (Block Cache)",
    "block-clock": "Block Cache (CLOCK)",
    "block-arc": "Block Cache (ARC)",
    "block-prefetch": "Block Cache + Leaper-style prefetch",
    "block-tinylfu": "Block Cache (TinyLFU-gated LRU)",
    "range-tinylfu": "Range Cache + TinyLFU",
    "kv": "KV Cache",
    "ackey": "AC-Key-style (KV + KP + block)",
    "range": "Range Cache",
    "range-lecar": "Range Cache + LeCaR",
    "range-cacheus": "Range Cache + Cacheus",
    "adcache": "AdCache",
    "adcache-admission": "AdCache (admission only)",
    "adcache-partition": "AdCache (partitioning only)",
    "adcache-pretrained": "AdCache (pretrained, frozen)",
}


def build_engine(
    strategy: str,
    tree: LSMTree,
    cache_bytes: int,
    seed: int = 0,
    num_shards: int = 1,
) -> KVEngine:
    """Instantiate one of the evaluated strategies over ``tree``."""
    try:
        factory = STRATEGIES[strategy]
    except KeyError:
        raise ConfigError(
            f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    return factory(tree, cache_bytes, seed, num_shards)
