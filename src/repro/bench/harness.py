"""Workload execution harness: seed, run, measure.

The measurements mirror the paper's metrics:

* **estimated hit rate** — ``1 - IO_miss / IO_estimate`` over the run,
  the same no-cache-baseline normalisation the reward model uses (it is
  the only hit-rate definition applicable to result caches);
* **SST reads** — metered data-block reads reaching the simulated disk;
* **QPS** — operations over simulated time from the cost model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.bench.simclock import ClockReading, CostModel, elapsed_us
from repro.core.engine import KVEngine
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.rl.reward import estimate_no_cache_io
from repro.workloads.generator import Operation, WorkloadGenerator, WorkloadSpec
from repro.workloads.keys import key_of, value_of


@dataclass
class RunResult:
    """Metrics for one (strategy, workload, configuration) run."""

    name: str
    ops: int
    hit_rate: float
    sst_reads: int
    elapsed_us: float
    qps: float
    io_estimate: float
    io_miss: int
    range_point_hits: int = 0
    range_scan_hits: int = 0
    block_hit_rate: float = 0.0
    compactions: int = 0
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.name}: hit={self.hit_rate:.3f} sst_reads={self.sst_reads} "
            f"qps={self.qps:,.0f}"
        )


def seed_database(
    num_keys: int,
    options: Optional[LSMOptions] = None,
    seed: int = 7,
) -> LSMTree:
    """Create a tree pre-populated with ``num_keys`` sequential keys.

    Uses bulk loading to lay out a realistic multi-level LSM without
    replaying every insert.
    """
    tree = LSMTree(options or LSMOptions())
    tree.bulk_load(((key_of(i), value_of(i)) for i in range(num_keys)), seed=seed)
    return tree


def apply_operation(engine: KVEngine, op: Operation) -> None:
    """Execute one workload operation against an engine."""
    if op.kind == "get":
        engine.get(op.key)
    elif op.kind == "scan":
        engine.scan(op.key, op.length)
    elif op.kind == "put":
        engine.put(op.key, op.value or "")
    elif op.kind == "delete":
        engine.delete(op.key)
    else:  # pragma: no cover - generator never emits others
        raise ValueError(f"unknown operation kind {op.kind!r}")


def apply_batch(engine: KVEngine, ops: List[Operation]) -> None:  # hot-path
    """Execute one workload batch through the engine's ``multi_*`` API.

    Batches carry client-side batch semantics (the MultiGet/WriteBatch
    model): every read observes the pre-batch state, then the batch's
    writes apply in arrival order.  That is a valid serialization of
    the batch — reads first, writes after — so any result is one a
    scalar replay of some equivalent order would produce, and it lets
    every get in the batch share a single :meth:`KVEngine.multi_get`
    (vectorized bloom/sketch probes, coalesced block fetches) no matter
    how the generator interleaved kinds.
    """
    gets = [op.key for op in ops if op.kind == "get"]
    if gets:
        engine.multi_get(gets)
    scans = [(op.key, op.length) for op in ops if op.kind == "scan"]
    if scans:
        engine.multi_scan(scans)
    writes = [op for op in ops if op.kind in ("put", "delete")]
    i, n = 0, len(writes)
    while i < n:
        if writes[i].kind == "delete":
            engine.delete(writes[i].key)
            i += 1
            continue
        j = i + 1
        while j < n and writes[j].kind == "put":
            j += 1
        engine.multi_put([(op.key, op.value or "") for op in writes[i:j]])
        i = j


def estimated_hit_rate(
    engine: KVEngine,
    baseline: Optional[ClockReading] = None,
) -> Tuple[float, float, int]:
    """Whole-run ``(h_estimate, io_estimate, io_miss)`` for an engine.

    ``baseline`` restricts the computation to activity after a snapshot
    (used to exclude warmup).
    """
    totals = engine.collector.totals()
    io_miss = engine.tree.disk.block_reads_total
    points, scans = totals.points, totals.scans
    scan_len_sum = totals.scan_length_sum
    if baseline is not None:
        io_miss -= baseline.disk_reads
        points -= baseline.points
        scans -= baseline.scans
        scan_len_sum -= baseline.scan_entries
    avg_scan = scan_len_sum / scans if scans else 0.0
    io_estimate = estimate_no_cache_io(
        points,
        scans,
        avg_scan,
        engine.tree.options.entries_per_block,
        engine.tree.num_levels,
        engine.tree.options.level0_stop_writes_trigger,
    )
    if io_estimate <= 0:
        return 0.0, 0.0, io_miss
    return 1.0 - io_miss / io_estimate, io_estimate, io_miss


def run_workload(
    engine: KVEngine,
    workload: Iterable[Operation],
    num_ops: Optional[int] = None,
    name: str = "run",
    cost_model: Optional[CostModel] = None,
    warmup_ops: int = 0,
    batch_size: int = 1,
) -> RunResult:
    """Drive ``workload`` through ``engine`` and collect metrics.

    ``workload`` may be a :class:`WorkloadGenerator` (give ``num_ops``)
    or any iterable of operations.  ``warmup_ops`` are executed first
    and excluded from every metric.  ``batch_size`` > 1 feeds the
    measured operations through :func:`apply_batch` in chunks of that
    size (warmup stays scalar); 1 is the byte-identical scalar loop.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if isinstance(workload, (WorkloadGenerator,)):
        if num_ops is None:
            raise ValueError("num_ops is required with a WorkloadGenerator")
        ops_iter = workload.ops(num_ops + warmup_ops)
    else:
        ops_iter = iter(workload)

    for op in itertools.islice(ops_iter, warmup_ops):
        apply_operation(engine, op)
    before = ClockReading.capture(engine)
    totals_before = engine.collector.totals()

    measured = 0
    if batch_size == 1:
        for op in ops_iter:
            apply_operation(engine, op)
            measured += 1
            if num_ops is not None and measured >= num_ops:
                break
    else:
        while num_ops is None or measured < num_ops:
            limit = (
                batch_size
                if num_ops is None
                else min(batch_size, num_ops - measured)
            )
            batch = list(itertools.islice(ops_iter, limit))
            if not batch:
                break
            apply_batch(engine, batch)
            measured += len(batch)

    after = ClockReading.capture(engine)
    totals_after = engine.collector.totals()
    hit_rate, io_estimate, io_miss = estimated_hit_rate(engine, baseline=before)
    elapsed = elapsed_us(before, after, cost_model)
    qps = measured / (elapsed / 1e6) if elapsed > 0 else 0.0
    block_lookups = after.block_lookups - before.block_lookups
    block_hits = block_lookups - (after.disk_reads - before.disk_reads)
    return RunResult(
        name=name,
        ops=measured,
        hit_rate=hit_rate,
        sst_reads=after.disk_reads - before.disk_reads,
        elapsed_us=elapsed,
        qps=qps,
        io_estimate=io_estimate,
        io_miss=io_miss,
        range_point_hits=(
            totals_after.range_point_hits - totals_before.range_point_hits
        ),
        range_scan_hits=(
            totals_after.range_scan_hits - totals_before.range_scan_hits
        ),
        block_hit_rate=(block_hits / block_lookups if block_lookups > 0 else 0.0),
        compactions=totals_after.compactions - totals_before.compactions,
    )


def run_phases(
    engine: KVEngine,
    phases: List[Tuple[str, WorkloadSpec]],
    ops_per_phase: int,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
) -> List[RunResult]:
    """Run a phase sequence (dynamic workload), one result per phase.

    Engine and cache state carry across phases — that continuity is the
    entire point of the dynamic evaluation.
    """
    results: List[RunResult] = []
    for i, (name, spec) in enumerate(phases):
        generator = WorkloadGenerator(spec, seed=seed + i * 1000 + 1)
        results.append(
            run_workload(
                engine,
                generator,
                num_ops=ops_per_phase,
                name=name,
                cost_model=cost_model,
            )
        )
    return results
