"""Report formatting: ascii tables, series, rankings, and latency stats.

Besides the table/series renderers, this module owns the repo's one
latency toolkit: :func:`percentile` (exact, nearest-rank, for sample
lists) and :class:`LatencyHistogram` (log-bucketed accumulator for the
serving simulator, where storing every sample would dominate memory).
Both are stdlib-only and fully deterministic, so latency figures can be
asserted byte-for-byte across runs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.harness import RunResult
from repro.errors import ConfigError


def percentile(samples: Sequence[float], p: float) -> float:
    """Exact nearest-rank percentile of ``samples`` (0 when empty).

    ``p`` is a fraction in [0, 1]; ties and ordering are resolved by
    sorting, so the result is a pure function of the multiset.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigError("percentile fraction must be in [0, 1]")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(p * len(ordered)))
    return ordered[rank - 1]


class LatencyHistogram:
    """Deterministic log-bucketed latency accumulator (stdlib only).

    Samples are folded into geometric buckets (``growth`` ratio between
    consecutive upper bounds), so percentile queries cost O(buckets)
    and the memory footprint is bounded regardless of request count.
    A reported percentile is the *upper bound* of the bucket containing
    that rank — a deterministic over-estimate within ``growth`` of the
    exact value, the standard HdrHistogram-style trade-off.
    """

    __slots__ = ("_growth", "_min_us", "_log_growth", "_buckets", "count", "total_us", "max_us")

    def __init__(self, growth: float = 1.15, min_us: float = 1.0) -> None:
        if growth <= 1.0:
            raise ConfigError("histogram growth factor must be > 1")
        if min_us <= 0:
            raise ConfigError("histogram min_us must be positive")
        self._growth = growth
        self._min_us = min_us
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0

    def _bucket_of(self, us: float) -> int:
        if us <= self._min_us:
            return 0
        return max(0, math.ceil(math.log(us / self._min_us) / self._log_growth))

    def _upper_bound(self, bucket: int) -> float:
        return self._min_us * self._growth**bucket

    def record(self, us: float) -> None:
        """Fold one latency sample (microseconds) into the histogram."""
        if us < 0 or not math.isfinite(us):
            raise ConfigError(f"latency sample must be finite and >= 0, got {us!r}")
        bucket = self._bucket_of(us)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total_us += us
        if us > self.max_us:
            self.max_us = us

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if (other._growth, other._min_us) != (self._growth, self._min_us):
            raise ConfigError("cannot merge histograms with different geometry")
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n
        self.count += other.count
        self.total_us += other.total_us
        if other.max_us > self.max_us:
            self.max_us = other.max_us

    def quantile(self, p: float) -> float:
        """Latency (us) at fraction ``p`` of recorded samples (0 if empty)."""
        if not 0.0 <= p <= 1.0:
            raise ConfigError("quantile fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p * self.count))
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                return self._upper_bound(bucket)
        return self._upper_bound(max(self._buckets))  # pragma: no cover - defensive

    @property
    def p50(self) -> float:
        """Median latency bound (us)."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile latency bound (us)."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile latency bound (us)."""
        return self.quantile(0.99)

    @property
    def mean_us(self) -> float:
        """Exact mean of recorded samples (us)."""
        return self.total_us / self.count if self.count else 0.0

    def fingerprint(self) -> Tuple[Tuple[int, int], ...]:
        """Canonical bucket contents, for byte-identity assertions."""
        return tuple(sorted(self._buckets.items()))

    def summary_row(self) -> List[str]:
        """``[count, mean, p50, p95, p99, max]`` formatted for tables."""
        return [
            f"{self.count:,}",
            f"{self.mean_us:,.1f}",
            f"{self.p50:,.1f}",
            f"{self.p95:,.1f}",
            f"{self.p99:,.1f}",
            f"{self.max_us:,.1f}",
        ]


def latency_table(
    histograms: Dict[str, LatencyHistogram], label: str = "tenant"
) -> str:
    """One row per histogram: count/mean/p50/p95/p99/max (us)."""
    headers = [label, "requests", "mean us", "p50 us", "p95 us", "p99 us", "max us"]
    rows = [[name] + h.summary_row() for name, h in histograms.items()]
    return format_table(headers, rows)


def merged_histogram(histograms: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Merge histograms into a fresh one (geometry taken from the first)."""
    merged: Optional[LatencyHistogram] = None
    for h in histograms:
        if merged is None:
            merged = LatencyHistogram(growth=h._growth, min_us=h._min_us)
        merged.merge(h)
    return merged if merged is not None else LatencyHistogram()


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ascii table with a header rule."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def format_series(
    title: str, x_label: str, xs: Sequence, series: Dict[str, Sequence[float]],
    fmt: str = "{:.3f}",
) -> str:
    """Figure-style output: one row per x value, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [fmt.format(series[name][i]) for name in series])
    return f"== {title} ==\n" + format_table(headers, rows)


def perf_table(report: Dict[str, object]) -> str:
    """Render a ``repro bench`` report dict (the perf JSON schema).

    Accepts the exact dict :meth:`repro.bench.perf.PerfReport.to_dict`
    emits (and ``BENCH_*.json`` stores), so the CLI, CI logs, and saved
    artifacts all read the same way.
    """
    phases = report.get("phases")
    if not isinstance(phases, list):
        raise ConfigError("perf report has no 'phases' list")
    headers = [
        "phase", "ops", "wall s", "ops/sec", "normalized",
        "sim QPS", "hit rate", "SST reads",
    ]
    rows = []
    for p in phases:
        rows.append([
            str(p["name"]),
            f"{int(p['ops']):,}",
            f"{float(p['wall_s']):.3f}",
            f"{float(p['ops_per_sec']):,.0f}",
            f"{float(p['normalized_score']):.4f}",
            f"{float(p['sim_qps']):,.0f}",
            f"{float(p['hit_rate']):.3f}",
            f"{int(p['sst_reads']):,}",
        ])
    lines = [format_table(headers, rows)]
    lines.append(
        f"calibration: {float(report.get('calibration', 0.0)):,.0f} loop-ops/s"
        f"  (normalized = ops/sec / calibration)"
    )
    return "\n".join(lines)


def rank(values: Dict[str, float], higher_is_better: bool = True) -> Dict[str, int]:
    """1-based ranks (1 = best), ties broken by name for determinism."""
    ordered = sorted(
        values.items(), key=lambda kv: (-kv[1] if higher_is_better else kv[1], kv[0])
    )
    return {name: i + 1 for i, (name, _) in enumerate(ordered)}


def ranking_table(
    phase_results: Dict[str, Dict[str, RunResult]]
) -> Tuple[str, Dict[str, Tuple[float, float]]]:
    """Reproduce Table 4: per-phase throughput/hit-rate ranks + averages.

    ``phase_results`` maps phase name -> strategy -> RunResult.
    Returns the formatted table and the per-strategy average
    ``(throughput_rank, hit_rate_rank)``.
    """
    strategies: List[str] = []
    for per_strategy in phase_results.values():
        for name in per_strategy:
            if name not in strategies:
                strategies.append(name)

    rank_sums = {name: [0.0, 0.0] for name in strategies}
    rows = []
    phases = list(phase_results)
    for phase in phases:
        per_strategy = phase_results[phase]
        qps_ranks = rank({s: r.qps for s, r in per_strategy.items()})
        hit_ranks = rank({s: r.hit_rate for s, r in per_strategy.items()})
        row = [phase]
        for name in strategies:
            row.append(f"{qps_ranks[name]}/{hit_ranks[name]}")
            rank_sums[name][0] += qps_ranks[name]
            rank_sums[name][1] += hit_ranks[name]
        rows.append(row)
    averages = {
        name: (sums[0] / len(phases), sums[1] / len(phases))
        for name, sums in rank_sums.items()
    }
    rows.append(
        ["Average"]
        + [f"{averages[name][0]:.1f}/{averages[name][1]:.1f}" for name in strategies]
    )
    table = format_table(["Workload"] + strategies, rows)
    return table, averages
