"""Report formatting: ascii tables, series, and Table 4-style rankings."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import RunResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ascii table with a header rule."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def format_series(
    title: str, x_label: str, xs: Sequence, series: Dict[str, Sequence[float]],
    fmt: str = "{:.3f}",
) -> str:
    """Figure-style output: one row per x value, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [fmt.format(series[name][i]) for name in series])
    return f"== {title} ==\n" + format_table(headers, rows)


def rank(values: Dict[str, float], higher_is_better: bool = True) -> Dict[str, int]:
    """1-based ranks (1 = best), ties broken by name for determinism."""
    ordered = sorted(
        values.items(), key=lambda kv: (-kv[1] if higher_is_better else kv[1], kv[0])
    )
    return {name: i + 1 for i, (name, _) in enumerate(ordered)}


def ranking_table(
    phase_results: Dict[str, Dict[str, RunResult]]
) -> Tuple[str, Dict[str, Tuple[float, float]]]:
    """Reproduce Table 4: per-phase throughput/hit-rate ranks + averages.

    ``phase_results`` maps phase name -> strategy -> RunResult.
    Returns the formatted table and the per-strategy average
    ``(throughput_rank, hit_rate_rank)``.
    """
    strategies: List[str] = []
    for per_strategy in phase_results.values():
        for name in per_strategy:
            if name not in strategies:
                strategies.append(name)

    rank_sums = {name: [0.0, 0.0] for name in strategies}
    rows = []
    phases = list(phase_results)
    for phase in phases:
        per_strategy = phase_results[phase]
        qps_ranks = rank({s: r.qps for s, r in per_strategy.items()})
        hit_ranks = rank({s: r.hit_rate for s, r in per_strategy.items()})
        row = [phase]
        for name in strategies:
            row.append(f"{qps_ranks[name]}/{hit_ranks[name]}")
            rank_sums[name][0] += qps_ranks[name]
            rank_sums[name][1] += hit_ranks[name]
        rows.append(row)
    averages = {
        name: (sums[0] / len(phases), sums[1] / len(phases))
        for name, sums in rank_sums.items()
    }
    rows.append(
        ["Average"]
        + [f"{averages[name][0]:.1f}/{averages[name][1]:.1f}" for name in strategies]
    )
    table = format_table(["Workload"] + strategies, rows)
    return table, averages
