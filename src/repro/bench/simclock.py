"""Deterministic simulated-time cost model.

The paper measures wall-clock QPS on an NVMe testbed with direct I/O,
where the storage engine is I/O-bound: a 4 KB block read costs ~100 us
while memory-cache probes cost microseconds or less.  We reproduce the
*relative* economics with a fixed cost table over the engine's observed
event counts, which makes throughput deterministic and
machine-independent while preserving who-wins-and-by-how-much.

Charged events (per run delta):

* disk block reads (the dominant term),
* memory probes of each cache layer and the MemTable,
* skip-list insertions into the range cache (the phase-D overhead the
  paper calls out),
* block-cache insertions, WAL+MemTable write work, compaction entry
  moves, and write-slowdown penalties,
* fault-path work: failed read attempts, exponential retry backoff
  (pre-accumulated by the tree in microseconds), and corruption
  repairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.engine import KVEngine


@dataclass
class CostModel:
    """Simulated cost, in microseconds, of each metered event."""

    disk_block_read_us: float = 100.0
    memtable_probe_us: float = 0.8
    block_cache_probe_us: float = 0.4
    range_cache_probe_us: float = 1.0
    range_cache_insert_us: float = 2.5  # skip-list insert
    block_cache_insert_us: float = 0.6
    range_cache_scan_entry_us: float = 0.3  # per entry returned from cache
    write_op_us: float = 2.0  # WAL append + MemTable insert
    compaction_entry_us: float = 0.4  # background merge work per entry
    write_slowdown_penalty_us: float = 50.0
    seek_per_run_us: float = 1.5  # iterator setup per sorted run
    failed_read_us: float = 100.0  # a faulted read attempt still costs the device
    corruption_repair_us: float = 500.0  # replica fetch + checksum rebuild
    # Shared second tier (serving fleets only): a probe is a shared-map
    # lookup with cross-shard coordination; a hit additionally pays the
    # transfer — slower than any L1 hit, ~4x cheaper than the disk.
    l2_probe_us: float = 2.0
    l2_hit_us: float = 25.0


@dataclass
class ClockReading:
    """Snapshot of every metered counter an engine exposes."""

    disk_reads: int = 0
    points: int = 0
    scans: int = 0
    scan_entries: int = 0
    writes: int = 0
    deletes: int = 0
    range_lookups: int = 0
    range_insertions: int = 0
    block_lookups: int = 0
    block_insertions: int = 0
    compacted_entries: int = 0
    write_slowdowns: int = 0
    runs_seeked: int = 0
    failed_reads: int = 0
    corruption_repairs: int = 0
    retry_latency_us: float = 0.0
    l2_probes: int = 0
    l2_hits: int = 0

    @classmethod
    def capture(cls, engine: KVEngine) -> "ClockReading":  # hot-path
        """Read all counters from an engine (cheap; no locking needed).

        The serving simulator captures once per request, so the five
        workload counters are read straight off the collector's
        lifetime + current windows instead of materialising a full
        ``totals()`` snapshot.
        """
        tree = engine.tree
        collector = engine.collector
        life = collector.lifetime
        cur = collector.current
        points = life.points + cur.points
        scans = life.scans + cur.scans
        scan_entries = life.scan_length_sum + cur.scan_length_sum
        writes = life.writes + cur.writes
        deletes = life.deletes + cur.deletes
        if engine.range_cache is not None:
            rstats = engine.range_cache.stats
            range_lookups = rstats.lookups
            range_insertions = rstats.insertions
        else:
            range_lookups = range_insertions = 0
        if engine.block_cache is not None:
            bstats = engine.block_cache.stats
            block_lookups = bstats.lookups
            block_insertions = bstats.insertions
        else:
            block_lookups = block_insertions = 0
        # Seek work: one iterator per sorted run per scan (current shape).
        runs_seeked = scans * max(1, tree.num_sorted_runs)
        tier2 = engine.tier2_client
        if tier2 is not None:
            l2_probes, l2_hits = tier2.probes, tier2.hits
        else:
            l2_probes = l2_hits = 0
        return cls(
            disk_reads=tree.disk.block_reads_total,
            points=points,
            scans=scans,
            scan_entries=scan_entries,
            writes=writes,
            deletes=deletes,
            range_lookups=range_lookups,
            range_insertions=range_insertions,
            block_lookups=block_lookups,
            block_insertions=block_insertions,
            compacted_entries=tree.compactor.entries_compacted_total,
            write_slowdowns=tree.write_slowdowns_total,
            runs_seeked=runs_seeked,
            failed_reads=tree.disk.failed_reads_total,
            corruption_repairs=tree.disk.corruption_repairs_total,
            retry_latency_us=tree.retry_latency_us_total,
            l2_probes=l2_probes,
            l2_hits=l2_hits,
        )


class SimClock:
    """Stateful delta charger over one engine's metered counters.

    The bench harness charges a whole run at once; the serving
    simulator needs the *incremental* cost of each request as it is
    serviced.  A ``SimClock`` snapshots the engine's counters at
    construction and on every :meth:`charge`, returning the simulated
    microseconds accrued since the previous call — so per-request
    service times sum exactly to the whole-run ``elapsed_us``.
    """

    __slots__ = ("_engine", "_costs", "_last", "charged_us_total")

    def __init__(self, engine: KVEngine, costs: Optional[CostModel] = None) -> None:
        self._engine = engine
        self._costs = costs or CostModel()
        self._last = ClockReading.capture(engine)
        self.charged_us_total = 0.0

    def charge(self) -> float:
        """Simulated us of engine work since the previous charge."""
        now = ClockReading.capture(self._engine)
        delta = elapsed_us(self._last, now, self._costs)
        self._last = now
        self.charged_us_total += delta
        return delta

    def rebase(self) -> None:
        """Discard unaccounted activity (e.g. out-of-band warmup)."""
        self._last = ClockReading.capture(self._engine)


def elapsed_us(
    before: ClockReading, after: ClockReading, costs: Optional[CostModel] = None
) -> float:  # hot-path
    """Simulated microseconds between two readings.

    Charged once per simulated request; straight-line attribute reads
    replaced a getattr-by-name helper that dominated the old profile.
    """
    c = costs or CostModel()
    reads = (after.points - before.points) + (after.scans - before.scans)
    return (
        (after.disk_reads - before.disk_reads) * c.disk_block_read_us
        + reads * c.memtable_probe_us
        + (after.range_lookups - before.range_lookups) * c.range_cache_probe_us
        + (after.range_insertions - before.range_insertions) * c.range_cache_insert_us
        + (after.scan_entries - before.scan_entries) * c.range_cache_scan_entry_us
        + (after.block_lookups - before.block_lookups) * c.block_cache_probe_us
        + (after.block_insertions - before.block_insertions) * c.block_cache_insert_us
        + (after.writes - before.writes + after.deletes - before.deletes) * c.write_op_us
        + (after.compacted_entries - before.compacted_entries) * c.compaction_entry_us
        + (after.write_slowdowns - before.write_slowdowns) * c.write_slowdown_penalty_us
        + (after.runs_seeked - before.runs_seeked) * c.seek_per_run_us
        + (after.failed_reads - before.failed_reads) * c.failed_read_us
        + (after.corruption_repairs - before.corruption_repairs) * c.corruption_repair_us
        + (after.retry_latency_us - before.retry_latency_us)
        # L2 terms stay at the tail: with no tier attached both deltas
        # are zero and adding 0.0 last keeps legacy sums bit-identical.
        + (after.l2_probes - before.l2_probes) * c.l2_probe_us
        + (after.l2_hits - before.l2_hits) * c.l2_hit_us
    )
