"""Host-side perf microbenchmarks: the ``repro bench`` subsystem.

Everything else in :mod:`repro.bench` measures *simulated* cost (the
deterministic cost model); this module measures the one thing the sim
clock cannot see — how fast the simulator itself executes on the host.
Experiment turnaround is bounded by the Python op path (engine ->
AdCache -> block/range cache -> LSM tree -> simulated disk), so this
harness times standard point/scan/mixed phases, normalizes throughput
by a host-speed calibration score, and emits a machine-readable report
(``BENCH_*.json``) that CI gates future PRs against.

Two kinds of numbers per phase:

* **wall-clock** — ``wall_s`` / ``ops_per_sec`` / ``normalized_score``
  (ops/sec divided by the calibration score, so slow and fast hosts are
  comparable; the CI regression gate compares normalized scores);
* **simulated** — ``sim_qps`` / ``hit_rate`` / ``sst_reads`` plus a
  sha256 ``fingerprint`` over the deterministic counters, which must be
  byte-identical across runs on one host (the determinism guard for
  hot-path optimizations).

The report dict layout is the schema contract shared with
:func:`repro.bench.report.perf_table`, which renders it for the CLI.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import pstats
import time  # lint: disable=SIM001  # wall-clock timing is this module's subject
# lint: disable-file=DET001  # run_* entry points here time the host on purpose
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.harness import RunResult, run_workload, seed_database
from repro.bench.strategies import build_engine
from repro.errors import ConfigError, InvariantError
from repro.lsm.options import LSMOptions
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
    batched_mixed_workload,
    point_lookup_workload,
    short_scan_workload,
)

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Fractional normalized-throughput drop that fails the CI gate.
DEFAULT_FAIL_THRESHOLD = 0.25

#: Phase name -> workload-spec factory, in report order.
PHASE_SPECS: Dict[str, Callable[[int], WorkloadSpec]] = {
    "point": point_lookup_workload,
    "scan": short_scan_workload,
    "mixed": balanced_workload,
}

#: The batched-execution family's phase (run once per ``--batch-size``,
#: plus a scalar reference run, named ``mixedb`` / ``mixedb@b{N}``).
BATCHED_PHASE = "mixedb"

#: Every phase :func:`run_phase` accepts, including the batched family.
ALL_PHASE_SPECS: Dict[str, Callable[[int], WorkloadSpec]] = {
    **PHASE_SPECS,
    BATCHED_PHASE: batched_mixed_workload,
}

#: Fixed configuration for the batched family: a keyspace much larger
#: than the cache, so most gets miss every cache and reach the
#: multi-level SSTable walk — the regime the batched path's vectorized
#: digests and coalesced fetches are built for.  Presets don't rescale
#: it: the family's speedup claim is tied to this shape.
BATCHED_NUM_KEYS = 16_000
BATCHED_CACHE_BYTES = 64 * 1024
BATCHED_OPS = 6_000

#: Iterations of the fixed calibration loop (host-speed probe).
_CALIBRATION_OPS = 200_000


def calibration_score(repeats: int = 3) -> float:
    """Ops/sec of a fixed pure-Python dict/string loop (best of N).

    The loop exercises the same primitives the simulator leans on
    (string formatting, dict churn, integer arithmetic), so the ratio
    ``phase ops_per_sec / calibration_score`` is a machine-independent
    measure of simulator efficiency: CI runners and developer laptops
    produce comparable normalized scores even though their absolute
    throughputs differ severalfold.
    """
    best = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        table: Dict[str, int] = {}
        acc = 0
        for i in range(_CALIBRATION_OPS):
            key = "key-%07d" % (i & 8191)
            table[key] = i
            acc += table[key] ^ (i >> 3)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, _CALIBRATION_OPS / elapsed)
    return best


@dataclass
class PhaseResult:
    """Wall-clock and simulated outcome of one benchmark phase."""

    name: str
    ops: int
    wall_s: float
    ops_per_sec: float
    normalized_score: float
    sim_qps: float
    hit_rate: float
    sst_reads: int
    fingerprint: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the shared schema's phase shape)."""
        return {
            "name": self.name,
            "ops": self.ops,
            "wall_s": round(self.wall_s, 6),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "normalized_score": round(self.normalized_score, 6),
            "sim_qps": round(self.sim_qps, 1),
            "hit_rate": round(self.hit_rate, 6),
            "sst_reads": self.sst_reads,
            "fingerprint": self.fingerprint,
        }


@dataclass
class PerfReport:
    """One full ``repro bench`` run: configuration + per-phase results."""

    schema: int = SCHEMA_VERSION
    label: str = "bench"
    quick: bool = False
    seed: int = 0
    num_keys: int = 0
    ops_per_phase: int = 0
    strategy: str = "adcache"
    cache_bytes: int = 0
    calibration: float = 0.0
    phases: List[PhaseResult] = field(default_factory=list)

    def phase(self, name: str) -> Optional[PhaseResult]:
        """The named phase result, or None."""
        for p in self.phases:
            if p.name == name:
                return p
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the shared schema's report shape)."""
        return {
            "schema": self.schema,
            "label": self.label,
            "quick": self.quick,
            "seed": self.seed,
            "num_keys": self.num_keys,
            "ops_per_phase": self.ops_per_phase,
            "strategy": self.strategy,
            "cache_bytes": self.cache_bytes,
            "calibration": round(self.calibration, 1),
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerfReport":
        """Parse a report dict (raises :class:`ConfigError` on bad shape)."""
        try:
            schema = int(data["schema"])  # type: ignore[arg-type]
            if schema != SCHEMA_VERSION:
                raise ConfigError(
                    f"unsupported bench schema {schema} "
                    f"(this build reads {SCHEMA_VERSION})"
                )
            phases = [
                PhaseResult(
                    name=str(p["name"]),
                    ops=int(p["ops"]),
                    wall_s=float(p["wall_s"]),
                    ops_per_sec=float(p["ops_per_sec"]),
                    normalized_score=float(p["normalized_score"]),
                    sim_qps=float(p["sim_qps"]),
                    hit_rate=float(p["hit_rate"]),
                    sst_reads=int(p["sst_reads"]),
                    fingerprint=str(p["fingerprint"]),
                )
                for p in data["phases"]  # type: ignore[union-attr]
            ]
            return cls(
                schema=schema,
                label=str(data.get("label", "bench")),
                quick=bool(data.get("quick", False)),
                seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
                num_keys=int(data.get("num_keys", 0)),  # type: ignore[arg-type]
                ops_per_phase=int(data.get("ops_per_phase", 0)),  # type: ignore[arg-type]
                strategy=str(data.get("strategy", "adcache")),
                cache_bytes=int(data.get("cache_bytes", 0)),  # type: ignore[arg-type]
                calibration=float(data.get("calibration", 0.0)),  # type: ignore[arg-type]
                phases=phases,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed bench report: {exc}") from exc


def _phase_fingerprint(result: RunResult) -> str:
    """sha256 over the deterministic simulated counters of one phase.

    Wall-clock numbers vary run to run; these counters may not — two
    runs of the same phase on one host must produce the same digest, or
    an "optimization" changed simulated behaviour.
    """
    h = hashlib.sha256()
    h.update(
        (
            f"{result.ops}:{result.sst_reads}:{result.io_miss}:"
            f"{result.range_point_hits}:{result.range_scan_hits}:"
            f"{result.compactions}:{result.hit_rate:.9f}:"
            f"{result.io_estimate:.9f}"
        ).encode()
    )
    return h.hexdigest()


def run_phase(
    name: str,
    *,
    num_keys: int,
    ops: int,
    cache_bytes: int,
    strategy: str,
    seed: int,
    calibration: float,
    repeats: int = 1,
    batch_size: int = 1,
) -> PhaseResult:
    """Build a fresh engine, run one phase's workload, and time it.

    Every phase starts from an identical freshly seeded database so
    phases are independent and individually reproducible.  With
    ``repeats`` > 1, the whole phase (seed + run) executes that many
    times and the *best* wall time wins — standard microbenchmark
    practice for filtering scheduler and cache noise on shared hosts.
    Repeats are byte-identical simulations, so their fingerprints must
    agree; a mismatch means nondeterminism crept into the op path and
    raises :class:`~repro.errors.InvariantError` immediately.

    ``batch_size`` > 1 drives the workload through the engine's batched
    entry points (:func:`~repro.bench.harness.run_workload`'s batching)
    and records the phase as ``{name}@b{batch_size}``; a batch of one
    is the scalar path and keeps the bare name, so a family sweep's
    scalar reference and batched runs coexist in one report.
    """
    if name not in ALL_PHASE_SPECS:
        raise ConfigError(
            f"unknown bench phase {name!r}; choose from {sorted(ALL_PHASE_SPECS)}"
        )
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    if batch_size < 1:
        raise ConfigError(f"batch_size must be positive, got {batch_size}")
    # The standard phases use a deliberately tiny memtable/SSTable shape so
    # compaction pressure is real at bench key counts; the batched family
    # uses the library-default shape, whose larger tables give each bloom
    # probe and block fetch realistic weight (its speedup claim is tied to
    # this configuration — see BATCHED_NUM_KEYS).
    if name == BATCHED_PHASE:
        options = LSMOptions()
    else:
        options = LSMOptions(memtable_entries=32, entries_per_sstable=64)
    best_wall: Optional[float] = None
    result: Optional[RunResult] = None
    fingerprint: Optional[str] = None
    for _ in range(repeats):
        tree = seed_database(num_keys, options, seed=7)
        engine = build_engine(strategy, tree, cache_bytes, seed=seed)
        generator = WorkloadGenerator(ALL_PHASE_SPECS[name](num_keys), seed=seed + 1)
        start = time.perf_counter()
        this_result = run_workload(
            engine, generator, num_ops=ops, name=name, batch_size=batch_size
        )
        wall = time.perf_counter() - start
        this_fingerprint = _phase_fingerprint(this_result)
        if fingerprint is None:
            fingerprint = this_fingerprint
        elif this_fingerprint != fingerprint:
            raise InvariantError(
                f"bench phase {name!r} produced different simulated counters "
                f"across identical repeats ({fingerprint[:12]} vs "
                f"{this_fingerprint[:12]}); the op path is nondeterministic"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
            result = this_result
    assert best_wall is not None and result is not None and fingerprint is not None
    wall = best_wall
    ops_per_sec = ops / wall if wall > 0 else 0.0
    return PhaseResult(
        name=name if batch_size == 1 else f"{name}@b{batch_size}",
        ops=ops,
        wall_s=wall,
        ops_per_sec=ops_per_sec,
        normalized_score=ops_per_sec / calibration if calibration > 0 else 0.0,
        sim_qps=result.qps,
        hit_rate=result.hit_rate,
        sst_reads=result.sst_reads,
        fingerprint=fingerprint,
    )


def run_perf(
    quick: bool = False,
    seed: int = 0,
    strategy: str = "adcache",
    label: str = "bench",
    num_keys: Optional[int] = None,
    ops_per_phase: Optional[int] = None,
    cache_bytes: Optional[int] = None,
    profile_sort: Optional[str] = None,
    repeats: int = 1,
    batch_sizes: Optional[List[int]] = None,
) -> Tuple[PerfReport, Optional[str]]:
    """Run every phase; returns ``(report, profile_text_or_None)``.

    ``quick`` selects the small CI configuration; explicit ``num_keys``
    / ``ops_per_phase`` / ``cache_bytes`` override either preset (used
    by the unit tests to stay fast).  ``profile_sort`` (e.g.
    ``"cumulative"`` or ``"tottime"``) wraps the phases in cProfile and
    returns the formatted top of the profile.  ``repeats`` takes the
    best wall time of N identical runs per phase (see
    :func:`run_phase`); use 3+ when recording a committed baseline.

    ``batch_sizes`` additionally runs the batched family: the ``mixedb``
    phase once per requested size through the engine's batched entry
    points, preceded by one scalar (batch-of-1) reference run so every
    report carries its own denominator.  The family always runs at the
    fixed :data:`BATCHED_NUM_KEYS` / :data:`BATCHED_CACHE_BYTES` /
    :data:`BATCHED_OPS` shape regardless of preset — its speedup claim
    is tied to that configuration.
    """
    keys = num_keys if num_keys is not None else (2_000 if quick else 4_000)
    ops = ops_per_phase if ops_per_phase is not None else (4_000 if quick else 20_000)
    budget = cache_bytes if cache_bytes is not None else (256 * 1024 if quick else 512 * 1024)
    calibration = calibration_score()
    report = PerfReport(
        label=label,
        quick=quick,
        seed=seed,
        num_keys=keys,
        ops_per_phase=ops,
        strategy=strategy,
        cache_bytes=budget,
        calibration=calibration,
    )

    profiler = cProfile.Profile() if profile_sort else None
    if profiler is not None:
        profiler.enable()
    for name in PHASE_SPECS:
        report.phases.append(
            run_phase(
                name,
                num_keys=keys,
                ops=ops,
                cache_bytes=budget,
                strategy=strategy,
                seed=seed + 11,
                calibration=calibration,
                repeats=repeats,
            )
        )
    if batch_sizes:
        for size in batch_sizes:
            if size < 1:
                raise ConfigError(f"batch_size must be positive, got {size}")
        # Scalar reference first, then each requested size (deduplicated,
        # ascending) — so speedup-vs-batch-size reads straight off the table.
        for size in [1] + sorted(set(batch_sizes) - {1}):
            report.phases.append(
                run_phase(
                    BATCHED_PHASE,
                    num_keys=BATCHED_NUM_KEYS,
                    ops=BATCHED_OPS,
                    cache_bytes=BATCHED_CACHE_BYTES,
                    strategy=strategy,
                    seed=seed + 11,
                    calibration=calibration,
                    repeats=repeats,
                    batch_size=size,
                )
            )
    profile_text: Optional[str] = None
    if profiler is not None:
        profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats(profile_sort).print_stats(30)
        profile_text = buffer.getvalue()
    return report, profile_text


def compare_reports(
    current: PerfReport,
    baseline: PerfReport,
    threshold: float = DEFAULT_FAIL_THRESHOLD,
    strict_fingerprints: bool = False,
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    A phase regresses when its *normalized* score (ops/sec over the
    host calibration score) drops more than ``threshold`` below the
    baseline's — raw ops/sec would punish slower CI hardware instead of
    slower code.  With ``strict_fingerprints`` (same-host runs only —
    RL float behaviour may differ across BLAS builds), differing phase
    fingerprints are also reported, catching optimizations that changed
    simulated behaviour.
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigError("threshold must be in (0, 1)")
    problems: List[str] = []
    for phase in current.phases:
        base = baseline.phase(phase.name)
        if base is None:
            continue
        floor = base.normalized_score * (1.0 - threshold)
        if phase.normalized_score < floor:
            problems.append(
                f"{phase.name}: normalized score {phase.normalized_score:.4f} "
                f"fell below {floor:.4f} (baseline {base.normalized_score:.4f} "
                f"- {threshold:.0%})"
            )
        if (
            strict_fingerprints
            and (phase.ops, current.seed, current.num_keys)
            == (base.ops, baseline.seed, baseline.num_keys)
            and phase.fingerprint != base.fingerprint
        ):
            problems.append(
                f"{phase.name}: simulated-counter fingerprint changed "
                f"({base.fingerprint[:12]} -> {phase.fingerprint[:12]}); "
                f"the optimization altered simulation behaviour"
            )
    return problems


def load_baseline(path: str) -> PerfReport:
    """Read a baseline report from ``path``.

    Accepts either a bare report dict or a ``BENCH_PR*.json`` envelope,
    whose ``current`` entry is the committed post-PR baseline.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict) and "current" in data and "phases" not in data:
        data = data["current"]
    if not isinstance(data, dict):
        raise ConfigError(f"baseline {path} is not a report object")
    return PerfReport.from_dict(data)
