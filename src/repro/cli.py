"""Command-line interface: run workloads against the cache schemes.

Examples
--------
Run one strategy on one workload::

    python -m repro run --strategy adcache --workload balanced \
        --num-keys 10000 --cache-kb 1024 --ops 20000

Compare every scheme on a workload::

    python -m repro compare --workload short_scan --cache-kb 512

Replay the dynamic phase sequence::

    python -m repro phases --phases ABCDEF --ops-per-phase 5000

Chaos-test resilience under injected storage faults::

    python -m repro chaos --ops 20000 --transient-rate 0.01 \
        --corruption-rate 0.001 --crash-every 5000 --blackout-window 20

Chaos-test the serving fleet (shard crashes + replica failover), running
the same seeded scenario twice and demanding identical fingerprints::

    python -m repro chaos --serve --ops 8000 --serve-crashes 2 --seed 11

Simulate a multi-tenant serving fleet (shard router + client sessions)::

    python -m repro serve --clients 8 --shards 4 --ops 20000 --seed 0

Run the repo's static-analysis pass::

    python -m repro lint src/repro

Export observability artifacts and render them::

    python -m repro run --strategy adcache --obs-dir /tmp/obs
    python -m repro report /tmp/obs --validate

Measure host-side simulator throughput and gate against a baseline::

    python -m repro bench --quick --json bench.json --baseline BENCH_PR4.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.harness import run_phases, run_workload, seed_database
from repro.bench.report import format_table
from repro.bench.strategies import DISPLAY_NAMES, STRATEGIES, build_engine
from repro.faults.chaos import report_rows, run_chaos
from repro.lsm.options import LSMOptions
from repro.workloads.dynamic import dynamic_phase_specs
from repro.workloads.generator import (
    WorkloadGenerator,
    WorkloadSpec,
    balanced_workload,
    long_scan_workload,
    point_lookup_workload,
    short_scan_workload,
)

WORKLOADS = {
    "point": point_lookup_workload,
    "short_scan": short_scan_workload,
    "balanced": balanced_workload,
    "long_scan": long_scan_workload,
}


def _spec(args: argparse.Namespace) -> WorkloadSpec:
    if args.workload in WORKLOADS:
        return WORKLOADS[args.workload](args.num_keys, skew=args.skew)
    raise SystemExit(f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}")


def _options(args: argparse.Namespace) -> LSMOptions:
    return LSMOptions(
        memtable_entries=args.memtable_entries,
        entries_per_sstable=args.sstable_entries,
    )


def _result_row(name: str, result) -> List[str]:
    return [
        name,
        f"{result.hit_rate:.3f}",
        f"{result.sst_reads:,}",
        f"{result.qps:,.0f}",
        f"{result.compactions}",
    ]


_HEADERS = ["strategy", "est. hit rate", "SST reads", "sim QPS", "compactions"]


def _add_obs_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs-dir", default=None,
        help="export observability artifacts (metrics/events/audit JSONL) here",
    )


def _attach_obs(engine, args: argparse.Namespace):
    """Attach an ObsRecorder when ``--obs-dir`` was given (else None)."""
    if not getattr(args, "obs_dir", None):
        return None
    from repro.obs import ObsRecorder

    recorder = ObsRecorder()
    engine.attach_recorder(recorder)
    return recorder


def _export_obs(engine, recorder, args: argparse.Namespace) -> None:
    """Seal the trailing partial window and write the obs artifacts."""
    if recorder is None:
        return
    engine.flush_window()
    recorder.export(args.obs_dir)
    print(f"wrote obs artifacts to {args.obs_dir}")


def cmd_run(args: argparse.Namespace) -> int:
    """Run one strategy on one workload and print its metrics."""
    tree = seed_database(args.num_keys, _options(args), seed=args.seed)
    engine = build_engine(args.strategy, tree, args.cache_kb * 1024, seed=args.seed)
    recorder = _attach_obs(engine, args)
    generator = WorkloadGenerator(_spec(args), seed=args.seed + 1)
    result = run_workload(
        engine, generator, num_ops=args.ops, warmup_ops=args.warmup,
        name=args.strategy,
    )
    print(format_table(_HEADERS, [_result_row(DISPLAY_NAMES[args.strategy], result)]))
    _export_obs(engine, recorder, args)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run every main strategy on one workload and rank them."""
    rows = []
    strategies = ["block", "kv", "range", "range-lecar", "range-cacheus", "adcache"]
    for strategy in strategies:
        tree = seed_database(args.num_keys, _options(args), seed=args.seed)
        engine = build_engine(strategy, tree, args.cache_kb * 1024, seed=args.seed)
        generator = WorkloadGenerator(_spec(args), seed=args.seed + 1)
        result = run_workload(
            engine, generator, num_ops=args.ops, warmup_ops=args.warmup,
            name=strategy,
        )
        rows.append((result.hit_rate, _result_row(DISPLAY_NAMES[strategy], result)))
    rows.sort(key=lambda pair: -pair[0])
    print(format_table(_HEADERS, [row for _, row in rows]))
    return 0


def cmd_phases(args: argparse.Namespace) -> int:
    """Run the Table 3 dynamic phases on one strategy."""
    tree = seed_database(args.num_keys, _options(args), seed=args.seed)
    engine = build_engine(args.strategy, tree, args.cache_kb * 1024, seed=args.seed)
    recorder = _attach_obs(engine, args)
    phases = dynamic_phase_specs(args.num_keys, skew=args.skew, phases=args.phases)
    results = run_phases(engine, phases, ops_per_phase=args.ops_per_phase, seed=args.seed + 1)
    print(format_table(
        ["phase"] + _HEADERS[1:],
        [[r.name] + _result_row("", r)[1:] for r in results],
    ))
    _export_obs(engine, recorder, args)
    return 0


def _serve_resilience_config(args: argparse.Namespace):
    """Build the ResilienceConfig the serve/chaos flags describe (or None)."""
    from repro.faults.fleet import FleetFaultConfig
    from repro.serve.resilience import ResilienceConfig

    crashes = getattr(args, "serve_crashes", 0)
    hedge = getattr(args, "hedge_quantile", 0.0)
    timeout = getattr(args, "op_timeout_us", 0.0)
    if not crashes and not hedge and not timeout:
        return None
    faults = None
    if crashes:
        faults = FleetFaultConfig(
            crashes=crashes,
            earliest_us=args.crash_earliest_us,
            latest_us=args.crash_latest_us,
            seed=args.seed,
        )
    return ResilienceConfig(
        fleet_faults=faults,
        hedge_quantile=hedge,
        op_timeout_us=timeout,
    )


def _chaos_serve(args: argparse.Namespace) -> int:
    """Fleet chaos: same seeded crash scenario twice, bytes must match."""
    from repro.faults.fleet import FleetFaultPlan
    from repro.serve import ServeConfig, run_serve

    resilience = _serve_resilience_config(args)
    if resilience is None or resilience.fleet_faults is None:
        raise SystemExit("repro chaos --serve needs --serve-crashes >= 1")

    def one_run():
        return run_serve(ServeConfig(
            num_clients=args.clients,
            num_shards=args.shards,
            total_ops=args.ops,
            seed=args.seed,
            strategy=args.strategy,
            workload=_spec(args),
            num_keys=args.num_keys,
            cache_bytes=args.cache_kb * 1024,
            partition=args.partition,
            queue_depth=args.queue_depth,
            memtable_entries=args.memtable_entries,
            entries_per_sstable=args.sstable_entries,
            keep_trace=False,
            op_deadline_us=args.deadline_us,
            resilience=resilience,
        ))

    first, second = one_run(), one_run()
    print(first.format_report())
    failures = []
    if first.fingerprint() != second.fingerprint():
        failures.append(
            f"fingerprint mismatch across identical seeded runs: "
            f"{first.fingerprint()} != {second.fingerprint()}"
        )
    if first.breaker_log != second.breaker_log:
        failures.append("breaker audit logs diverged across identical runs")
    planned = len(FleetFaultPlan(resilience.fleet_faults, args.shards))
    if first.crashes != planned:
        failures.append(
            f"planned crashes not all executed: {first.crashes} of {planned}"
        )
    if first.promotions != first.crashes:
        failures.append(
            f"replica promotion missing: {first.crashes} crashes but "
            f"{first.promotions} promotions"
        )
    if first.lost_acked_writes:
        failures.append(
            f"{first.lost_acked_writes}/{first.acked_writes_checked} "
            f"acknowledged writes unreadable after failover"
        )
    if first.issued != first.completed + first.rejected:
        failures.append(
            f"request conservation broken: {first.issued} issued != "
            f"{first.completed} completed + {first.rejected} rejected"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: two same-seed fleet-chaos runs matched byte-for-byte "
        f"({first.crashes} crashes, {first.promotions} promotions, "
        f"{first.acked_writes_checked} acked writes verified durable)"
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos harness: injected faults must not change results."""
    if args.serve:
        return _chaos_serve(args)
    report = run_chaos(
        ops=args.ops,
        num_keys=args.num_keys,
        cache_kb=args.cache_kb,
        strategy=args.strategy,
        spec=_spec(args),
        options=_options(args),
        transient_read_rate=args.transient_rate,
        corruption_rate=args.corruption_rate,
        torn_wal_rate=args.torn_rate,
        crash_every=args.crash_every,
        blackout_window=args.blackout_window,
        window_size=args.window_size,
        seed=args.seed,
    )
    print(format_table(
        ["metric", "value"],
        [[metric, value] for metric, value in report_rows(report)],
    ))
    if report.wrong_reads:
        if not args.torn_rate:
            print(f"FAIL: {report.wrong_reads} queries diverged from the clean run")
            return 1
        print(
            f"OK: {report.wrong_reads} queries diverged, attributable to "
            f"torn-WAL data loss (sanctioned at --torn-rate > 0)"
        )
        return 0
    print("OK: fault-injected run matched the fault-free run")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the deterministic multi-tenant serving simulation."""
    from repro.serve import ServeConfig, run_serve

    config = ServeConfig(
        num_clients=args.clients,
        num_shards=args.shards,
        total_ops=args.ops,
        seed=args.seed,
        strategy=args.strategy,
        workload=_spec(args),
        num_keys=args.num_keys,
        cache_bytes=args.cache_kb * 1024,
        l2_budget_bytes=args.l2_budget_kb * 1024,
        partition=args.partition,
        queue_depth=args.queue_depth,
        arrival_rate_ops_s=args.arrival_rate,
        closed_clients=args.closed_clients,
        think_time_us=args.think_us,
        rebalance_every=args.rebalance_every,
        window_size=args.window_size,
        memtable_entries=args.memtable_entries,
        entries_per_sstable=args.sstable_entries,
        keep_trace=False,
        op_deadline_us=args.deadline_us,
        resilience=_serve_resilience_config(args),
        obs=bool(args.obs_dir),
    )
    result = run_serve(config)
    print(result.format_report())
    if args.obs_dir:
        result.export_obs(args.obs_dir)
        print(f"wrote per-shard + fleet obs artifacts to {args.obs_dir}")
    failures = []
    if result.lost_acked_writes:
        failures.append(
            f"{result.lost_acked_writes}/{result.acked_writes_checked} "
            f"acknowledged writes unreadable after failover"
        )
    if result.issued != result.completed + result.rejected:
        failures.append(
            f"request conservation broken: {result.issued} issued != "
            f"{result.completed} completed + {result.rejected} rejected"
        )
    if result.crashes != result.promotions:
        failures.append(
            f"replica promotion missing: {result.crashes} crashes but "
            f"{result.promotions} promotions"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


def cmd_atlas(args: argparse.Namespace) -> int:
    """Run the scenarios × strategies matrix over the serving fleet."""
    from repro.workloads.atlas import (
        AtlasConfig,
        experiments_section,
        run_atlas,
    )
    from repro.workloads.scenarios import describe_scenarios

    if args.list_scenarios:
        print(describe_scenarios())
        return 0
    config = AtlasConfig(
        scenarios=tuple(args.scenarios.split(",")) if args.scenarios else (),
        strategies=tuple(args.strategies.split(",")),
        seed=args.seed,
        num_keys=args.num_keys,
        tenants=args.tenants,
        phase_ops=args.phase_ops,
        arrival_rate_ops_s=args.arrival_rate,
        num_shards=args.shards,
        cache_kb=args.cache_kb,
        l2_fraction=args.l2_fraction,
        window_size=args.window_size,
        double_run=not args.single_run,
    )
    result = run_atlas(config, progress=print)
    print()
    print(result.to_markdown())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        print(f"wrote JSON matrix to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(result.to_markdown())
        print(f"wrote markdown report to {args.markdown}")
    if args.append_experiments:
        with open(args.append_experiments, "a", encoding="utf-8") as fh:
            fh.write(experiments_section(result))
        print(f"appended atlas section to {args.append_experiments}")
    failures = result.failures()
    if failures:
        for cell in failures:
            print(
                f"FAIL: {cell.scenario} x {cell.strategy} double run "
                f"diverged (determinism regression)"
            )
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the host-side perf microbenchmarks (see docs/performance.md)."""
    import json

    from repro.bench.perf import (
        compare_reports,
        load_baseline,
        run_perf,
    )
    from repro.bench.report import perf_table

    report, profile_text = run_perf(
        quick=args.quick,
        seed=args.seed,
        strategy=args.strategy,
        label=args.label,
        profile_sort=args.profile,
        repeats=args.repeats,
        batch_sizes=args.batch_sizes,
    )
    print(perf_table(report.to_dict()))
    if profile_text:
        print(profile_text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.baseline:
        baseline = load_baseline(args.baseline)
        problems = compare_reports(
            report, baseline, threshold=args.threshold,
            strict_fingerprints=args.strict_fingerprints,
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print(
            f"OK: no phase regressed more than {args.threshold:.0%} "
            f"vs {args.baseline}"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render (and optionally validate) an exported obs directory."""
    from repro.obs.report import list_metrics, render_report
    from repro.obs.schema import validate_export

    if args.list_metrics:
        print(list_metrics())
        return 0
    if not args.directory:
        raise SystemExit("repro report: an obs directory is required")
    if args.validate:
        problems = validate_export(args.directory)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        print(f"OK: {args.directory} validates against the obs schema")
    print(render_report(args.directory, max_rows=args.max_rows))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo's static-analysis engine (delegates to :mod:`repro.lint`)."""
    from repro.lint.runner import main as lint_main

    argv: List[str] = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    if args.format != "text":
        argv += ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.sarif:
        argv += ["--sarif", args.sarif]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.changed is not None:
        argv.append(
            "--changed" if args.changed == "" else f"--changed={args.changed}"
        )
    if args.no_cache:
        argv.append("--no-cache")
    if args.stats:
        argv.append("--stats")
    return lint_main(argv)


def _add_resilience_flags(
    parser: argparse.ArgumentParser, default_crashes: int = 0
) -> None:
    parser.add_argument(
        "--serve-crashes", type=int, default=default_crashes,
        help="shard executors the seeded fleet fault plan kills mid-run "
        "(0 disables crash injection)",
    )
    parser.add_argument(
        "--crash-earliest-us", type=float, default=50_000.0,
        help="earliest simulated crash time (us)",
    )
    parser.add_argument(
        "--crash-latest-us", type=float, default=400_000.0,
        help="latest simulated crash time (us)",
    )
    parser.add_argument(
        "--deadline-us", type=float, default=0.0,
        help="per-op completion deadline; queue waits past it are shed "
        "at dequeue (0 disables)",
    )
    parser.add_argument(
        "--hedge-quantile", type=float, default=0.0,
        help="hedge point reads to the replica past this per-tenant "
        "latency quantile, e.g. 0.95 (0 disables)",
    )
    parser.add_argument(
        "--op-timeout-us", type=float, default=0.0,
        help="service time that counts as a circuit-breaker failure "
        "(0: only crashes trip breakers)",
    )


def _batch_size_arg(value: str) -> int:
    """argparse type for ``--batch-size``: a strictly positive integer."""
    try:
        size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"batch size must be a positive integer, got {value!r}"
        ) from None
    if size < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be positive, got {size}"
        )
    return size


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-keys", type=int, default=10_000, help="database size in keys")
    parser.add_argument("--cache-kb", type=int, default=1024, help="total cache budget (KiB)")
    parser.add_argument("--skew", type=float, default=0.9, help="Zipfian skew")
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument("--memtable-entries", type=int, default=64)
    parser.add_argument("--sstable-entries", type=int, default=128)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AdCache reproduction: LSM-tree cache management experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one strategy on one workload")
    _add_common(run)
    run.add_argument("--strategy", choices=sorted(STRATEGIES), default="adcache")
    run.add_argument("--workload", choices=sorted(WORKLOADS), default="balanced")
    run.add_argument("--ops", type=int, default=20_000)
    run.add_argument("--warmup", type=int, default=5_000)
    _add_obs_dir(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="compare all schemes on one workload")
    _add_common(compare)
    compare.add_argument("--workload", choices=sorted(WORKLOADS), default="balanced")
    compare.add_argument("--ops", type=int, default=10_000)
    compare.add_argument("--warmup", type=int, default=5_000)
    compare.set_defaults(func=cmd_compare)

    phases = sub.add_parser("phases", help="run the Table 3 dynamic phases")
    _add_common(phases)
    phases.add_argument("--strategy", choices=sorted(STRATEGIES), default="adcache")
    phases.add_argument("--phases", default="ABCDEF")
    phases.add_argument("--ops-per-phase", type=int, default=5_000)
    _add_obs_dir(phases)
    phases.set_defaults(func=cmd_phases)

    chaos = sub.add_parser(
        "chaos", help="verify resilience under injected storage faults"
    )
    _add_common(chaos)
    chaos.add_argument("--strategy", choices=sorted(STRATEGIES), default="adcache")
    chaos.add_argument("--workload", choices=sorted(WORKLOADS), default="balanced")
    chaos.add_argument("--ops", type=int, default=20_000)
    chaos.add_argument(
        "--transient-rate", type=float, default=0.01,
        help="probability a disk read attempt fails transiently",
    )
    chaos.add_argument(
        "--corruption-rate", type=float, default=0.001,
        help="probability a disk read permanently corrupts its block",
    )
    chaos.add_argument(
        "--torn-rate", type=float, default=0.0,
        help="probability a WAL append lands torn (lost at next crash)",
    )
    chaos.add_argument(
        "--crash-every", type=int, default=0,
        help="crash and recover the faulted engine every N ops (0 = never)",
    )
    chaos.add_argument(
        "--blackout-window", type=int, default=None,
        help="poison controller stats for a few windows starting here",
    )
    chaos.add_argument(
        "--window-size", type=int, default=None,
        help="override the controller window (ops) for both engines",
    )
    chaos.add_argument(
        "--serve", action="store_true",
        help="fleet chaos: crash serving shards mid-run, fail over to "
        "replicas, and demand two same-seed runs match byte-for-byte",
    )
    chaos.add_argument("--clients", type=int, default=4, help="(--serve) client sessions")
    chaos.add_argument("--shards", type=int, default=4, help="(--serve) engine shards")
    chaos.add_argument(
        "--partition", choices=["hash", "range"], default="hash",
        help="(--serve) keyspace partitioning across shards",
    )
    chaos.add_argument(
        "--queue-depth", type=int, default=32,
        help="(--serve) bounded per-shard queue capacity",
    )
    _add_resilience_flags(chaos, default_crashes=2)
    chaos.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve", help="simulate a deterministic multi-tenant serving fleet"
    )
    _add_common(serve)
    serve.add_argument("--strategy", choices=sorted(STRATEGIES), default="adcache")
    serve.add_argument("--workload", choices=sorted(WORKLOADS), default="balanced")
    serve.add_argument("--clients", type=int, default=8, help="client sessions")
    serve.add_argument("--shards", type=int, default=4, help="engine shards")
    serve.add_argument("--ops", type=int, default=20_000, help="total client ops")
    serve.add_argument(
        "--partition", choices=["hash", "range"], default="hash",
        help="keyspace partitioning across shards",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded per-shard queue capacity (admission budget)",
    )
    serve.add_argument(
        "--arrival-rate", type=float, default=1200.0,
        help="open-loop offered load per client (ops/s)",
    )
    serve.add_argument(
        "--closed-clients", type=int, default=0,
        help="how many clients run closed-loop (think time) instead",
    )
    serve.add_argument(
        "--think-us", type=float, default=1000.0,
        help="closed-loop mean think time (us)",
    )
    serve.add_argument(
        "--rebalance-every", type=int, default=2000,
        help="completed requests between budget-arbiter rounds (0 = off)",
    )
    serve.add_argument(
        "--l2-budget-kb", type=int, default=0,
        help="carve this much of --cache-kb into a fleet-shared L2 tier "
        "(0 = flat legacy fleet; see docs/tiered_cache.md)",
    )
    serve.add_argument(
        "--window-size", type=int, default=250,
        help="per-shard controller window (ops)",
    )
    _add_resilience_flags(serve)
    _add_obs_dir(serve)
    serve.set_defaults(func=cmd_serve)

    atlas = sub.add_parser(
        "atlas",
        help="sweep the scenario atlas against the cache strategies "
        "(see docs/workloads.md)",
    )
    atlas.add_argument(
        "--list-scenarios", action="store_true",
        help="print the registered scenarios with their intents and exit",
    )
    atlas.add_argument(
        "--scenarios",
        help="comma-separated scenario names (default: all registered)",
    )
    atlas.add_argument(
        "--strategies", default="adcache,range-lecar,range-cacheus,block",
        help="comma-separated strategy names",
    )
    atlas.add_argument("--seed", type=int, default=0)
    atlas.add_argument(
        "--num-keys", type=int, default=3000,
        help="base keyspace per scenario (growth scenarios scale it up)",
    )
    atlas.add_argument("--tenants", type=int, default=4)
    atlas.add_argument(
        "--phase-ops", type=int, default=800,
        help="nominal per-tenant op budget per full-intensity phase",
    )
    atlas.add_argument("--arrival-rate", type=float, default=2000.0)
    atlas.add_argument("--shards", type=int, default=2)
    atlas.add_argument("--cache-kb", type=int, default=256)
    atlas.add_argument(
        "--l2-fraction", type=float, default=0.25,
        help="fraction of the cache budget '+l2' strategy cells carve "
        "into the shared tier (total budget stays --cache-kb)",
    )
    atlas.add_argument("--window-size", type=int, default=250)
    atlas.add_argument(
        "--single-run", action="store_true",
        help="skip the double-run fingerprint check (faster, less safe)",
    )
    atlas.add_argument("--json", help="write the machine-readable matrix here")
    atlas.add_argument("--markdown", help="write the win/loss report here")
    atlas.add_argument(
        "--append-experiments", metavar="PATH",
        help="append the atlas section to this markdown file "
        "(e.g. EXPERIMENTS.md)",
    )
    atlas.set_defaults(func=cmd_atlas)

    report = sub.add_parser(
        "report", help="render/validate an exported obs directory"
    )
    report.add_argument(
        "directory", nargs="?", default=None,
        help="directory written by --obs-dir (or a fleet export)",
    )
    report.add_argument(
        "--validate", action="store_true",
        help="check the artifacts against the obs schema first (exit 1 on problems)",
    )
    report.add_argument(
        "--list-metrics", action="store_true",
        help="print the registered metric catalogue and exit",
    )
    report.add_argument(
        "--max-rows", type=int, default=12,
        help="cap per-section table rows in the rendered report",
    )
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser(
        "bench",
        help="host-side perf microbenchmarks + regression gate (docs/performance.md)",
    )
    bench.add_argument("--seed", type=int, default=0, help="master RNG seed")
    bench.add_argument("--strategy", choices=sorted(STRATEGIES), default="adcache")
    bench.add_argument(
        "--quick", action="store_true",
        help="small CI configuration (2k keys, 4k ops/phase, 256 KiB cache)",
    )
    bench.add_argument("--label", default="bench", help="label stored in the report")
    bench.add_argument(
        "--repeats", type=int, default=1,
        help="run each phase N times and keep the best wall time "
        "(use 3+ when recording a committed baseline)",
    )
    bench.add_argument(
        "--batch-size", type=_batch_size_arg, action="append", default=None,
        metavar="N", dest="batch_sizes",
        help="also run the batched family (mixedb) at this batch size via "
        "the engine's multi_get/multi_scan/multi_put path, with a scalar "
        "batch-of-1 reference run; repeat the flag for a sweep",
    )
    bench.add_argument("--json", help="write the report JSON to this path")
    bench.add_argument(
        "--baseline",
        help="compare against this report or BENCH_PR*.json envelope; "
        "exit 1 on regression",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="normalized-throughput drop that counts as a regression",
    )
    bench.add_argument(
        "--strict-fingerprints", action="store_true",
        help="also fail if simulated-counter fingerprints differ from the "
        "baseline (same-host comparisons only)",
    )
    bench.add_argument(
        "--profile", nargs="?", const="cumulative", default=None,
        metavar="SORT",
        help="profile the phases with cProfile and print the top entries "
        "(optional sort key, default 'cumulative')",
    )
    bench.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="run the whole-program static-analysis engine "
        "(see docs/static_analysis.md)",
    )
    lint.add_argument("paths", nargs="*", help="files/dirs (default: the repro package)")
    lint.add_argument(
        "--select", "--rules", dest="select",
        help="comma-separated rule ids and/or families (e.g. DET,OWN002)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue grouped by family",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="primary report format",
    )
    lint.add_argument("--output", help="write the report to this file")
    lint.add_argument("--sarif", help="additionally write a SARIF report here")
    lint.add_argument(
        "--baseline", help="suppress findings recorded in this baseline file"
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from current findings",
    )
    lint.add_argument(
        "--changed", nargs="?", const="", default=None, metavar="REF",
        help="lint only files modified vs a git ref (default origin/main)",
    )
    lint.add_argument(
        "--no-cache", action="store_true", help="disable the AST cache"
    )
    lint.add_argument(
        "--stats", action="store_true", help="print cache statistics"
    )
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
