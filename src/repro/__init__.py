"""AdCache reproduction: adaptive cache management for LSM-tree KV stores.

Reproduces *AdCache: Adaptive Cache Management with Admission Control
for LSM-tree Key-Value Stores* (EDBT 2026) as a pure-Python system:

* :mod:`repro.lsm` — a RocksDB-flavoured LSM-tree simulator (the
  storage substrate the caches manage).
* :mod:`repro.cache` — block / KV / range caches, classic and learned
  eviction policies, and the paper's admission-control mechanisms.
* :mod:`repro.rl` — the numpy actor-critic controller, I/O-estimate
  reward model, and pretraining.
* :mod:`repro.core` — AdCache itself: dynamic cache boundary, window
  controller, and the cached KV engine.
* :mod:`repro.workloads` / :mod:`repro.bench` — workload generators and
  the benchmark harness regenerating every figure and table.
* :mod:`repro.faults` — deterministic fault injection (transient read
  errors, block corruption, torn WAL tails, stats blackouts) and the
  chaos harness that proves the stack absorbs them.
* :mod:`repro.serve` — the deterministic multi-tenant serving layer:
  shard router, event-driven open/closed-loop client sessions, bounded
  queues with load shedding, tail-latency histograms, and the global
  cache-budget arbiter.

Quickstart::

    from repro import AdCacheConfig, AdCacheEngine, seed_database

    tree = seed_database(num_keys=50_000)
    engine = AdCacheEngine(tree, AdCacheConfig(total_cache_bytes=8 << 20))
    engine.put("key000000000000000000042", "hello")
    engine.get("key000000000000000000042")
    engine.scan("key000000000000000000000", length=16)
"""

from repro.bench.harness import run_workload, seed_database
from repro.bench.strategies import STRATEGIES, build_engine
from repro.core.adcache import AdCacheEngine
from repro.core.config import AdCacheConfig
from repro.core.engine import KVEngine
from repro.errors import ReproError
from repro.faults import FaultConfig, FaultInjector, run_chaos
from repro.lsm.options import LSMOptions
from repro.lsm.tree import LSMTree
from repro.serve import ServeConfig, ServeResult, run_serve
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "AdCacheEngine",
    "AdCacheConfig",
    "KVEngine",
    "LSMTree",
    "LSMOptions",
    "WorkloadGenerator",
    "WorkloadSpec",
    "ReproError",
    "FaultConfig",
    "FaultInjector",
    "run_chaos",
    "STRATEGIES",
    "ServeConfig",
    "ServeResult",
    "build_engine",
    "run_serve",
    "run_workload",
    "seed_database",
    "__version__",
]
