"""Controller decision audit log: record every window, replay offline.

Each sealed window that reaches the controller produces one decision
record holding the full :class:`~repro.core.stats.WindowStats` input,
the reward terms (reward, trend, and the estimated-I/O baseline
``h_estimate`` / ``h_smoothed``), the adaptive actor learning rate,
and the *applied* outputs (range split, point threshold, scan ``a`` /
``b``, degraded flag).  The log's header captures everything needed to
rebuild the decision process from scratch: the ``AdCacheConfig``, the
agent's constructor arguments, and the LSM constants the reward model
uses.

Because the whole stack is deterministic — seeded ``Random`` /
``default_rng`` everywhere, no wall time — feeding the recorded window
sequence through a freshly built controller reproduces the original
trajectory *bit-for-bit*.  :func:`replay_decision_log` does exactly
that, and :func:`verify_replay` diffs the replayed records against the
recorded ones, making the audit log a self-checking artifact: if
replay diverges, either the log was edited or determinism regressed.

Replay needs no caches or admission structures (the controller accepts
``None`` for all of them and computes identical actions), so an audit
log replays in milliseconds without a tree or workload.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ObsError

#: Applied-output fields compared by :func:`verify_replay`, in order.
APPLIED_FIELDS: Tuple[str, ...] = (
    "range_ratio",
    "point_threshold",
    "scan_a",
    "scan_b",
)
#: Reward-term fields recorded per decision (and compared on replay).
REWARD_FIELDS: Tuple[str, ...] = ("reward", "trend", "h_estimate", "h_smoothed")


@dataclass
class DecisionAudit:
    """Append-only audit log for one controller's decision stream."""

    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = field(default_factory=list)

    def set_header(
        self,
        config: Dict[str, Any],
        agent_init: Optional[Dict[str, Any]],
        entries_per_block: int,
        level0_max_runs: int,
    ) -> None:
        """Capture the replay preamble (config + agent construction).

        ``agent_init`` is ``None`` when the agent was supplied
        externally (e.g. pretrained weights): such logs still record
        every decision but cannot be replayed from the header alone,
        and :func:`replay_decision_log` says so explicitly.
        """
        self.header = {
            "type": "header",
            "version": 1,
            "config": config,
            "agent_init": agent_init,
            "entries_per_block": entries_per_block,
            "level0_max_runs": level0_max_runs,
        }

    def record(
        self,
        window: "Any",
        control: "Any",
        ts_us: float,
    ) -> Dict[str, Any]:
        """Append one decision: the window input + the ControlRecord output."""
        rec: Dict[str, Any] = {
            "type": "decision",
            "ts_us": ts_us,
            "window": window.to_dict(),
            "degraded": bool(control.degraded),
            "actor_lr": control.actor_lr,
        }
        for name in REWARD_FIELDS:
            rec[name] = getattr(control, name)
        rec["applied"] = {name: getattr(control, name) for name in APPLIED_FIELDS}
        self.records.append(rec)
        return rec

    def export_jsonl(self, path: str) -> None:
        """Write audit.jsonl: header line, then one line per decision."""
        if self.header is None:
            raise ObsError("audit log has no header; call set_header first")
        with open(path, "w") as fh:
            fh.write(json.dumps(self.header) + "\n")
            for rec in self.records:
                fh.write(json.dumps(rec) + "\n")


def load_audit_log(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse audit.jsonl back into ``(header, decision_records)``."""
    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                raise ObsError(f"{path}:{line_no}: not valid JSON: {exc}") from None
            kind = obj.get("type")
            if kind == "header":
                if header is not None:
                    raise ObsError(f"{path}:{line_no}: duplicate header line")
                header = obj
            elif kind == "decision":
                records.append(obj)
            else:
                raise ObsError(f"{path}:{line_no}: unknown line type {kind!r}")
    if header is None:
        raise ObsError(f"{path}: missing header line")
    return header, records


def build_replay_controller(header: Dict[str, Any]) -> "Any":
    """Reconstruct the controller (agent included) an audit log describes.

    Raises :class:`ObsError` when the header lacks ``agent_init`` (the
    original run used an externally supplied agent whose weights the
    log does not carry).
    """
    # Imported here: obs is a leaf package the core imports, so pulling
    # core modules at import time would create a cycle.
    from repro.core.config import AdCacheConfig
    from repro.core.controller import PolicyDecisionController
    from repro.rl.actor_critic import ActorCriticAgent

    agent_init = header.get("agent_init")
    if agent_init is None:
        raise ObsError(
            "audit header has no agent_init (externally supplied agent); "
            "replay needs the original agent construction parameters"
        )
    config_dict = dict(header["config"])
    boundaries = config_dict.get("range_shard_boundaries")
    if boundaries is not None:
        # JSON round-trips tuples as lists; the config expects a tuple.
        config_dict["range_shard_boundaries"] = tuple(boundaries)
    config = AdCacheConfig(**config_dict)

    initial_policy = agent_init.get("initial_policy")
    agent = ActorCriticAgent(
        state_dim=int(agent_init["state_dim"]),
        action_dim=int(agent_init["action_dim"]),
        hidden_dim=int(agent_init["hidden_dim"]),
        actor_lr=float(agent_init["actor_lr"]),
        critic_lr=float(agent_init["critic_lr"]),
        gamma=float(agent_init["gamma"]),
        initial_log_std=float(agent_init["initial_log_std"]),
        seed=int(agent_init["seed"]),
    )
    if initial_policy is not None:
        import numpy as np

        agent.set_initial_policy(np.asarray(initial_policy, dtype=np.float32))
    return PolicyDecisionController(
        config=config,
        agent=agent,
        block_cache=None,
        range_cache=None,
        freq_admission=None,
        scan_admission=None,
        entries_per_block=int(header["entries_per_block"]),
        level0_max_runs=int(header["level0_max_runs"]),
    )


def replay_decision_log(
    header: Dict[str, Any], records: List[Dict[str, Any]]
) -> List["Any"]:
    """Re-run the recorded window sequence; returns the ControlRecords.

    The controller (and its agent) are rebuilt from the header with the
    original seeds, then fed each recorded ``WindowStats`` in order.
    On a healthy log the returned records match the recorded reward,
    learning-rate, and applied-parameter streams exactly.
    """
    from repro.core.stats import WindowStats

    controller = build_replay_controller(header)
    replayed = []
    for rec in records:
        window = WindowStats.from_dict(rec["window"])
        replayed.append(controller.on_window(window))
    return replayed


def verify_replay(
    header: Dict[str, Any], records: List[Dict[str, Any]]
) -> List[str]:
    """Replay and diff against the recorded stream; returns mismatches.

    An empty list means the log replays bit-for-bit.  Comparison is
    exact (``==`` on floats): both sides are products of the same
    deterministic arithmetic, so any tolerance would only mask a
    determinism regression.
    """
    replayed = replay_decision_log(header, records)

    def differs(want: float, have: float) -> bool:
        # NaN is a legitimate recorded value when the degraded guard is
        # disabled; NaN-vs-NaN is a faithful replay, not a mismatch.
        if want != want and have != have:
            return False
        return want != have

    problems: List[str] = []
    for i, (rec, got) in enumerate(zip(records, replayed)):
        for name in REWARD_FIELDS + ("actor_lr",):
            want = rec[name]
            have = getattr(got, name)
            if differs(want, have):
                problems.append(f"decision {i}: {name} recorded {want!r} != replayed {have!r}")
        for name in APPLIED_FIELDS:
            want = rec["applied"][name]
            have = getattr(got, name)
            if differs(want, have):
                problems.append(
                    f"decision {i}: applied.{name} recorded {want!r} != replayed {have!r}"
                )
        if bool(rec["degraded"]) != bool(got.degraded):
            problems.append(
                f"decision {i}: degraded recorded {rec['degraded']!r} "
                f"!= replayed {got.degraded!r}"
            )
    if len(replayed) != len(records):  # pragma: no cover - lengths always match
        problems.append(f"replayed {len(replayed)} decisions, log has {len(records)}")
    return problems


def audit_header_from_controller(
    controller: "Any", agent_init: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Build the header dict for a live controller (engine attach hook)."""
    return {
        "type": "header",
        "version": 1,
        "config": asdict(controller.config),
        "agent_init": agent_init,
        "entries_per_block": controller.entries_per_block,
        "level0_max_runs": controller.level0_max_runs,
    }
