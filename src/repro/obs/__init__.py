"""repro.obs — metrics, event tracing, and controller decision audit.

The observability subsystem for the AdCache simulator:

* :mod:`repro.obs.names` — the closed vocabulary of registered metric
  constants and event kinds (lint rule OBS001 enforces their use);
* :mod:`repro.obs.metrics` — counters / gauges / log-bucketed
  histograms with per-window snapshots and fleet-wide merging;
* :mod:`repro.obs.trace` — bounded ring buffer of structured events;
* :mod:`repro.obs.audit` — the controller decision audit log, with
  exact offline replay through the real actor-critic;
* :mod:`repro.obs.recorder` — the facade engines talk to; the shared
  :data:`NULL_RECORDER` keeps the disabled path free;
* :mod:`repro.obs.schema` — validators for the exported JSONL;
* :mod:`repro.obs.report` — ``repro report`` rendering.

Everything is deterministic and sim-clock timestamped; enabling
observability never changes a run's results, only what it exports.
"""

from repro.obs.audit import (
    DecisionAudit,
    load_audit_log,
    replay_decision_log,
    verify_replay,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    WindowSnapshot,
    merge_window_snapshots,
)
from repro.obs.names import METRICS, MetricSpec
from repro.obs.recorder import NULL_RECORDER, NullRecorder, ObsRecorder, Recorder
from repro.obs.schema import validate_export
from repro.obs.trace import EventTrace, TraceEvent

__all__ = [
    "METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "WindowSnapshot",
    "Histogram",
    "merge_window_snapshots",
    "EventTrace",
    "TraceEvent",
    "DecisionAudit",
    "load_audit_log",
    "replay_decision_log",
    "verify_replay",
    "NullRecorder",
    "ObsRecorder",
    "Recorder",
    "NULL_RECORDER",
    "validate_export",
]
