"""Metrics registry: counters, gauges, and log-bucketed histograms.

A :class:`MetricsRegistry` accepts recordings only against names
registered in :mod:`repro.obs.names` and only through the method
matching the metric's kind — ``inc`` for counters, ``set_gauge`` for
gauges, ``observe`` for histograms.  At each window boundary
:meth:`MetricsRegistry.snapshot_window` seals a
:class:`WindowSnapshot` holding the counter *deltas* accumulated since
the previous snapshot plus the current gauge values, mirroring how the
engine seals :class:`~repro.core.stats.WindowStats`.

Everything here is deterministic and stdlib-only; timestamps come from
the sim clock via the recorder, never wall time.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ObsError
from repro.obs import names as N


class Histogram:
    """Log-bucketed value accumulator (geometry: powers of ``growth``).

    Same shape as :class:`repro.bench.report.LatencyHistogram` but kept
    value-agnostic (entries, stall microseconds, block counts...) and
    with a coarser default growth, since obs histograms trade precision
    for a compact JSONL export.
    """

    __slots__ = ("_growth", "_min_value", "_log_growth", "_buckets", "count", "total", "max_value")

    def __init__(self, growth: float = 2.0, min_value: float = 1.0) -> None:
        if growth <= 1.0:
            raise ObsError("histogram growth factor must be > 1")
        if min_value <= 0:
            raise ObsError("histogram min_value must be positive")
        self._growth = growth
        self._min_value = min_value
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def observe(self, value: float) -> None:
        """Fold one sample into the histogram."""
        if value < 0 or not math.isfinite(value):
            raise ObsError(f"histogram sample must be finite and >= 0, got {value!r}")
        if value <= self._min_value:
            bucket = 0
        else:
            bucket = max(0, math.ceil(math.log(value / self._min_value) / self._log_growth))
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if (other._growth, other._min_value) != (self._growth, self._min_value):
            raise ObsError("cannot merge histograms with different geometry")
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    def upper_bound(self, bucket: int) -> float:
        """Inclusive upper bound of ``bucket`` in sample units."""
        return self._min_value * self._growth**bucket

    def quantile(self, p: float) -> float:
        """Value bound at fraction ``p`` of recorded samples (0 if empty)."""
        if not 0.0 <= p <= 1.0:
            raise ObsError("quantile fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p * self.count))
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                return self.upper_bound(bucket)
        return self.upper_bound(max(self._buckets))  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        """Exact mean of recorded samples (0 if empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: geometry, totals, and sparse bucket counts."""
        return {
            "growth": self._growth,
            "min_value": self._min_value,
            "count": self.count,
            "total": self.total,
            "max": self.max_value,
            "buckets": {str(b): n for b, n in sorted(self._buckets.items())},
        }


@dataclass
class WindowSnapshot:
    """Counter deltas + gauge values for one sealed window."""

    index: int
    ts_us: float
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (one ``type: window`` line in metrics.jsonl)."""
        return {
            "type": "window",
            "index": self.index,
            "ts_us": self.ts_us,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }


class MetricsRegistry:
    """Validated, window-snapshotting store for all registered metrics."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_last_seal", "windows")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._last_seal: Dict[str, int] = {}
        self.windows: List[WindowSnapshot] = []

    def _check_kind(self, name: str, expected: str) -> None:
        spec = N.spec_of(name)
        if spec.kind != expected:
            raise ObsError(
                f"metric {name!r} is a {spec.kind}, not a {expected}; "
                f"use the matching recording method"
            )

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (registered, kind-checked)."""
        self._check_kind(name, N.COUNTER)
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write per window wins)."""
        self._check_kind(name, N.GAUGE)
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        self._check_kind(name, N.HISTOGRAM)
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def counter_total(self, name: str) -> int:
        """Lifetime total of counter ``name`` (0 if never incremented)."""
        self._check_kind(name, N.COUNTER)
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        """Current value of gauge ``name`` (0.0 if never set)."""
        self._check_kind(name, N.GAUGE)
        return self._gauges.get(name, 0.0)

    def histogram(self, name: str) -> Histogram:
        """The histogram for ``name`` (empty one if never observed)."""
        self._check_kind(name, N.HISTOGRAM)
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        return hist

    def snapshot_window(self, index: int, ts_us: float) -> WindowSnapshot:
        """Seal a window: counter deltas since the last seal + gauges now."""
        counters: Dict[str, int] = {}
        for name, total in self._counters.items():
            delta = total - self._last_seal.get(name, 0)
            if delta:
                counters[name] = delta
            self._last_seal[name] = total
        snap = WindowSnapshot(
            index=index, ts_us=ts_us, counters=counters, gauges=dict(self._gauges)
        )
        self.windows.append(snap)
        return snap

    def totals_dict(self) -> Dict[str, object]:
        """JSON-ready lifetime totals (the ``type: totals`` line)."""
        return {
            "type": "totals",
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    def export_jsonl(self, path: str) -> None:
        """Write metrics.jsonl: meta line, one line per window, totals."""
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "meta", "kind": "metrics", "version": 1}) + "\n")
            for snap in self.windows:
                fh.write(json.dumps(snap.to_dict()) + "\n")
            fh.write(json.dumps(self.totals_dict()) + "\n")


def merge_window_snapshots(
    groups: Sequence[Sequence[WindowSnapshot]],
) -> List[WindowSnapshot]:
    """Fleet-wide reduction of per-shard window snapshot streams.

    Mirrors :func:`repro.core.stats.merge_windows`: snapshots are joined
    by position (window *i* of every shard describes the same logical
    window), counters sum, gauges average weighted by each shard's
    ``window.ops`` counter delta (falling back to a plain mean when no
    shard did work), and the timestamp is the max across shards (the
    fleet window is sealed when its slowest shard seals).  Shards with
    fewer windows simply stop contributing, so ragged streams merge
    without padding.
    """
    if not groups:
        return []
    depth = max(len(g) for g in groups)
    merged: List[WindowSnapshot] = []
    for i in range(depth):
        row = [g[i] for g in groups if i < len(g)]
        counters: Dict[str, int] = {}
        for snap in row:
            for name, value in snap.counters.items():
                counters[name] = counters.get(name, 0) + value
        weights = [float(snap.counters.get(N.WINDOW_OPS, 0)) for snap in row]
        total_weight = sum(weights)
        gauges: Dict[str, float] = {}
        gauge_names = sorted({name for snap in row for name in snap.gauges})
        for name in gauge_names:
            num = 0.0
            denom = 0.0
            for snap, weight in zip(row, weights):
                if name not in snap.gauges:
                    continue
                value = snap.gauges[name]
                if not math.isfinite(value):
                    continue
                w = weight if total_weight > 0 else 1.0
                num += value * w
                denom += w
            if denom > 0:
                gauges[name] = num / denom
        merged.append(
            WindowSnapshot(
                index=max(snap.index for snap in row),
                ts_us=max(snap.ts_us for snap in row),
                counters=counters,
                gauges=gauges,
            )
        )
    return merged


def merge_registries(registries: Iterable[MetricsRegistry]) -> Tuple[
    List[WindowSnapshot], Dict[str, int]
]:
    """Fleet view of several registries: merged windows + summed counters."""
    regs = list(registries)
    windows = merge_window_snapshots([r.windows for r in regs])
    counters: Dict[str, int] = {}
    for reg in regs:
        for name, value in reg._counters.items():
            counters[name] = counters.get(name, 0) + value
    return windows, counters


def export_fleet_metrics(
    registries: Sequence[MetricsRegistry], path: str
) -> None:
    """Write a fleet-level metrics.jsonl reduced from per-shard registries.

    Same line format as :meth:`MetricsRegistry.export_jsonl`, so the
    report renderer and schema validator read a fleet file exactly like
    a single-shard one: windows are position-joined merges, counters
    sum, histograms merge bucket-wise, and totals gauges come from the
    last merged window (a point-in-time value has no meaningful sum).
    """
    windows, counters = merge_registries(registries)
    histograms: Dict[str, Histogram] = {}
    for reg in registries:
        for name, hist in reg._histograms.items():
            merged = histograms.get(name)
            if merged is None:
                merged = histograms[name] = Histogram(
                    growth=hist._growth, min_value=hist._min_value
                )
            merged.merge(hist)
    totals: Dict[str, object] = {
        "type": "totals",
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(windows[-1].gauges.items())) if windows else {},
        "histograms": {
            name: hist.to_dict() for name, hist in sorted(histograms.items())
        },
    }
    with open(path, "w") as fh:
        fh.write(json.dumps({"type": "meta", "kind": "metrics", "version": 1}) + "\n")
        for snap in windows:
            fh.write(json.dumps(snap.to_dict()) + "\n")
        fh.write(json.dumps(totals) + "\n")
