"""Registered metric-name and event-kind constants (the obs vocabulary).

Every instrumentation site in the simulator records against a constant
defined here — never an inline string (lint rule OBS001 enforces this).
Central registration buys three things:

* typos become import errors instead of silently forked time series;
* the export schema is closed: a consumer can enumerate every metric a
  run may emit (``python -m repro report --list-metrics``);
* each metric carries its kind (counter / gauge / histogram), so the
  registry can reject kind-mismatched recordings at the call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ObsError

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

_KINDS = (COUNTER, GAUGE, HISTOGRAM)


@dataclass(frozen=True)
class MetricSpec:
    """One registered metric: its stable name, kind, and documentation."""

    name: str
    kind: str
    description: str


#: ``name -> spec`` for every metric the subsystem may record.
METRICS: Dict[str, MetricSpec] = {}


def register(name: str, kind: str, description: str) -> str:
    """Register a metric constant; returns the name for assignment.

    Called at import time by this module (and by extensions adding their
    own metrics); duplicate names and unknown kinds are configuration
    errors, caught immediately rather than at first recording.
    """
    if kind not in _KINDS:
        raise ObsError(f"unknown metric kind {kind!r} for {name!r}")
    if name in METRICS:
        raise ObsError(f"metric {name!r} registered twice")
    METRICS[name] = MetricSpec(name, kind, description)
    return name


def spec_of(name: str) -> MetricSpec:
    """Look up a registered metric; raises ObsError on unknown names."""
    try:
        return METRICS[name]
    except KeyError:
        raise ObsError(
            f"unregistered metric name {name!r}; add it to repro.obs.names"
        ) from None


# -- per-window workload counters (exported at each window seal) -------------

WINDOW_OPS = register("window.ops", COUNTER, "operations completed")
WINDOW_POINTS = register("window.points", COUNTER, "point lookups")
WINDOW_SCANS = register("window.scans", COUNTER, "range scans")
WINDOW_WRITES = register("window.writes", COUNTER, "puts")
WINDOW_DELETES = register("window.deletes", COUNTER, "deletes")
WINDOW_IO_MISS = register(
    "window.io_miss", COUNTER, "query-path disk block reads"
)

# -- cache outcome counters ---------------------------------------------------

RANGE_HITS = register("cache.range.hits", COUNTER, "range-cache hits (point+scan)")
RANGE_EVICTIONS = register("cache.range.evictions", COUNTER, "range-cache evictions")
RANGE_INSERTIONS = register("cache.range.insertions", COUNTER, "range-cache insertions")
RANGE_REJECTIONS = register(
    "cache.range.rejections", COUNTER, "range-cache admission rejections"
)
BLOCK_HITS = register("cache.block.hits", COUNTER, "block-cache hits")
BLOCK_MISSES = register("cache.block.misses", COUNTER, "block-cache misses")
BLOCK_EVICTIONS = register("cache.block.evictions", COUNTER, "block-cache evictions")
BLOCK_REJECTIONS = register(
    "cache.block.rejections", COUNTER, "block-cache scan-admission rejections"
)

# -- shared second-tier (L2) cache counters -----------------------------------
# Per-shard flow counters are folded by each shard's engine from its
# tier2 client; fleet-level ghost/eviction counters are folded by the
# serving simulator from the shared cache (single writer each way).

L2_HITS = register("cache.l2.hits", COUNTER, "shared-L2 hits on L1 misses")
L2_MISSES = register("cache.l2.misses", COUNTER, "shared-L2 misses (went to disk)")
L2_DEMOTIONS = register(
    "cache.l2.demotions", COUNTER, "L1 victims offered to the shared L2"
)
L2_ADMITS = register(
    "cache.l2.admits", COUNTER, "demoted blocks admitted by the double-hit filter"
)
L2_REJECTS = register(
    "cache.l2.rejects", COUNTER, "demoted blocks rejected by the double-hit filter"
)
L2_GHOST_HITS_RECENCY = register(
    "cache.l2.ghost_hits.recency", COUNTER, "admissions proven by a B1 ghost hit"
)
L2_GHOST_HITS_FREQUENCY = register(
    "cache.l2.ghost_hits.frequency", COUNTER, "admissions proven by a B2 ghost hit"
)
L2_EVICTIONS = register(
    "cache.l2.evictions", COUNTER, "shared-L2 evictions into the ghost lists"
)

# -- admission-control decision counters -------------------------------------

ADMIT_POINT_ACCEPTED = register(
    "admission.point.accepted", COUNTER, "point results admitted to the range cache"
)
ADMIT_POINT_REJECTED = register(
    "admission.point.rejected", COUNTER, "point results rejected by frequency admission"
)
ADMIT_SCAN_FULL = register(
    "admission.scan.full", COUNTER, "scan results fully admitted"
)
ADMIT_SCAN_PARTIAL = register(
    "admission.scan.partial", COUNTER, "scan results partially admitted"
)
ADMIT_SCAN_REJECTED = register(
    "admission.scan.rejected", COUNTER, "scan results rejected outright"
)

# -- LSM structural counters --------------------------------------------------

LSM_FLUSHES = register("lsm.flushes", COUNTER, "MemTable flushes to L0")
LSM_COMPACTIONS = register("lsm.compactions", COUNTER, "compactions run")
LSM_BLOCKS_INVALIDATED = register(
    "lsm.blocks_invalidated", COUNTER, "cached-block identities destroyed by compaction"
)
LSM_WRITE_SLOWDOWNS = register(
    "lsm.write_slowdowns", COUNTER, "L0-pressure write slowdowns"
)

# -- fault / resilience counters ---------------------------------------------

FAULT_TRANSIENT = register(
    "fault.transient", COUNTER, "injected transient read errors"
)
FAULT_CORRUPTION = register(
    "fault.corruption", COUNTER, "injected block corruptions"
)
FAULT_TORN_WAL = register("fault.torn_wal", COUNTER, "injected torn WAL appends")
FAULT_BLACKOUT = register(
    "fault.blackout", COUNTER, "controller stats windows poisoned"
)
FAULT_RETRIES = register("fault.retries", COUNTER, "read attempts retried")
FAULT_REPAIRS = register("fault.repairs", COUNTER, "block corruption repairs")
ENGINE_CRASHES = register(
    "engine.crashes", COUNTER, "simulated crash/recover cycles"
)

# -- fleet-resilience counters (serving layer) -------------------------------

SERVE_SHED_DEADLINE = register(
    "serve.shed.deadline", COUNTER, "sub-requests shed expired on dequeue"
)
SERVE_SHED_BREAKER = register(
    "serve.shed.breaker", COUNTER, "sub-requests refused by an open circuit breaker"
)
SERVE_SHED_DEGRADED = register(
    "serve.shed.degraded", COUNTER, "requests shed by the degradation ladder"
)
SERVE_CRASHES = register(
    "serve.shard.crashes", COUNTER, "shard executors killed by the fleet fault plan"
)
SERVE_PROMOTIONS = register(
    "serve.shard.promotions", COUNTER, "replicas promoted to primary"
)
SERVE_HEDGES = register(
    "serve.hedge.issued", COUNTER, "hedged reads issued to replicas"
)
SERVE_HEDGE_WINS = register(
    "serve.hedge.wins", COUNTER, "requests completed by the hedge first"
)
SERVE_SCANS_PARTIAL = register(
    "serve.scan.partial", COUNTER, "scans completed with explicitly partial results"
)
SERVE_BREAKER_TRANSITIONS = register(
    "serve.breaker.transitions", COUNTER, "circuit-breaker state changes"
)
SERVE_PHASE_TRANSITIONS = register(
    "serve.phase.transitions", COUNTER, "scenario-schedule phase boundaries crossed"
)

# -- controller counters ------------------------------------------------------

CTRL_DECISIONS = register("controller.decisions", COUNTER, "controller windows processed")
CTRL_DEGRADED_WINDOWS = register(
    "controller.degraded_windows", COUNTER, "windows spent pinned to safe defaults"
)

# -- end-of-window gauges -----------------------------------------------------

G_RANGE_OCCUPANCY = register(
    "gauge.range.occupancy", GAUGE, "range-cache used/budget at window end"
)
G_BLOCK_OCCUPANCY = register(
    "gauge.block.occupancy", GAUGE, "block-cache used/budget at window end"
)
G_RANGE_RATIO = register(
    "gauge.split.range_ratio", GAUGE, "range share of the cache budget"
)
G_NUM_LEVELS = register("gauge.lsm.num_levels", GAUGE, "LSM levels in use")
G_LEVEL0_RUNS = register("gauge.lsm.level0_runs", GAUGE, "L0 sorted runs")
G_REWARD = register("gauge.controller.reward", GAUGE, "last window's reward")
G_ACTOR_LR = register(
    "gauge.controller.actor_lr", GAUGE, "adaptive actor learning rate"
)
G_POINT_THRESHOLD = register(
    "gauge.controller.point_threshold", GAUGE, "applied frequency-admission bar"
)
G_SCAN_A = register("gauge.controller.scan_a", GAUGE, "applied partial-admission a")
G_SCAN_B = register("gauge.controller.scan_b", GAUGE, "applied partial-admission b")
G_DEGRADE_LEVEL = register(
    "gauge.serve.degrade_level", GAUGE, "degradation-ladder level in force"
)
G_SCENARIO_PHASE = register(
    "gauge.serve.scenario_phase", GAUGE, "index of the scenario phase in force"
)
G_L2_BUDGET_SHARE = register(
    "gauge.l2.budget_share", GAUGE, "shared-L2 fraction of the fleet cache budget"
)
G_L2_OCCUPANCY = register(
    "gauge.l2.occupancy", GAUGE, "shared-L2 used/budget at the last split decision"
)

# -- histograms (log-bucketed) ------------------------------------------------

H_SCAN_ADMITTED = register(
    "hist.scan.admitted_entries", HISTOGRAM, "entries admitted per scan fill"
)
H_COMPACTION_ENTRIES = register(
    "hist.compaction.entries_in", HISTOGRAM, "entries merged per compaction"
)
H_RETRY_STALL_US = register(
    "hist.fault.retry_stall_us", HISTOGRAM, "per-retry backoff stall (us)"
)
H_WINDOW_IO_MISS = register(
    "hist.window.io_miss", HISTOGRAM, "disk reads per sealed window"
)
H_FAILOVER_US = register(
    "hist.serve.failover_us", HISTOGRAM, "crash-to-promotion recovery time (us)"
)

# -- event kinds (structured trace ring buffer) ------------------------------
# Event kinds are plain constants (no kind registry needed: the schema
# validator accepts exactly this closed set, see repro.obs.schema).

EV_WINDOW = "window"
EV_FLUSH = "flush"
EV_COMPACTION = "compaction"
EV_WRITE_STALL = "write_stall"
EV_CACHE_ADMIT = "cache_admit"
EV_CACHE_REJECT = "cache_reject"
EV_CACHE_EVICT = "cache_evict"
EV_BOUNDARY_MOVE = "boundary_move"
EV_ADMISSION_RETUNE = "admission_retune"
EV_FAULT_TRANSIENT = "fault_transient"
EV_FAULT_CORRUPTION = "fault_corruption"
EV_FAULT_TORN_WAL = "fault_torn_wal"
EV_FAULT_BLACKOUT = "fault_blackout"
EV_RETRY = "retry"
EV_REPAIR = "repair"
EV_CRASH_RECOVER = "crash_recover"
EV_DEGRADED_ENTER = "degraded_enter"
EV_DEGRADED_EXIT = "degraded_exit"
EV_DECISION = "decision"
EV_REBALANCE = "rebalance"
EV_SHARD_CRASH = "shard_crash"
EV_SHARD_PROMOTE = "shard_promote"
EV_BREAKER = "breaker"
EV_HEDGE = "hedge"
EV_DEGRADE = "degrade"
EV_PHASE = "phase_change"
EV_L2_SPLIT = "l2_split"

#: The closed set of event kinds a trace line may carry.
EVENT_KINDS: Tuple[str, ...] = (
    EV_WINDOW,
    EV_FLUSH,
    EV_COMPACTION,
    EV_WRITE_STALL,
    EV_CACHE_ADMIT,
    EV_CACHE_REJECT,
    EV_CACHE_EVICT,
    EV_BOUNDARY_MOVE,
    EV_ADMISSION_RETUNE,
    EV_FAULT_TRANSIENT,
    EV_FAULT_CORRUPTION,
    EV_FAULT_TORN_WAL,
    EV_FAULT_BLACKOUT,
    EV_RETRY,
    EV_REPAIR,
    EV_CRASH_RECOVER,
    EV_DEGRADED_ENTER,
    EV_DEGRADED_EXIT,
    EV_DECISION,
    EV_REBALANCE,
    EV_SHARD_CRASH,
    EV_SHARD_PROMOTE,
    EV_BREAKER,
    EV_HEDGE,
    EV_DEGRADE,
    EV_PHASE,
    EV_L2_SPLIT,
)
