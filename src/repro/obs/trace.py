"""Structured event tracing: a bounded, deterministic ring buffer.

Events are low-rate structural happenings (compactions, flushes,
stalls, admission rejections, fault injections, degraded-mode
transitions) — not per-operation samples.  The buffer is bounded
(``deque(maxlen=...)``) so a pathological run cannot exhaust memory;
overwritten events are counted in ``dropped_total`` and reported in the
export's meta line so truncation is never silent.

Each event carries a monotone sequence number assigned at record time:
engine timestamps are only advanced at window boundaries, so many
events share a ``ts_us`` and the sequence number preserves their exact
order for replay and diffing.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence

from repro.errors import ObsError
from repro.obs.names import EVENT_KINDS

_KNOWN_KINDS = frozenset(EVENT_KINDS)


class TraceEvent(NamedTuple):
    """One ring-buffer slot: ``(seq, ts_us, kind, fields)``."""

    seq: int
    ts_us: float
    kind: str
    fields: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (one ``type: event`` line in events.jsonl)."""
        return {
            "type": "event",
            "seq": self.seq,
            "ts_us": self.ts_us,
            "kind": self.kind,
            "fields": self.fields,
        }


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent` with drop accounting."""

    __slots__ = ("_ring", "capacity", "next_seq", "dropped_total")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ObsError("event trace capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.next_seq = 0
        self.dropped_total = 0

    def record(self, ts_us: float, kind: str, fields: Optional[Dict[str, object]] = None) -> None:
        """Append an event; the oldest is dropped (and counted) when full."""
        if kind not in _KNOWN_KINDS:
            raise ObsError(
                f"unknown event kind {kind!r}; add it to repro.obs.names.EVENT_KINDS"
            )
        if len(self._ring) == self.capacity:
            self.dropped_total += 1
        self._ring.append(TraceEvent(self.next_seq, ts_us, kind, fields or {}))
        self.next_seq += 1

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return list(self._ring)

    def kind_counts(self) -> Dict[str, int]:
        """Buffered events per kind (note: excludes dropped events)."""
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def export_jsonl(self, path: str) -> None:
        """Write events.jsonl: meta line (capacity/drops), then events."""
        with open(path, "w") as fh:
            fh.write(
                json.dumps(
                    {
                        "type": "meta",
                        "kind": "events",
                        "version": 1,
                        "capacity": self.capacity,
                        "recorded": self.next_seq,
                        "dropped": self.dropped_total,
                    }
                )
                + "\n"
            )
            for event in self._ring:
                fh.write(json.dumps(event.to_dict()) + "\n")


def export_fleet_events(traces: Sequence[EventTrace], path: str) -> None:
    """Write a fleet events.jsonl merged from per-shard traces.

    Events interleave by ``(ts_us, shard, seq)`` — per-shard order is
    already total, and shard index breaks cross-shard timestamp ties
    deterministically — then get a fresh fleet-wide sequence number so
    the merged file satisfies the same monotone-``seq`` schema as a
    single-shard export.  Each event's fields gain a ``shard`` key so
    provenance survives the merge.
    """
    merged = [
        (event.ts_us, shard, event.seq, event)
        for shard, trace in enumerate(traces)
        for event in trace.events()
    ]
    merged.sort(key=lambda item: item[:3])
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "meta",
                    "kind": "events",
                    "version": 1,
                    "capacity": sum(t.capacity for t in traces),
                    "recorded": sum(t.next_seq for t in traces),
                    "dropped": sum(t.dropped_total for t in traces),
                }
            )
            + "\n"
        )
        for seq, (ts_us, shard, _, event) in enumerate(merged):
            fh.write(
                json.dumps(
                    {
                        "type": "event",
                        "seq": seq,
                        "ts_us": ts_us,
                        "kind": event.kind,
                        "fields": {**event.fields, "shard": shard},
                    }
                )
                + "\n"
            )
