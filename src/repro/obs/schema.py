"""Hand-rolled validators for the exported JSONL artifacts.

No jsonschema dependency: each validator is a plain function that
returns a list of human-readable problems (empty = valid).  The CI
``obs-smoke`` job and ``repro report --validate`` both run
:func:`validate_export` over an obs directory, so a schema drift
between writer and reader fails loudly in CI instead of silently
producing unreadable artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from repro.obs import names as N
from repro.obs.names import EVENT_KINDS
from repro.obs.recorder import AUDIT_FILE, EVENTS_FILE, MANIFEST_FILE, METRICS_FILE

_KNOWN_EVENT_KINDS = frozenset(EVENT_KINDS)


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_fields(
    obj: Dict[str, Any], spec: Tuple[Tuple[str, Any], ...], where: str
) -> List[str]:
    problems = []
    for key, kind in spec:
        if key not in obj:
            problems.append(f"{where}: missing key {key!r}")
        elif kind is float:
            if not _is_num(obj[key]):
                problems.append(f"{where}: {key!r} must be a number")
        elif not isinstance(obj[key], kind) or (
            kind is int and isinstance(obj[key], bool)
        ):
            problems.append(f"{where}: {key!r} must be {kind.__name__}")
    return problems


def _load_lines(path: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    objs: List[Dict[str, Any]] = []
    problems: List[str] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                problems.append(f"{path}:{line_no}: not valid JSON: {exc}")
                continue
            if not isinstance(obj, dict):
                problems.append(f"{path}:{line_no}: line is not a JSON object")
                continue
            objs.append(obj)
    return objs, problems


def validate_metrics_lines(objs: List[Dict[str, Any]], where: str) -> List[str]:
    """Schema-check parsed metrics.jsonl lines."""
    problems: List[str] = []
    if not objs or objs[0].get("type") != "meta" or objs[0].get("kind") != "metrics":
        problems.append(f"{where}: first line must be the metrics meta line")
        return problems
    saw_totals = False
    last_index = -1
    for i, obj in enumerate(objs[1:], start=2):
        kind = obj.get("type")
        if kind == "window":
            problems += _check_fields(
                obj, (("index", int), ("ts_us", float)), f"{where}:{i}"
            )
            index = obj.get("index")
            if isinstance(index, int):
                if index <= last_index:
                    problems.append(f"{where}:{i}: window index {index} not increasing")
                last_index = index
            for section, want_int in (("counters", True), ("gauges", False)):
                table = obj.get(section)
                if not isinstance(table, dict):
                    problems.append(f"{where}:{i}: {section!r} must be an object")
                    continue
                for name, value in table.items():
                    if name not in N.METRICS:
                        problems.append(f"{where}:{i}: unregistered metric {name!r}")
                    elif want_int and not isinstance(value, int):
                        problems.append(f"{where}:{i}: counter {name!r} must be int")
                    elif not want_int and not _is_num(value):
                        problems.append(f"{where}:{i}: gauge {name!r} must be a number")
        elif kind == "totals":
            saw_totals = True
            for name in obj.get("counters", {}):
                if name not in N.METRICS:
                    problems.append(f"{where}:{i}: unregistered metric {name!r}")
            for name, hist in obj.get("histograms", {}).items():
                if name not in N.METRICS:
                    problems.append(f"{where}:{i}: unregistered metric {name!r}")
                elif not isinstance(hist, dict) or "buckets" not in hist:
                    problems.append(f"{where}:{i}: histogram {name!r} has no buckets")
        else:
            problems.append(f"{where}:{i}: unknown line type {kind!r}")
    if not saw_totals:
        problems.append(f"{where}: missing totals line")
    return problems


def validate_events_lines(objs: List[Dict[str, Any]], where: str) -> List[str]:
    """Schema-check parsed events.jsonl lines."""
    problems: List[str] = []
    if not objs or objs[0].get("type") != "meta" or objs[0].get("kind") != "events":
        problems.append(f"{where}: first line must be the events meta line")
        return problems
    last_seq = -1
    for i, obj in enumerate(objs[1:], start=2):
        if obj.get("type") != "event":
            problems.append(f"{where}:{i}: unknown line type {obj.get('type')!r}")
            continue
        problems += _check_fields(
            obj, (("seq", int), ("ts_us", float), ("kind", str)), f"{where}:{i}"
        )
        kind = obj.get("kind")
        if isinstance(kind, str) and kind not in _KNOWN_EVENT_KINDS:
            problems.append(f"{where}:{i}: unknown event kind {kind!r}")
        seq = obj.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                problems.append(f"{where}:{i}: seq {seq} not increasing")
            last_seq = seq
        if not isinstance(obj.get("fields"), dict):
            problems.append(f"{where}:{i}: 'fields' must be an object")
    return problems


def validate_audit_lines(objs: List[Dict[str, Any]], where: str) -> List[str]:
    """Schema-check parsed audit.jsonl lines."""
    problems: List[str] = []
    if not objs or objs[0].get("type") != "header":
        problems.append(f"{where}: first line must be the audit header")
        return problems
    header = objs[0]
    for key in ("config", "entries_per_block", "level0_max_runs"):
        if key not in header:
            problems.append(f"{where}: header missing {key!r}")
    for i, obj in enumerate(objs[1:], start=2):
        if obj.get("type") != "decision":
            problems.append(f"{where}:{i}: unknown line type {obj.get('type')!r}")
            continue
        problems += _check_fields(
            obj,
            (
                ("ts_us", float),
                ("window", dict),
                ("applied", dict),
                ("reward", float),
                ("trend", float),
                ("h_estimate", float),
                ("h_smoothed", float),
                ("actor_lr", float),
                ("degraded", bool),
            ),
            f"{where}:{i}",
        )
        applied = obj.get("applied")
        if isinstance(applied, dict):
            for key in ("range_ratio", "point_threshold", "scan_a", "scan_b"):
                if not _is_num(applied.get(key)):
                    problems.append(f"{where}:{i}: applied.{key!r} must be a number")
    return problems


def validate_export(directory: str) -> List[str]:
    """Validate a whole obs export directory; returns all problems."""
    problems: List[str] = []
    manifest_path = os.path.join(directory, MANIFEST_FILE)
    if not os.path.exists(manifest_path):
        problems.append(f"{directory}: missing {MANIFEST_FILE}")
    for filename, validator, required in (
        (METRICS_FILE, validate_metrics_lines, True),
        (EVENTS_FILE, validate_events_lines, True),
        (AUDIT_FILE, validate_audit_lines, False),
    ):
        path = os.path.join(directory, filename)
        if not os.path.exists(path):
            if required:
                problems.append(f"{directory}: missing {filename}")
            continue
        objs, parse_problems = _load_lines(path)
        problems += parse_problems
        if not parse_problems:
            problems += validator(objs, filename)
    return problems
