"""Render a human-readable run summary from exported obs artifacts.

``repro report <obs-dir>`` reads the JSONL files an
:class:`~repro.obs.recorder.ObsRecorder` exported and prints:

* a per-window time series (ops, block/range hit rate, range split,
  reward, degraded flag) — the run's internal trajectory;
* lifetime counter totals and histogram summaries;
* the top trace-event kinds, with drop accounting;
* an audit summary (decisions, degraded windows, reward trend).

Long runs are subsampled to a bounded number of rows (first, last, and
evenly spaced between); the header always states how many windows the
table covers so truncation is visible.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.bench.report import format_table
from repro.errors import ObsError
from repro.obs import names as N
from repro.obs.recorder import AUDIT_FILE, EVENTS_FILE, METRICS_FILE


def _read_jsonl(path: str) -> List[Dict[str, Any]]:
    objs = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                objs.append(json.loads(line))
    return objs


def _pick_rows(count: int, limit: int) -> List[int]:
    """Indices to display: all when short, else evenly spaced incl. ends."""
    if count <= limit:
        return list(range(count))
    step = (count - 1) / (limit - 1)
    picked = {round(i * step) for i in range(limit)}
    return sorted(picked)


def _hit_rate(hits: int, total: int) -> float:
    return hits / total if total else 0.0


def window_series_table(
    windows: List[Dict[str, Any]], max_rows: int = 24
) -> str:
    """The per-window trajectory table from metrics.jsonl window lines."""
    if not windows:
        return "(no sealed windows)"
    rows = []
    for i in _pick_rows(len(windows), max_rows):
        w = windows[i]
        counters = w.get("counters", {})
        gauges = w.get("gauges", {})
        points = counters.get(N.WINDOW_POINTS, 0)
        scans = counters.get(N.WINDOW_SCANS, 0)
        block_hits = counters.get(N.BLOCK_HITS, 0)
        block_misses = counters.get(N.BLOCK_MISSES, 0)
        rows.append(
            [
                str(w.get("index", i)),
                f"{counters.get(N.WINDOW_OPS, 0):,}",
                f"{_hit_rate(counters.get(N.RANGE_HITS, 0), points + scans):.3f}",
                f"{_hit_rate(block_hits, block_hits + block_misses):.3f}",
                f"{counters.get(N.WINDOW_IO_MISS, 0):,}",
                f"{gauges.get(N.G_RANGE_RATIO, 0.0):.3f}",
                f"{gauges.get(N.G_REWARD, 0.0):+.4f}",
                f"{gauges.get(N.G_ACTOR_LR, 0.0):.2e}",
            ]
        )
    header = [
        "window", "ops", "range hit", "block hit", "io miss",
        "split", "reward", "actor lr",
    ]
    title = f"== per-window trajectory ({min(len(windows), max_rows)} of {len(windows)} windows) =="
    return title + "\n" + format_table(header, rows)


def totals_table(totals: Dict[str, Any]) -> str:
    """Lifetime counters + histogram summaries from the totals line."""
    lines = []
    counters = totals.get("counters", {})
    if counters:
        rows = [[name, f"{value:,}"] for name, value in sorted(counters.items())]
        lines.append("== lifetime counters ==\n" + format_table(["counter", "total"], rows))
    histograms = totals.get("histograms", {})
    if histograms:
        rows = []
        for name, hist in sorted(histograms.items()):
            count = hist.get("count", 0)
            mean = hist.get("total", 0.0) / count if count else 0.0
            rows.append([name, f"{count:,}", f"{mean:,.1f}", f"{hist.get('max', 0.0):,.1f}"])
        lines.append(
            "== histograms ==\n" + format_table(["histogram", "count", "mean", "max"], rows)
        )
    return "\n\n".join(lines)


def events_table(objs: List[Dict[str, Any]], top: int = 12) -> str:
    """Top event kinds (count + last timestamp) from events.jsonl."""
    meta = objs[0] if objs else {}
    counts: Dict[str, int] = {}
    last_ts: Dict[str, float] = {}
    for obj in objs[1:]:
        kind = obj.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
        last_ts[kind] = obj.get("ts_us", 0.0)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    rows = [
        [kind, f"{count:,}", f"{last_ts[kind]:,.0f}"] for kind, count in ranked
    ]
    dropped = meta.get("dropped", 0)
    note = (
        f" (ring buffer dropped {dropped:,} of {meta.get('recorded', 0):,} events)"
        if dropped
        else ""
    )
    body = format_table(["event kind", "count", "last ts_us"], rows) if rows else "(no events)"
    return f"== top events{note} ==\n" + body


def audit_summary(objs: List[Dict[str, Any]]) -> str:
    """Decision counts + reward trend from audit.jsonl."""
    decisions = [o for o in objs if o.get("type") == "decision"]
    if not decisions:
        return "== audit ==\n(no decisions recorded)"
    degraded = sum(1 for d in decisions if d.get("degraded"))
    rewards = [float(d.get("reward", 0.0)) for d in decisions]
    n = len(rewards)
    head = sum(rewards[: max(1, n // 4)]) / max(1, n // 4)
    tail = sum(rewards[-max(1, n // 4):]) / max(1, n // 4)
    first, last = decisions[0]["applied"], decisions[-1]["applied"]
    return (
        "== audit ==\n"
        f"decisions: {n}  degraded windows: {degraded}\n"
        f"reward: first-quartile mean {head:+.4f} -> last-quartile mean {tail:+.4f}\n"
        f"split: {first['range_ratio']:.3f} -> {last['range_ratio']:.3f}   "
        f"threshold: {first['point_threshold']:.4f} -> {last['point_threshold']:.4f}   "
        f"a: {first['scan_a']:.1f} -> {last['scan_a']:.1f}   "
        f"b: {first['scan_b']:.3f} -> {last['scan_b']:.3f}"
    )


def render_report(directory: str, max_rows: int = 24) -> str:
    """Full report text for one exported obs directory."""
    metrics_path = os.path.join(directory, METRICS_FILE)
    if not os.path.exists(metrics_path):
        raise ObsError(f"{directory}: no {METRICS_FILE}; not an obs export directory")
    metrics = _read_jsonl(metrics_path)
    windows = [o for o in metrics if o.get("type") == "window"]
    totals: Optional[Dict[str, Any]] = next(
        (o for o in metrics if o.get("type") == "totals"), None
    )
    sections = [window_series_table(windows, max_rows=max_rows)]
    if totals:
        section = totals_table(totals)
        if section:
            sections.append(section)
    events_path = os.path.join(directory, EVENTS_FILE)
    if os.path.exists(events_path):
        sections.append(events_table(_read_jsonl(events_path)))
    audit_path = os.path.join(directory, AUDIT_FILE)
    if os.path.exists(audit_path):
        sections.append(audit_summary(_read_jsonl(audit_path)))
    return "\n\n".join(sections)


def list_metrics() -> str:
    """One line per registered metric (``repro report --list-metrics``)."""
    rows = [
        [spec.name, spec.kind, spec.description]
        for spec in sorted(N.METRICS.values(), key=lambda s: (s.kind, s.name))
    ]
    return format_table(["metric", "kind", "description"], rows)
