"""Recorder facade: the one object instrumentation sites talk to.

Two implementations share an interface:

* :class:`NullRecorder` — the default on every engine.  ``enabled`` is
  ``False`` and every method is a no-op, so instrumented code guards
  with ``if recorder.enabled:`` and pays a single attribute read on the
  disabled path.  This is what keeps the determinism golden digest and
  the perf-smoke gate untouched when observability is off.
* :class:`ObsRecorder` — owns a :class:`~repro.obs.metrics.MetricsRegistry`,
  an :class:`~repro.obs.trace.EventTrace`, and a
  :class:`~repro.obs.audit.DecisionAudit`, and carries the sim-clock
  timestamp (``now_us``) that every recording is stamped with.  The
  clock only moves via :meth:`ObsRecorder.advance_to` — the engine
  advances it from its obs sim clock at window boundaries, the serving
  simulator from the event loop's virtual time — so exports are
  deterministic and wall-time never leaks in (lint rule SIM001).

One recorder instruments one engine (one shard).  Fleet-wide views are
built by merging exported registries
(:func:`repro.obs.metrics.merge_window_snapshots`), never by sharing a
recorder across shards.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Union

from repro.obs.audit import DecisionAudit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import EventTrace

#: Exported artifact filenames inside an obs directory.
METRICS_FILE = "metrics.jsonl"
EVENTS_FILE = "events.jsonl"
AUDIT_FILE = "audit.jsonl"
MANIFEST_FILE = "manifest.json"


class NullRecorder:
    """Disabled recorder: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False

    def advance_to(self, ts_us: float) -> None:
        """No-op."""

    def inc(self, name: str, amount: int = 1) -> None:
        """No-op."""

    def set_gauge(self, name: str, value: float) -> None:
        """No-op."""

    def observe(self, name: str, value: float) -> None:
        """No-op."""

    def event(self, kind: str, **fields: object) -> None:
        """No-op."""

    def end_window(self, index: int) -> None:
        """No-op."""


#: Shared disabled recorder; stateless, so one instance serves everyone.
NULL_RECORDER = NullRecorder()


class ObsRecorder:
    """Live recorder: registry + trace + audit on one sim-clock timeline."""

    __slots__ = ("metrics", "trace", "audit", "now_us")

    enabled = True

    def __init__(self, trace_capacity: int = 4096) -> None:
        self.metrics = MetricsRegistry()
        self.trace = EventTrace(capacity=trace_capacity)
        self.audit = DecisionAudit()
        self.now_us = 0.0

    def advance_to(self, ts_us: float) -> None:
        """Move the recorder's clock forward (monotone; never backward)."""
        if ts_us > self.now_us:
            self.now_us = ts_us

    def inc(self, name: str, amount: int = 1) -> None:
        """Add to a registered counter."""
        self.metrics.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a registered gauge."""
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Fold a sample into a registered histogram."""
        self.metrics.observe(name, value)

    def event(self, kind: str, **fields: object) -> None:
        """Record a trace event at the current sim time."""
        self.trace.record(self.now_us, kind, fields)

    def end_window(self, index: int) -> None:
        """Seal the metric window for ``index`` at the current sim time."""
        self.metrics.snapshot_window(index, self.now_us)

    def export(self, directory: str) -> Dict[str, str]:
        """Write all artifacts into ``directory``; returns name -> path.

        The manifest ties the three JSONL files together and records
        the final sim time, so a report consumer can sanity-check it is
        looking at one coherent run.
        """
        os.makedirs(directory, exist_ok=True)
        paths = {
            "metrics": os.path.join(directory, METRICS_FILE),
            "events": os.path.join(directory, EVENTS_FILE),
        }
        self.metrics.export_jsonl(paths["metrics"])
        self.trace.export_jsonl(paths["events"])
        if self.audit.header is not None:
            paths["audit"] = os.path.join(directory, AUDIT_FILE)
            self.audit.export_jsonl(paths["audit"])
        manifest = {
            "version": 1,
            "final_ts_us": self.now_us,
            "windows": len(self.metrics.windows),
            "events_recorded": self.trace.next_seq,
            "events_dropped": self.trace.dropped_total,
            "decisions": len(self.audit.records),
            "files": sorted(os.path.basename(p) for p in paths.values()),
        }
        manifest_path = os.path.join(directory, MANIFEST_FILE)
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths["manifest"] = manifest_path
        return paths


#: Annotation for instrumented components: either implementation fits.
Recorder = Union[NullRecorder, ObsRecorder]
