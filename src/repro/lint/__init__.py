"""repro-lint: repo-specific static analysis for the simulator.

A small AST lint pass (stdlib :mod:`ast` only — no third-party
dependency) that enforces the repository's simulation discipline on top
of what generic linters check:

* determinism — randomness must flow through injected seeded
  ``random.Random`` instances and time through the sim clock (SIM001);
* metering — every simulated-disk read path must charge the I/O
  counters the sim clock's cost model consumes (SIM002);
* sanitizer coverage — every cache container must implement the
  runtime invariant protocol (CACHE001);

plus a few generic hygiene rules (MUT001, EXC001, SLOT001).

Run it with ``python -m repro.lint [paths]`` or ``repro lint``; suppress
a single finding with a ``# lint: disable=RULE`` comment on the
offending line.
"""

from repro.lint.rules import ALL_RULES, Violation
from repro.lint.runner import lint_paths, main

__all__ = ["ALL_RULES", "Violation", "lint_paths", "main"]
