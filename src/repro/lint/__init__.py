"""repro-lint: whole-program static analysis for the simulator.

A multi-pass lint engine (stdlib :mod:`ast` only — no third-party
dependency) enforcing the repository's simulation discipline on top of
what generic linters check.  Pass 1 parses every file (through a
content-hash AST cache) into a project-wide symbol table and call
graph; pass 2 runs two rule sets over it:

* **syntactic, per-module** (:mod:`repro.lint.rules`) — determinism
  imports (SIM001), metered disk reads (SIM002), sanitizer coverage
  (CACHE001), retry discipline (EXC002), hot-path numpy use (PERF001),
  metric-name constants (OBS001), plus generic hygiene (MUT001,
  EXC001, SLOT001, DET003, OWN003);
* **whole-program, flow-aware** (:mod:`repro.lint.passes`) — ambient
  nondeterminism reachable from serve/engine entry points through any
  number of cross-module calls (DET001), unordered set iteration
  flowing into ordering-sensitive sinks (DET002), module-level mutable
  state shared across serving components (OWN001), and global
  single-writer metric-counter ownership (OWN002).

Run it with ``python -m repro.lint [paths]`` or ``repro lint``.
Suppress findings with ``# lint: disable=RULE`` (same line),
``# lint: disable-next=RULE`` (following line), or
``# lint: disable-file=RULE``; accept a legacy backlog with a
checked-in baseline (``--baseline lint-baseline.json``).  Reports are
text, ``--format json``, or SARIF (``--sarif lint.sarif``); see
``docs/static_analysis.md`` for the full catalogue and workflow.
"""

from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.passes import (
    WHOLE_PROGRAM_RULES,
    Project,
    build_project,
    run_whole_program_rules,
)
from repro.lint.rules import ALL_RULES, RULE_METADATA, Violation
from repro.lint.runner import LintEngine, lint_file, lint_paths, main
from repro.lint.sarif import to_sarif, validate_sarif
from repro.lint.symbols import AstCache, SymbolTable, build_symbol_table

__all__ = [
    "ALL_RULES",
    "AstCache",
    "CallGraph",
    "LintEngine",
    "Project",
    "RULE_METADATA",
    "SymbolTable",
    "Violation",
    "WHOLE_PROGRAM_RULES",
    "build_call_graph",
    "build_project",
    "build_symbol_table",
    "lint_file",
    "lint_paths",
    "main",
    "run_whole_program_rules",
    "to_sarif",
    "validate_sarif",
]
