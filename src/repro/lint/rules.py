"""Syntactic lint rules: per-module simulation discipline + hygiene.

Each rule is a function from a parsed module to an iterator of
:class:`Violation` s, registered under a stable rule id via the
:func:`rule` decorator.  Rule docstrings are the user-facing
documentation (``python -m repro.lint --list-rules`` prints them).

These rules see one file at a time.  The whole-program rule families
(DET0xx nondeterminism taint, OWN0xx shared-state ownership) live in
:mod:`repro.lint.passes` and run over the project symbol table and
call graph instead; both registries share the :class:`RuleMeta`
catalogue here so ``--list-rules`` and ``--select`` treat them
uniformly.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Modules whose ambient state would break run-to-run determinism.
_NONDETERMINISTIC_MODULES = ("random", "time", "datetime")

#: Class-name pattern for hot-path linked-structure nodes (SLOT001).
_NODE_CLASS_RE = re.compile(r"^_?[A-Za-z0-9_]*Node$")

#: Comment marker naming the simulator's per-op functions (PERF001).
_HOT_PATH_MARKER = "# hot-path"

#: Names numpy is imported as (PERF001).
_NUMPY_ALIASES = ("np", "numpy")

#: Counters a metered disk read path must charge (SIM002).
_METER_COUNTERS = ("block_reads_total", "bytes_read_total")

#: Recording methods whose first argument must be a registered
#: metric/event-kind constant from :mod:`repro.obs.names` (OBS001).
_OBS_RECORDING_METHODS = ("inc", "set_gauge", "observe", "event")


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


RuleFunc = Callable[[ast.Module, str], Iterator[Violation]]

#: Registry of ``rule_id -> checker`` in registration order (the
#: per-module, syntactic rules only).
ALL_RULES: Dict[str, RuleFunc] = {}

#: Analysis scope markers shown by ``--list-rules``.
SCOPE_SYNTACTIC = "syntactic"
SCOPE_WHOLE_PROGRAM = "whole-program"


@dataclass(frozen=True)
class RuleMeta:
    """Catalogue entry for one rule, syntactic or whole-program."""

    rule_id: str
    family: str
    scope: str
    doc: str

    @property
    def summary(self) -> str:
        """First docstring line, for compact listings."""
        return self.doc.strip().splitlines()[0] if self.doc else ""


#: Every known rule's metadata, both registries (id -> meta).
RULE_METADATA: Dict[str, RuleMeta] = {}


def rule_family(rule_id: str) -> str:
    """``DET001`` -> ``DET``: the catalogue family prefix."""
    return rule_id.rstrip("0123456789")


def register_meta(rule_id: str, scope: str, doc: str) -> None:
    """Add a rule to the shared catalogue (used by both registries)."""
    RULE_METADATA[rule_id] = RuleMeta(
        rule_id, rule_family(rule_id), scope, (doc or "").strip()
    )


def rule(rule_id: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register a syntactic (per-module) checker under ``rule_id``."""

    def register(func: RuleFunc) -> RuleFunc:
        ALL_RULES[rule_id] = func
        register_meta(rule_id, SCOPE_SYNTACTIC, func.__doc__ or "")
        return func

    return register


def _base_names(cls: ast.ClassDef) -> List[str]:
    """Textual names of a class's bases (``Name`` or dotted ``Attribute``)."""
    names: List[str] = []
    for base in cls.bases:
        node = base
        # Unwrap subscripts like EvictionPolicy[K].
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _own_methods(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    return [n for n in cls.body if isinstance(n, ast.FunctionDef)]


@rule("SIM001")
def check_nondeterministic_imports(
    tree: ast.Module, path: str
) -> Iterator[Violation]:
    """Ban ambient nondeterminism: no ``random``/``time``/``datetime``.

    Determinism is the simulator's core property: the same seed must
    reproduce a run byte-for-byte.  Randomness therefore flows through
    per-instance seeded ``random.Random`` objects (``from random import
    Random`` is the one sanctioned form) or ``numpy`` generators, and
    simulated time through the sim clock's cost model — never through
    the wall clock.  Importing these modules wholesale makes the easy
    path (``random.random()``, ``time.time()``) the wrong one.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _NONDETERMINISTIC_MODULES:
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "SIM001",
                        f"import of {alias.name!r} invites ambient "
                        f"nondeterminism; inject a seeded Random (from "
                        f"random import Random) or use the sim clock",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports never target stdlib
                continue
            root = (node.module or "").split(".")[0]
            if root == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield Violation(
                            path,
                            node.lineno,
                            node.col_offset,
                            "SIM001",
                            f"from random import {alias.name} bypasses "
                            f"seeded-instance discipline; import only "
                            f"Random and seed it explicitly",
                        )
            elif root in ("time", "datetime"):
                yield Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "SIM001",
                    f"import from {root!r} reads the wall clock; "
                    f"simulated time must come from the sim clock",
                )


@rule("SIM002")
def check_metered_disk_reads(tree: ast.Module, path: str) -> Iterator[Violation]:
    """Every simulated-disk read path must charge the I/O meters.

    The sim clock derives latency from ``block_reads_total`` and
    ``bytes_read_total``; a ``read_*`` method on a ``*Disk`` class that
    returns data without bumping both counters produces I/O the clock
    never sees, silently skewing every latency figure downstream.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and "Disk" in node.name):
            continue
        for method in _own_methods(node):
            if not method.name.startswith("read_"):
                continue
            charged = set()
            for sub in ast.walk(method):
                targets: Tuple[ast.expr, ...] = ()
                if isinstance(sub, ast.AugAssign):
                    targets = (sub.target,)
                elif isinstance(sub, ast.Assign):
                    targets = tuple(sub.targets)
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in _METER_COUNTERS
                    ):
                        charged.add(target.attr)
            missing = [c for c in _METER_COUNTERS if c not in charged]
            if missing:
                yield Violation(
                    path,
                    method.lineno,
                    method.col_offset,
                    "SIM002",
                    f"{node.name}.{method.name} never charges "
                    f"{'/'.join('self.' + m for m in missing)}; unmetered "
                    f"reads are invisible to the sim clock",
                )


#: Bases whose direct subclasses must own a ``check_invariants`` body
#: (CACHE001): cache containers and budget-holding serving components.
_INVARIANT_BASES = ("CacheBase", "ServeComponent")


@rule("CACHE001")
def check_cache_invariant_protocol(
    tree: ast.Module, path: str
) -> Iterator[Violation]:
    """``CacheBase``/``ServeComponent`` subclasses must implement
    ``check_invariants``.

    The runtime sanitizer (:mod:`repro.sanitize`) sweeps caches — and
    the serving layer's budget holders (bounded request queues, the
    global budget arbiter) — through ``check_invariants()``; a subclass
    inheriting a parent's check silently skips its own bookkeeping
    (shard routing, interval tracking, flow conservation, share
    accounting), so each direct subclass must define the method in its
    own body.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = _base_names(node)
        matched = [b for b in _INVARIANT_BASES if b in bases]
        if not matched or node.name in _INVARIANT_BASES:
            continue
        if not any(m.name == "check_invariants" for m in _own_methods(node)):
            kind = (
                "cache container"
                if "CacheBase" in matched
                else "serving component"
            )
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "CACHE001",
                f"{kind} {node.name} does not define "
                f"check_invariants(); the runtime sanitizer cannot "
                f"verify its bookkeeping",
            )


@rule("MUT001")
def check_mutable_default_args(tree: ast.Module, path: str) -> Iterator[Violation]:
    """No mutable default arguments.

    A ``list``/``dict``/``set`` default is evaluated once at definition
    time and shared across calls — classic state leakage between
    supposedly independent simulator components.  Use ``None`` and
    construct inside the function.
    """
    mutable_calls = {"list", "dict", "set"}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            is_mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_calls
            )
            if is_mutable:
                yield Violation(
                    path,
                    default.lineno,
                    default.col_offset,
                    "MUT001",
                    f"mutable default argument in {node.name}(); use None "
                    f"and construct inside the body",
                )


@rule("EXC001")
def check_bare_except(tree: ast.Module, path: str) -> Iterator[Violation]:
    """No bare ``except:`` clauses.

    A bare except swallows ``KeyboardInterrupt``/``SystemExit`` and —
    worse here — :class:`~repro.errors.InvariantError`, turning a
    sanitizer-detected corruption into a silently absorbed event.
    Catch a concrete exception type.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "EXC001",
                "bare except swallows InvariantError and interrupts; "
                "catch a concrete exception type",
            )


#: Accumulator-name pattern that counts as charging simulated time
#: (EXC002): latency/stall counters in simulated microseconds.
_SIM_CHARGE_RE = re.compile(r"(_us\b|_us_|latency|stall)")


def _charges_sim_time(loop: ast.While) -> bool:
    """Whether ``loop`` accumulates simulated time anywhere in its body.

    Charging = augmented assignment to a ``*_us``/``*latency*``/
    ``*stall*`` counter, or a ``.charge(...)`` method call.
    """
    for sub in ast.walk(loop):
        if isinstance(sub, ast.AugAssign):
            target = sub.target
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else ""
            )
            if _SIM_CHARGE_RE.search(name):
                return True
        elif isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr.startswith("charge"):
                return True
    return False


def _handler_retries(handler: ast.ExceptHandler) -> bool:
    """Whether ``handler`` can fall through and re-run the loop body.

    A handler whose *last* statement unconditionally leaves the loop
    (``raise``/``return``/``break``) is an escape hatch, not a retry.
    """
    if not handler.body:
        return True
    last = handler.body[-1]
    return not isinstance(last, (ast.Raise, ast.Return, ast.Break))


def _handler_is_bounded(handler: ast.ExceptHandler) -> bool:
    """Whether a retrying handler carries a conditional escape.

    The bounded form is a budget check that re-raises (or returns or
    breaks) when attempts are exhausted — i.e. the
    :class:`~repro.faults.retry.RetryPolicy` shape.  Statically: some
    ``raise``/``return``/``break`` must exist inside the handler.
    """
    return any(
        isinstance(sub, (ast.Raise, ast.Return, ast.Break))
        for sub in ast.walk(handler)
    )


@rule("EXC002")
def check_retry_loop_discipline(tree: ast.Module, path: str) -> Iterator[Violation]:
    """Retry loops must be bounded and sim-clock charged.

    A ``while True`` loop that catches an exception and goes around
    again is a retry loop.  Two failure modes hide there: an *unbounded*
    loop turns a persistent fault into a hang, and an *uncharged* one
    retries for free in simulated time, hiding fault latency from every
    histogram downstream.  Each retrying handler must therefore contain
    a conditional escape (``raise``/``return``/``break`` behind an
    attempt-budget check — the :class:`~repro.faults.retry.RetryPolicy`
    shape), and the loop must charge simulated time (an accumulating
    ``*_us``/``*latency*``/``*stall*`` counter or a ``.charge()`` call).
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.While):
            continue
        test = node.test
        infinite = isinstance(test, ast.Constant) and bool(test.value)
        if not infinite:
            continue  # a real condition bounds the loop on its own terms
        retrying = [
            handler
            for sub in ast.walk(node)
            if isinstance(sub, ast.Try)
            for handler in sub.handlers
            if _handler_retries(handler)
        ]
        if not retrying:
            continue
        for handler in retrying:
            if not _handler_is_bounded(handler):
                caught = ast.unparse(handler.type) if handler.type else "Exception"
                yield Violation(
                    path,
                    handler.lineno,
                    handler.col_offset,
                    "EXC002",
                    f"retry loop swallows {caught} with no raise/return/"
                    f"break escape; retries must be bounded by an attempt "
                    f"budget (see repro.faults.retry.RetryPolicy)",
                )
        if not _charges_sim_time(node):
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "EXC002",
                "retry loop never charges simulated time (no *_us/"
                "*latency*/*stall* accumulation or .charge() call); "
                "free retries hide fault latency from the sim clock",
            )


def _hot_path_functions(
    tree: ast.Module, source_lines: List[str]
) -> Iterator[ast.FunctionDef]:
    """Functions whose signature carries the ``# hot-path`` marker.

    The marker is a comment (invisible to the AST), so the signature's
    source lines — from the ``def`` up to the first body statement —
    are scanned textually.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        body_start = node.body[0].lineno if node.body else node.lineno + 1
        for lineno in range(node.lineno, body_start):
            if (
                lineno <= len(source_lines)
                and _HOT_PATH_MARKER in source_lines[lineno - 1]
            ):
                yield node
                break


@rule("PERF001")
def check_hot_path_numpy_indexing(
    tree: ast.Module, path: str
) -> Iterator[Violation]:
    """No per-element numpy indexing inside ``# hot-path`` functions.

    Subscripting a numpy array with a scalar builds a numpy scalar
    object per access — roughly two orders of magnitude slower than a
    plain-list index, and the exact pattern the CountMinSketch rewrite
    removed from the admission path.  Inside a function marked
    ``# hot-path``, any scalar subscript of a name bound to a
    ``np.*(...)``/``numpy.*(...)`` call is flagged: keep arrays for the
    vectorised math and convert to plain ints/lists before per-element
    loops.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source_lines = fh.read().splitlines()
    except OSError:
        return
    for func in _hot_path_functions(tree, source_lines):
        numpy_names = set()
        for sub in ast.walk(func):
            if not (isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call)):
                continue
            call = sub.value.func
            root = call
            while isinstance(root, ast.Attribute):
                root = root.value
            if not (isinstance(root, ast.Name) and root.id in _NUMPY_ALIASES):
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    numpy_names.add(target.id)
                elif isinstance(target, ast.Tuple):
                    numpy_names.update(
                        el.id for el in target.elts if isinstance(el, ast.Name)
                    )
        if not numpy_names:
            continue
        for sub in ast.walk(func):
            if not isinstance(sub, ast.Subscript):
                continue
            if not (
                isinstance(sub.value, ast.Name) and sub.value.id in numpy_names
            ):
                continue
            if isinstance(sub.slice, ast.Slice):
                continue  # slicing stays vectorised; only scalars pay per-element
            if isinstance(sub.slice, ast.Tuple) and any(
                isinstance(el, ast.Slice) for el in sub.slice.elts
            ):
                continue  # row/column views like a[i, :] or a[:, j] are
                # vectorised too — the result is an array, not a numpy scalar
            yield Violation(
                path,
                sub.lineno,
                sub.col_offset,
                "PERF001",
                f"scalar index into numpy array {sub.value.id!r} inside "
                f"hot-path function {func.name}(); per-element numpy access "
                f"is ~100x a list index — convert to plain ints/lists first",
            )


#: Scalar hot-path probes with vectorised batch counterparts (PERF002).
_BATCHABLE_PROBES = {
    "estimate": "estimate_batch",
    "may_contain": "may_contain_batch",
    "fetch_block": "a per-batch fetch memo (see LSMTree.multi_get_from_sstables)",
}

#: Loop constructs a per-element probe can hide in (PERF002).
_LOOP_NODES = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
               ast.GeneratorExp)


@rule("PERF002")
def check_hot_path_scalar_probe_loops(
    tree: ast.Module, path: str
) -> Iterator[Violation]:
    """No per-element probe loops where a batched variant exists.

    ``estimate``, ``may_contain`` and ``fetch_block`` all have batched
    counterparts on the hot path (``estimate_batch``,
    ``may_contain_batch``, and the batched executors' per-batch fetch
    memo) that hash, probe or fetch for a whole batch in one vectorised
    call.  Calling the scalar form from a loop inside a ``# hot-path``
    function re-pays the per-call digest/lookup cost once per element —
    the exact overhead the batch variants amortise.  Batch variants
    themselves (``*_batch`` / ``multi_*`` functions) are exempt: their
    small-batch scalar fallback loops are the intended crossover below
    which numpy overhead beats its savings.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source_lines = fh.read().splitlines()
    except OSError:
        return
    for func in _hot_path_functions(tree, source_lines):
        if func.name.endswith("_batch") or func.name.startswith("multi_"):
            continue  # the batch variants' intentional scalar fallbacks
        seen: set = set()
        for loop in ast.walk(func):
            if not isinstance(loop, _LOOP_NODES):
                continue
            for sub in ast.walk(loop):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _BATCHABLE_PROBES
                ):
                    continue
                site = (sub.lineno, sub.col_offset)
                if site in seen:
                    continue  # nested loops walk the same call twice
                seen.add(site)
                yield Violation(
                    path,
                    sub.lineno,
                    sub.col_offset,
                    "PERF002",
                    f"per-element .{sub.func.attr}() call in a loop inside "
                    f"hot-path function {func.name}(); a batched variant "
                    f"exists ({_BATCHABLE_PROBES[sub.func.attr]}) — probe "
                    f"the whole batch in one call",
                )


@rule("OBS001")
def check_obs_metric_constants(tree: ast.Module, path: str) -> Iterator[Violation]:
    """Instrumentation sites must use registered metric-name constants.

    The obs registry rejects unregistered names at runtime, but only on
    the instrumented path — an inline string literal passed to
    ``inc``/``set_gauge``/``observe``/``event`` can sit dormant (typo'd,
    unregistered, drifting from the exporter's schema) until that branch
    finally executes.  Recording calls must therefore pass the constants
    defined in :mod:`repro.obs.names` (``N.WINDOW_OPS``,
    ``N.EV_FLUSH``, ...), which are checked at import time and keep
    every call site greppable by constant name.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _OBS_RECORDING_METHODS
        ):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield Violation(
                path,
                first.lineno,
                first.col_offset,
                "OBS001",
                f"inline string {first.value!r} passed to .{func.attr}(); "
                f"instrumentation must use the registered constants in "
                f"repro.obs.names",
            )


def unordered_set_locals(func: ast.AST) -> "set[str]":
    """Local names bound to unordered set expressions in a function.

    Tracks ``x = {...}`` set displays, set comprehensions, and
    ``set(...)``/``frozenset(...)`` constructor calls.  Shared with the
    whole-program DET002 pass.
    """
    names: set[str] = set()
    for sub in ast.walk(func):
        if not isinstance(sub, ast.Assign):
            continue
        value = sub.value
        is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )
        if not is_set:
            continue
        for target in sub.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


#: Accumulator names that look like audited statistics (DET003).
_STAT_ACC_RE = re.compile(r"(total|sum|acc|stat|mean|mass|weight)", re.IGNORECASE)


@rule("DET003")
def check_unordered_float_accumulation(
    tree: ast.Module, path: str
) -> Iterator[Violation]:
    """No float accumulation over unordered ``set`` iteration on
    audited statistics.

    Float addition is not associative: summing the same values in a
    different order produces different low bits, and ``set`` iteration
    order varies with insertion history and hash randomization.  An
    audited stat (``*_total``, ``*_sum``, ``*_mean``, ...) accumulated
    with ``+=`` inside a ``for`` over a set — or built with ``sum()``
    over a set expression — can therefore differ bit-for-bit between
    two runs that touched identical data.  Iterate ``sorted(...)`` so
    the reduction order is pinned.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        unordered = unordered_set_locals(node)

        def _is_unordered(expr: ast.expr) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
                return expr.func.id in ("set", "frozenset")
            return isinstance(expr, ast.Name) and expr.id in unordered

        for sub in ast.walk(node):
            if isinstance(sub, ast.For) and _is_unordered(sub.iter):
                for inner in ast.walk(sub):
                    if not isinstance(inner, ast.AugAssign):
                        continue
                    if not isinstance(inner.op, (ast.Add, ast.Sub)):
                        continue
                    target = inner.target
                    name = (
                        target.attr
                        if isinstance(target, ast.Attribute)
                        else target.id if isinstance(target, ast.Name) else ""
                    )
                    if _STAT_ACC_RE.search(name):
                        yield Violation(
                            path,
                            inner.lineno,
                            inner.col_offset,
                            "DET003",
                            f"float accumulation onto {name!r} iterates a "
                            f"set in unspecified order; sum in sorted() "
                            f"order so audited stats reproduce bit-for-bit",
                        )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "sum"
                and sub.args
                and _is_unordered(sub.args[0])
            ):
                yield Violation(
                    path,
                    sub.lineno,
                    sub.col_offset,
                    "DET003",
                    "sum() over an unordered set accumulates floats in "
                    "unspecified order; sum over sorted(...) instead",
                )


#: Attribute names that hand a callback to a timer/scheduler (OWN003).
_HANDOFF_ATTRS = ("after", "after_cancellable", "call_later", "call_at", "defer")
_HANDOFF_ATTR_RE = re.compile(r"(schedule|timer|hedge)", re.IGNORECASE)

#: Method calls that mutate their receiver in place (OWN003).
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "add", "discard", "setdefault", "popitem", "appendleft", "popleft",
        "sort", "reverse",
    }
)


def _is_handoff_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    return func.attr in _HANDOFF_ATTRS or bool(_HANDOFF_ATTR_RE.search(func.attr))


def _callback_free_names(callback: ast.AST) -> "set[str]":
    """Names a lambda/nested-def reads that it does not itself bind."""
    if isinstance(callback, ast.Lambda):
        params = {a.arg for a in callback.args.args + callback.args.kwonlyargs}
        body: List[ast.AST] = [callback.body]
    elif isinstance(callback, (ast.FunctionDef, ast.AsyncFunctionDef)):
        params = {a.arg for a in callback.args.args + callback.args.kwonlyargs}
        body = list(callback.body)
    else:
        return set()
    bound = set(params)
    loads: "set[str]" = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Store):
                    bound.add(sub.id)
                elif isinstance(sub.ctx, ast.Load):
                    loads.add(sub.id)
    return {name for name in loads - bound if name != "self"}


def _nested_node_ids(func: ast.AST) -> "set[int]":
    """ids of every node living inside a nested def/lambda of ``func``."""
    nested: "set[int]" = set()
    for sub in ast.walk(func):
        if sub is func:
            continue
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            nested.update(id(n) for n in ast.walk(sub) if n is not sub)
    return nested


def _mutations_after(
    func: ast.AST, names: "set[str]", after_line: int
) -> Iterator[Tuple[str, int]]:
    """(name, line) pairs where a captured name is mutated past handoff.

    Only the enclosing function's own straight-line code counts:
    mutations inside *other* nested callbacks are their own handoff's
    concern, not evidence that this caller races its timer.
    """
    nested = _nested_node_ids(func)
    for sub in ast.walk(func):
        if id(sub) in nested:
            continue
        line = getattr(sub, "lineno", 0)
        if line <= after_line:
            continue
        if isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = (
                list(sub.targets)
                if isinstance(sub, ast.Assign)
                else [sub.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in names:
                    yield target.id, line
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    yield target.value.id, line
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _MUTATOR_METHODS
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id in names
        ):
            yield sub.func.value.id, line


@rule("OWN003")
def check_callback_capture_after_handoff(
    tree: ast.Module, path: str
) -> Iterator[Violation]:
    """Callbacks handed to timers/hedges must not capture state the
    caller keeps mutating.

    A lambda or closure passed to ``after()``/``after_cancellable()``/
    ``schedule*``/``*timer*``/``*hedge*`` runs later, on the event
    loop's schedule — but it closes over the caller's variables by
    *reference*.  If the caller rebinds or mutates a captured variable
    after the handoff, the callback observes whichever state the race
    happens to produce; under process executors the copies additionally
    diverge.  Pass a snapshot (bind current values as defaults or
    arguments) instead of mutating a captured object.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_defs = {
            stmt.name: stmt
            for stmt in ast.walk(node)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not node
        }
        nested = _nested_node_ids(node)
        for sub in ast.walk(node):
            if id(sub) in nested:
                continue  # a nested def owns its own handoffs
            if not (isinstance(sub, ast.Call) and _is_handoff_call(sub)):
                continue
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                callback: Optional[ast.AST] = None
                if isinstance(arg, ast.Lambda):
                    callback = arg
                elif isinstance(arg, ast.Name) and arg.id in local_defs:
                    callback = local_defs[arg.id]
                if callback is None:
                    continue
                free = _callback_free_names(callback)
                if not free:
                    continue
                end_line = max(
                    (getattr(s, "lineno", sub.lineno) for s in ast.walk(sub)),
                    default=sub.lineno,
                )
                flagged: set[str] = set()
                for name, line in _mutations_after(node, free, end_line):
                    if name in flagged:
                        continue
                    flagged.add(name)
                    yield Violation(
                        path,
                        sub.lineno,
                        sub.col_offset,
                        "OWN003",
                        f"callback handed off at line {sub.lineno} captures "
                        f"{name!r}, which is mutated afterwards (line "
                        f"{line}); the timer observes racy state — pass a "
                        f"snapshot instead",
                    )


@rule("SLOT001")
def check_node_slots(tree: ast.Module, path: str) -> Iterator[Violation]:
    """Hot-path ``*Node`` classes must declare ``__slots__``.

    Linked-structure node classes (skip-list towers and friends) are
    allocated per cached entry; without ``__slots__`` each instance
    carries a dict, roughly tripling memory per node and slowing every
    attribute access on the hottest paths in the simulator.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _NODE_CLASS_RE.match(node.name):
            continue
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            )
            or (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            )
            for stmt in node.body
        )
        if not has_slots:
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "SLOT001",
                f"hot-path node class {node.name} lacks __slots__; "
                f"per-instance dicts bloat every cached entry",
            )
