"""Machine-readable lint output: JSON findings and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format) is what CI
annotation surfaces and editors ingest; :func:`to_sarif` emits the
minimal conforming document — tool driver with the rule catalogue,
one ``result`` per violation with a physical location — and
:func:`validate_sarif` is the hand-rolled structural validator the
tests (and ``repro report``-style tooling) check the output against,
mirroring the repo's schema-validator convention in
:mod:`repro.obs.schema` (no third-party dependency).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.lint.rules import RULE_METADATA, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"
_TOOL_INFO_URI = "https://github.com/adcache/repro/blob/main/docs/static_analysis.md"


def _relative_uri(path: str, base: Optional[str]) -> str:
    """A forward-slash, preferably base-relative URI for one file."""
    if base:
        try:
            rel = os.path.relpath(path, base)
            if not rel.startswith(".."):
                return rel.replace(os.sep, "/")
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def violation_to_dict(violation: Violation, base: Optional[str] = None) -> Dict[str, Any]:
    """The plain-JSON shape of one finding (``--format json``)."""
    meta = RULE_METADATA.get(violation.rule_id)
    return {
        "path": _relative_uri(violation.path, base),
        "line": violation.line,
        "col": violation.col,
        "rule": violation.rule_id,
        "family": meta.family if meta else violation.rule_id,
        "scope": meta.scope if meta else "syntactic",
        "message": violation.message,
    }


def to_json(
    violations: Iterable[Violation], base: Optional[str] = None
) -> str:
    """The full findings list as a deterministic JSON document."""
    payload = {
        "tool": _TOOL_NAME,
        "findings": [violation_to_dict(v, base) for v in violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _rule_descriptor(rule_id: str) -> Dict[str, Any]:
    meta = RULE_METADATA.get(rule_id)
    descriptor: Dict[str, Any] = {"id": rule_id}
    if meta is not None:
        descriptor["shortDescription"] = {"text": meta.summary or rule_id}
        descriptor["fullDescription"] = {"text": meta.doc or meta.summary}
        descriptor["properties"] = {"family": meta.family, "scope": meta.scope}
    else:
        descriptor["shortDescription"] = {"text": rule_id}
    return descriptor


def to_sarif(
    violations: Iterable[Violation], base: Optional[str] = None
) -> Dict[str, Any]:
    """A SARIF 2.1.0 document for the given findings.

    Every rule that fired is described in the tool driver's ``rules``
    array and referenced by index from its results, which is what lets
    SARIF viewers show the full rule documentation inline.
    """
    findings = list(violations)
    fired = sorted({v.rule_id for v in findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    results: List[Dict[str, Any]] = []
    for violation in findings:
        results.append(
            {
                "ruleId": violation.rule_id,
                "ruleIndex": rule_index[violation.rule_id],
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _relative_uri(violation.path, base),
                            },
                            "region": {
                                "startLine": max(violation.line, 1),
                                "startColumn": max(violation.col + 1, 1),
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_INFO_URI,
                        "rules": [_rule_descriptor(r) for r in fired],
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    violations: Iterable[Violation], base: Optional[str] = None
) -> str:
    return json.dumps(to_sarif(violations, base), indent=2, sort_keys=True) + "\n"


def validate_sarif(doc: Mapping[str, Any]) -> List[str]:
    """Structural validation against the SARIF 2.1.0 shape.

    Returns human-readable problems (empty list = valid).  Checks the
    required top-level members, per-run tool driver, rule references,
    and that every result's location carries a positive line/column —
    the constraints the official JSON schema enforces on the subset of
    SARIF this tool emits.
    """
    problems: List[str] = []
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    if not isinstance(doc.get("$schema"), str):
        problems.append("$schema must be a string URI")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not isinstance(run, dict):
            problems.append(f"{where} must be an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not isinstance(driver, dict) or not isinstance(
            driver.get("name"), str
        ):
            problems.append(f"{where}.tool.driver.name must be a string")
            rules: List[Any] = []
        else:
            rules = driver.get("rules", [])
            if not isinstance(rules, list):
                problems.append(f"{where}.tool.driver.rules must be an array")
                rules = []
            for i, rule_desc in enumerate(rules):
                if not isinstance(rule_desc, dict) or not isinstance(
                    rule_desc.get("id"), str
                ):
                    problems.append(
                        f"{where}.tool.driver.rules[{i}].id must be a string"
                    )
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        rule_ids = [
            r.get("id") for r in rules if isinstance(r, dict)
        ]
        for i, result in enumerate(results):
            rwhere = f"{where}.results[{i}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere} must be an object")
                continue
            if not isinstance(result.get("ruleId"), str):
                problems.append(f"{rwhere}.ruleId must be a string")
            index = result.get("ruleIndex")
            if index is not None and (
                not isinstance(index, int)
                or index < 0
                or index >= len(rule_ids)
                or rule_ids[index] != result.get("ruleId")
            ):
                problems.append(
                    f"{rwhere}.ruleIndex must point at the matching "
                    f"driver rule"
                )
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(
                message.get("text"), str
            ):
                problems.append(f"{rwhere}.message.text must be a string")
            locations = result.get("locations")
            if not isinstance(locations, list) or not locations:
                problems.append(f"{rwhere}.locations must be non-empty")
                continue
            for j, location in enumerate(locations):
                lwhere = f"{rwhere}.locations[{j}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(physical, dict):
                    problems.append(f"{lwhere}.physicalLocation missing")
                    continue
                artifact = physical.get("artifactLocation")
                if not isinstance(artifact, dict) or not isinstance(
                    artifact.get("uri"), str
                ):
                    problems.append(
                        f"{lwhere}.physicalLocation.artifactLocation.uri "
                        f"must be a string"
                    )
                region = physical.get("region")
                if not isinstance(region, dict):
                    problems.append(f"{lwhere}.physicalLocation.region missing")
                    continue
                for field in ("startLine", "startColumn"):
                    value = region.get(field)
                    if field == "startColumn" and value is None:
                        continue
                    if not isinstance(value, int) or value < 1:
                        problems.append(
                            f"{lwhere}.physicalLocation.region.{field} "
                            f"must be a positive integer"
                        )
    return problems
