"""The lint engine: discovery, passes, suppressions, baseline, output.

``python -m repro.lint [paths]`` (default: the ``repro`` package) runs
two analysis passes:

1. **parse + index** — every file is parsed (through a content-hash
   AST cache, so unchanged files re-run for free) and folded into a
   project-wide symbol table and call graph;
2. **rules** — the per-module syntactic rules run over each file and
   the whole-program rules (DET0xx/OWN0xx) run over the project.

Findings are filtered by suppression comments::

    x = foo()  # lint: disable=RULE[,RULE2]     same line only
    # lint: disable-next=RULE                   the following line
    # lint: disable-file=RULE                   the whole file

then optionally diffed against a checked-in baseline file
(``--baseline lint-baseline.json``), which is how new rules land
strict: pre-existing findings are recorded once with
``--update-baseline`` and only *new* violations fail the run, printed
diff-style (``+`` new / ``-`` stale).  ``--changed[=REF]`` restricts
reporting to files modified vs a git ref for fast pre-commit runs
(the whole-program analysis still sees the full tree).  Output is
text, ``--format json``, or ``--format sarif``; ``--sarif FILE``
additionally writes the SARIF report for CI artifact upload.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.passes import (
    WHOLE_PROGRAM_RULES,
    build_project,
    run_whole_program_rules,
)
from repro.lint.rules import (
    ALL_RULES,
    RULE_METADATA,
    Violation,
    rule_family,
)
from repro.lint.sarif import render_sarif, to_json
from repro.lint.symbols import (
    AstCache,
    ModuleInfo,
    content_hash,
    module_name_for,
)

_DISABLE_MARKER = "# lint: disable="
_DISABLE_NEXT_MARKER = "# lint: disable-next="
_DISABLE_FILE_MARKER = "# lint: disable-file="

DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_CACHE_DIR = ".repro_lint_cache"
DEFAULT_CHANGED_REF = "origin/main"


class Suppressions:
    """Per-file suppression state parsed from the three comment forms."""

    def __init__(self, source: str) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.whole_file: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            self._scan(line, lineno)

    @staticmethod
    def _ids_after(line: str, marker: str) -> Set[str]:
        start = line.find(marker)
        if start < 0:
            return set()
        spec = line[start + len(marker) :].split("#")[0]
        return {part.strip() for part in spec.split(",") if part.strip()}

    def _scan(self, line: str, lineno: int) -> None:
        # The three markers are mutually exclusive matches: the literal
        # "disable=" never occurs inside "disable-next="/"disable-file=".
        same_line = self._ids_after(line, _DISABLE_MARKER)
        if same_line:
            self.by_line.setdefault(lineno, set()).update(same_line)
        next_line = self._ids_after(line, _DISABLE_NEXT_MARKER)
        if next_line:
            self.by_line.setdefault(lineno + 1, set()).update(next_line)
        self.whole_file.update(self._ids_after(line, _DISABLE_FILE_MARKER))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.whole_file:
            return True
        return rule_id in self.by_line.get(line, ())


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    seen: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in ("__pycache__", ".git", DEFAULT_CACHE_DIR)
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        candidate = os.path.join(dirpath, name)
                        key = os.path.abspath(candidate)
                        if key not in seen:
                            seen.add(key)
                            files.append(candidate)
        elif path.endswith(".py"):
            key = os.path.abspath(path)
            if key not in seen:
                seen.add(key)
                files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return files


@dataclass
class LintResult:
    """Everything one engine run produced."""

    findings: List[Violation] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    files: int = 0


class LintEngine:
    """Multi-pass lint over a set of files (see module docstring)."""

    def __init__(
        self,
        paths: Iterable[str],
        rule_ids: Optional[Sequence[str]] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.paths = list(paths)
        self.rule_ids = list(rule_ids) if rule_ids is not None else None
        self.cache = AstCache(cache_dir)

    def _selected(self, registry: Iterable[str]) -> List[str]:
        if self.rule_ids is None:
            return list(registry)
        return [r for r in self.rule_ids if r in set(registry)]

    def run(self) -> LintResult:
        result = LintResult()
        modules: List[ModuleInfo] = []
        suppressions: Dict[str, Suppressions] = {}
        findings: List[Violation] = []

        # Pass 1: parse (cached) + index.
        for path in _iter_python_files(self.paths):
            try:
                with open(path, "rb") as fh:
                    raw = fh.read()
            except OSError as exc:
                findings.append(Violation(path, 0, 0, "PARSE", str(exc)))
                continue
            source = raw.decode("utf-8", errors="replace")
            digest = content_hash(raw)
            tree = self.cache.get(digest)
            if tree is None:
                try:
                    tree = ast.parse(source, filename=path)
                except SyntaxError as exc:
                    findings.append(
                        Violation(
                            path,
                            exc.lineno or 0,
                            exc.offset or 0,
                            "PARSE",
                            f"file does not parse: {exc.msg}",
                        )
                    )
                    continue
                self.cache.put(digest, tree)
            modname, is_package = module_name_for(path)
            modules.append(
                ModuleInfo(path, modname, is_package, tree, source, digest)
            )
            suppressions[path] = Suppressions(source)
        result.files = len(modules)

        # Pass 2a: per-module syntactic rules.
        for info in modules:
            for rule_id in self._selected(ALL_RULES):
                for violation in ALL_RULES[rule_id](info.tree, info.path):
                    findings.append(violation)

        # Pass 2b: whole-program rules over the project.
        project = build_project(modules)
        findings.extend(
            run_whole_program_rules(
                project, self._selected(WHOLE_PROGRAM_RULES)
            )
        )

        # Suppressions + deterministic order.
        kept = [
            v
            for v in findings
            if v.rule_id == "PARSE"
            or not (
                v.path in suppressions
                and suppressions[v.path].is_suppressed(v.rule_id, v.line)
            )
        ]
        kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        result.findings = kept
        result.cache_hits = self.cache.hits
        result.cache_misses = self.cache.misses
        self.cache.save()
        return result


# -- compatibility API --------------------------------------------------------


def lint_file(path: str, rule_ids: Optional[Sequence[str]] = None) -> List[Violation]:
    """Run the (selected) rules over one file, honoring suppressions."""
    return LintEngine([path], rule_ids).run().findings


def lint_paths(
    paths: Iterable[str], rule_ids: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run the (selected) rules over files/directories; all findings."""
    return LintEngine(paths, rule_ids).run().findings


# -- baseline -----------------------------------------------------------------


BaselineKey = Tuple[str, str, str]


@dataclass
class BaselineDiff:
    """The comparison of one run against a baseline file."""

    new: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    stale: List[Tuple[BaselineKey, int]] = field(default_factory=list)


def _baseline_key(violation: Violation, root: str) -> BaselineKey:
    rel = os.path.relpath(os.path.abspath(violation.path), root)
    return (rel.replace(os.sep, "/"), violation.rule_id, violation.message)


def load_baseline(path: str) -> Dict[BaselineKey, int]:
    """The committed baseline as ``(path, rule, message) -> count``."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    entries: Dict[BaselineKey, int] = {}
    for entry in payload.get("entries", []):
        key = (entry["path"], entry["rule"], entry["message"])
        entries[key] = entries.get(key, 0) + int(entry.get("count", 1))
    return entries


def write_baseline(path: str, findings: List[Violation]) -> int:
    """Record the current findings as the accepted baseline."""
    root = os.path.dirname(os.path.abspath(path)) or "."
    counts: Dict[BaselineKey, int] = {}
    for violation in findings:
        key = _baseline_key(violation, root)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"path": p, "rule": r, "message": m, "count": counts[(p, r, m)]}
        for (p, r, m) in sorted(counts)
    ]
    payload = {
        "version": 1,
        "note": (
            "Accepted pre-existing lint findings. New violations fail the "
            "run; refresh with: python -m repro.lint <paths> --baseline "
            f"{os.path.basename(path)} --update-baseline"
        ),
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def diff_against_baseline(
    findings: List[Violation], baseline: Dict[BaselineKey, int], root: str
) -> BaselineDiff:
    """Split findings into baselined vs new; spot stale baseline rows."""
    remaining = dict(baseline)
    diff = BaselineDiff()
    for violation in findings:
        key = _baseline_key(violation, root)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            diff.suppressed += 1
        else:
            diff.new.append(violation)
    diff.stale = [(key, count) for key, count in sorted(remaining.items()) if count > 0]
    return diff


# -- --changed ----------------------------------------------------------------


def changed_files(ref: str, cwd: str) -> Optional[Set[str]]:
    """Absolute paths of ``*.py`` files modified vs ``ref`` (+ untracked).

    Returns None (meaning: lint everything) when git or the ref is
    unavailable, so the flag degrades safely outside a checkout.
    """

    def _git(*args: str) -> Optional[List[str]]:
        try:
            proc = subprocess.run(
                ["git", *args],
                capture_output=True,
                text=True,
                cwd=cwd,
                check=False,
            )
        except OSError:
            return None
        if proc.returncode != 0:
            return None
        return [line for line in proc.stdout.splitlines() if line.strip()]

    toplevel = _git("rev-parse", "--show-toplevel")
    if not toplevel:
        return None
    root = toplevel[0]
    diffed = _git(
        "diff", "--name-only", "--diff-filter=ACMR", ref, "--", "*.py"
    )
    if diffed is None:
        return None
    untracked = _git(
        "ls-files", "--others", "--exclude-standard", "--", "*.py"
    ) or []
    return {
        os.path.abspath(os.path.join(root, rel))
        for rel in diffed + untracked
        if rel.endswith(".py")
    }


# -- CLI ----------------------------------------------------------------------


def _default_target() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _expand_selection(spec: str) -> Tuple[Optional[List[str]], List[str]]:
    """Expand a ``--select`` spec of rule ids and family names.

    Returns ``(rule_ids, unknown_tokens)``; family tokens (``DET``,
    ``OWN``, ``SIM``, ...) expand to every rule in that family.
    """
    known_families = {meta.family for meta in RULE_METADATA.values()}
    rule_ids: List[str] = []
    unknown: List[str] = []
    for token in (t.strip() for t in spec.split(",")):
        if not token:
            continue
        if token in RULE_METADATA:
            rule_ids.append(token)
        elif token in known_families:
            rule_ids.extend(
                sorted(r for r in RULE_METADATA if rule_family(r) == token)
            )
        else:
            unknown.append(token)
    return rule_ids, unknown


def _list_rules() -> str:
    """The rule catalogue grouped by family, stable order, with scope."""
    by_family: Dict[str, List[str]] = {}
    for rule_id in RULE_METADATA:
        by_family.setdefault(rule_family(rule_id), []).append(rule_id)
    lines: List[str] = []
    for family in sorted(by_family):
        lines.append(f"{family}:")
        for rule_id in sorted(by_family[family]):
            meta = RULE_METADATA[rule_id]
            lines.append(f"  {rule_id}  [{meta.scope}]  {meta.summary}")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Whole-program static analysis for the AdCache simulator "
            "(see docs/static_analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        metavar="RULES",
        help="comma-separated rule ids and/or families to run "
        "(e.g. DET001,OWN or SIM; default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue grouped by family (with each "
        "rule's analysis scope) and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="primary report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report there instead of stdout",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"suppress findings recorded in this baseline file and "
        f"report only new ones, diff-style (e.g. {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and "
        "exit 0",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const=DEFAULT_CHANGED_REF,
        default=None,
        metavar="REF",
        help=f"report findings only in files modified vs a git ref "
        f"(default ref: {DEFAULT_CHANGED_REF}); the whole-program "
        f"passes still analyze the full tree",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"AST cache directory for incremental re-runs "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the AST cache for this run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print file/cache statistics to stderr",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rule_ids: Optional[List[str]] = None
    if args.select:
        rule_ids, unknown = _expand_selection(args.select)
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = args.paths or [_default_target()]
    cache_dir = None if args.no_cache else args.cache_dir
    try:
        result = LintEngine(paths, rule_ids, cache_dir=cache_dir).run()
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    findings = result.findings
    filtered_view = False
    if args.changed is not None:
        allowed = changed_files(args.changed, os.getcwd())
        if allowed is not None:
            findings = [
                v for v in findings if os.path.abspath(v.path) in allowed
            ]
            filtered_view = True
        else:
            print(
                f"warning: could not resolve --changed ref "
                f"{args.changed!r}; linting everything",
                file=sys.stderr,
            )

    if args.stats:
        print(
            f"{result.files} file(s), AST cache: {result.cache_hits} hit(s), "
            f"{result.cache_misses} miss(es)",
            file=sys.stderr,
        )

    if args.update_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE
        entries = write_baseline(baseline_path, findings)
        print(
            f"wrote {entries} baseline entr{'y' if entries == 1 else 'ies'} "
            f"({len(findings)} finding(s)) to {baseline_path}"
        )
        return 0

    reportable = findings
    diff: Optional[BaselineDiff] = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(
                f"baseline file not found: {args.baseline} "
                f"(create it with --update-baseline)",
                file=sys.stderr,
            )
            return 2
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            print(f"malformed baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        root = os.path.dirname(os.path.abspath(args.baseline)) or "."
        diff = diff_against_baseline(findings, baseline, root)
        if filtered_view:
            # --changed hides findings in untouched files, so baseline
            # entries for them would look stale; only a full view can
            # judge staleness.
            diff.stale = []
        reportable = diff.new

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(findings, base=os.getcwd()))

    body = _render(reportable, args.format, diff)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(body)
    elif body:
        print(body, end="" if body.endswith("\n") else "\n")

    if diff is not None:
        _print_baseline_summary(diff, args.baseline, file=sys.stderr)
        return 1 if diff.new else 0
    if reportable:
        print(f"\n{len(reportable)} violation(s) found", file=sys.stderr)
        return 1
    return 0


def _render(
    findings: List[Violation],
    fmt: str,
    diff: Optional[BaselineDiff],
) -> str:
    if fmt == "json":
        return to_json(findings, base=os.getcwd())
    if fmt == "sarif":
        return render_sarif(findings, base=os.getcwd())
    prefix = "+ " if diff is not None else ""
    lines = [prefix + violation.render() for violation in findings]
    if diff is not None:
        lines.extend(
            f"- {path}: {rule} no longer fires (x{count}): {message[:60]}"
            for (path, rule, message), count in diff.stale
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _print_baseline_summary(
    diff: BaselineDiff, baseline_path: Optional[str], file: object
) -> None:
    out = file if file is not None else sys.stderr
    name = baseline_path or DEFAULT_BASELINE
    if diff.new:
        print(
            f"\n{len(diff.new)} new violation(s) not in {name} "
            f"({diff.suppressed} baselined); fix them or refresh with "
            f"--update-baseline",
            file=out,  # type: ignore[arg-type]
        )
    else:
        stale = sum(count for _, count in diff.stale)
        message = f"clean vs {name} ({diff.suppressed} baselined finding(s)"
        if stale:
            message += (
                f", {stale} stale entr{'y' if stale == 1 else 'ies'} — "
                f"refresh with --update-baseline"
            )
        print(message + ")", file=out)  # type: ignore[arg-type]
