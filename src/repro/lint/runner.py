"""Lint runner: file discovery, disable comments, reporting, exit code.

``python -m repro.lint [paths]`` walks the given files/directories
(default: the ``repro`` package itself), runs every registered rule,
filters findings suppressed by ``# lint: disable=RULE`` comments on the
offending line, prints the rest, and exits nonzero when any remain.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.rules import ALL_RULES, Violation

_DISABLE_MARKER = "# lint: disable="


def _disabled_rules_by_line(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line."""
    disabled: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        marker = line.find(_DISABLE_MARKER)
        if marker < 0:
            continue
        spec = line[marker + len(_DISABLE_MARKER) :].split("#")[0]
        ids = {part.strip() for part in spec.split(",") if part.strip()}
        if ids:
            disabled[lineno] = ids
    return disabled


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return files


def lint_file(path: str, rule_ids: Optional[Sequence[str]] = None) -> List[Violation]:
    """Run the (selected) rules over one file, honoring disable comments."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path,
                exc.lineno or 0,
                exc.offset or 0,
                "PARSE",
                f"file does not parse: {exc.msg}",
            )
        ]
    disabled = _disabled_rules_by_line(source)
    selected = rule_ids if rule_ids is not None else list(ALL_RULES)
    findings: List[Violation] = []
    for rule_id in selected:
        for violation in ALL_RULES[rule_id](tree, path):
            if rule_id in disabled.get(violation.line, ()):
                continue
            findings.append(violation)
    findings.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return findings


def lint_paths(
    paths: Iterable[str], rule_ids: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run the (selected) rules over files/directories; all findings."""
    findings: List[Violation] = []
    for path in _iter_python_files(paths):
        findings.extend(lint_file(path, rule_ids))
    return findings


def _default_target() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific AST lint for the AdCache simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its documentation and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, func in ALL_RULES.items():
            doc = (func.__doc__ or "").strip()
            print(f"{rule_id}: {doc}\n")
        return 0

    rule_ids: Optional[List[str]] = None
    if args.select:
        rule_ids = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in ALL_RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = args.paths or [_default_target()]
    try:
        findings = lint_paths(paths, rule_ids)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for violation in findings:
        print(violation.render())
    if findings:
        print(f"\n{len(findings)} violation(s) found", file=sys.stderr)
        return 1
    return 0
