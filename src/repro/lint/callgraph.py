"""Pass 1b of the lint engine: the project-wide call graph.

Edges connect :class:`~repro.lint.symbols.FunctionInfo` qualnames.
Call sites are resolved through each module's import-alias map
(``import x as y``, ``from x import f as g``, re-exports), ``self.``
method calls bind through the class hierarchy, and calls made inside
lambdas or nested ``def`` closures are charged to the enclosing named
function — a closure's behavior is its owner's behavior as far as
determinism taint is concerned.

Besides edges, the graph records *ambient calls*: call sites that
resolve to wall-clock/entropy sources (``random.*``, ``time.*``,
``os.urandom``, ``uuid.uuid4``, ...).  The DET passes combine those
with reachability to flag serve/engine paths that are only
nondeterministic several hops away.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.symbols import FunctionInfo, SymbolTable, dotted_name

#: Resolved call targets that read ambient entropy or the wall clock.
#: ``random.Random`` is excluded: constructing a *seeded* generator is
#: the sanctioned form (SIM001's contract).
_AMBIENT_PREFIXES: Tuple[str, ...] = ("random.", "time.", "secrets.")
_AMBIENT_EXACT: Tuple[str, ...] = (
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.datetime.utcnow",
)
_AMBIENT_SANCTIONED: Tuple[str, ...] = ("random.Random",)


def is_ambient_target(target: str) -> bool:
    """Whether a resolved dotted call target is a nondeterminism source."""
    if target in _AMBIENT_SANCTIONED:
        return False
    if target in _AMBIENT_EXACT:
        return True
    return any(target.startswith(prefix) for prefix in _AMBIENT_PREFIXES)


@dataclass(frozen=True)
class AmbientCall:
    """One call site resolving to an ambient nondeterminism source."""

    target: str
    path: str
    line: int
    col: int


class CallGraph:
    """Directed function-call edges plus per-function ambient call sites."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[str, Set[str]] = {}
        self.ambient: Dict[str, List[AmbientCall]] = {}
        for info in table.functions.values():
            self._index_function(info)

    # -- construction --------------------------------------------------

    def _index_function(self, info: FunctionInfo) -> None:
        edges: Set[str] = set()
        ambient: List[AmbientCall] = []
        for call in _calls_in(info.node):
            target = self.resolve_call(info, call)
            if target is None:
                continue
            if is_ambient_target(target):
                ambient.append(
                    AmbientCall(target, info.path, call.lineno, call.col_offset)
                )
                continue
            callee = self.table.lookup_function(target)
            if callee is not None:
                edges.add(callee.qualname)
        self.edges[info.qualname] = edges
        if ambient:
            self.ambient[info.qualname] = ambient

    def resolve_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """The canonical dotted target of a call site, if resolvable."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        head = dotted.split(".", 1)[0]
        if head == "self" and info.classname is not None:
            rest = dotted.split(".")[1:]
            if len(rest) != 1:
                return None  # attribute-of-attribute: not a method bind
            bound = self.table.resolve_method(
                f"{info.modname}.{info.classname}", rest[0]
            )
            return bound.qualname if bound is not None else None
        if head == "self":
            return None
        return self.table.resolve(info.modname, dotted)

    # -- queries -------------------------------------------------------

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable_from(self, roots: List[str]) -> Set[str]:
        """Every function reachable from the roots (roots included)."""
        seen: Set[str] = set()
        queue = deque(roots)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges.get(current, ()))
        return seen

    def reaching(self, targets: Set[str]) -> Set[str]:
        """Every function from which some target is reachable."""
        reverse: Dict[str, Set[str]] = {}
        for src, dsts in self.edges.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        seen: Set[str] = set(targets)
        queue = deque(targets)
        while queue:
            current = queue.popleft()
            for pred in reverse.get(current, ()):
                if pred not in seen:
                    seen.add(pred)
                    queue.append(pred)
        return seen

    def shortest_path(self, src: str, dst: str) -> Optional[List[str]]:
        """BFS call chain from ``src`` to ``dst`` (inclusive), if any."""
        if src == dst:
            return [src]
        parents: Dict[str, str] = {}
        queue = deque([src])
        seen = {src}
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee in seen:
                    continue
                parents[callee] = current
                if callee == dst:
                    chain = [dst]
                    while chain[-1] != src:
                        chain.append(parents[chain[-1]])
                    chain.reverse()
                    return chain
                seen.add(callee)
                queue.append(callee)
        return None


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every Call in a function body, including inside nested closures."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def build_call_graph(table: SymbolTable) -> CallGraph:
    return CallGraph(table)
