"""Pass 1 of the lint engine: project-wide symbol table + AST cache.

The whole-program rules (:mod:`repro.lint.passes`) need to see the
project as Python's import machinery does, not one file at a time.
This module builds that view:

* :class:`ModuleInfo` — one parsed file: its dotted module name
  (inferred from ``__init__.py`` package markers), AST, source, and a
  content hash;
* :class:`SymbolTable` — every module, class, function/method and
  module-level mutable binding in the project, plus each module's
  import-alias map so dotted names resolve the way the interpreter
  would (``import x as y``, ``from x import f as g``, relative
  imports, and re-exports through ``__init__.py`` chains);
* :class:`AstCache` — a content-hash-keyed pickle cache of parsed
  ASTs, so incremental re-runs skip :func:`ast.parse` for unchanged
  files entirely.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Bump when the cached representation changes shape.
CACHE_VERSION = 1

#: Constructors whose module-level result is shared mutable state.
_MUTABLE_CONSTRUCTORS = (
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
)

#: Module-level names that are conventionally written once at import
#: time and never mutated afterwards (dunder metadata).
_EXEMPT_GLOBALS = ("__all__",)


def content_hash(data: bytes) -> str:
    """Stable content key for the AST cache."""
    return hashlib.sha256(data).hexdigest()


class AstCache:
    """Content-addressed pickle cache of parsed module ASTs.

    Keys are source-content hashes, so renames are free hits and any
    edit is a precise miss.  Only entries touched during the current
    run are persisted, which keeps the file from growing without
    bound as the tree churns.
    """

    def __init__(self, cache_dir: Optional[str]) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, bytes] = {}
        self._live: Set[str] = set()
        if cache_dir is not None:
            try:
                with open(self._cache_file(), "rb") as fh:
                    payload = pickle.load(fh)
                if payload.get("version") == CACHE_VERSION:
                    self._entries = payload.get("entries", {})
            except (OSError, pickle.PickleError, EOFError, AttributeError):
                self._entries = {}

    def _cache_file(self) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"ast-v{CACHE_VERSION}.pickle")

    def get(self, key: str) -> Optional[ast.Module]:
        """The cached AST for this content hash, if present."""
        raw = self._entries.get(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            tree = pickle.loads(raw)
        except (pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(tree, ast.Module):
            self.misses += 1
            return None
        self.hits += 1
        self._live.add(key)
        return tree

    def put(self, key: str, tree: ast.Module) -> None:
        self._entries[key] = pickle.dumps(tree)
        self._live.add(key)

    def save(self) -> None:
        """Persist the entries touched this run (no-op when disabled)."""
        if self.cache_dir is None:
            return
        entries = {k: v for k, v in self._entries.items() if k in self._live}
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            with open(self._cache_file(), "wb") as fh:
                pickle.dump({"version": CACHE_VERSION, "entries": entries}, fh)
        except OSError:
            pass  # caching is best-effort; linting must not fail on it


def module_name_for(path: str) -> Tuple[str, bool]:
    """Infer ``(dotted module name, is_package)`` from a file path.

    Walks up through directories containing ``__init__.py`` to find the
    package root, mirroring how the import system would address the
    file.  A free-standing file is its own top-level module.
    """
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    parts.reverse()
    if stem == "__init__":
        return ".".join(parts) if parts else stem, True
    return ".".join(parts + [stem]), False


@dataclass
class FunctionInfo:
    """One top-level function or bound method."""

    qualname: str
    modname: str
    name: str
    classname: Optional[str]
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef

    @property
    def lineno(self) -> int:
        return int(getattr(self.node, "lineno", 0))


@dataclass
class ClassInfo:
    """One class definition with its textual bases and own methods."""

    qualname: str
    modname: str
    name: str
    path: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class GlobalMutable:
    """A module-level binding to a mutable container."""

    qualname: str
    modname: str
    name: str
    path: str
    line: int
    col: int
    kind: str  # "list" | "dict" | "set" | constructor name


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    modname: str
    is_package: bool
    tree: ast.Module
    source: str
    digest: str

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.modname
        return self.modname.rsplit(".", 1)[0] if "." in self.modname else ""


def _base_textual_names(cls: ast.ClassDef) -> List[str]:
    """Dotted textual names of a class's bases, subscripts unwrapped."""
    names: List[str] = []
    for base in cls.bases:
        node: ast.expr = base
        while isinstance(node, ast.Subscript):
            node = node.value
        dotted = dotted_name(node)
        if dotted:
            names.append(dotted)
    return names


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class SymbolTable:
    """Project-wide symbols with import-aware name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: modname -> local alias -> dotted import target.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: modname -> global name -> mutable binding record.
        self.globals: Dict[str, Dict[str, GlobalMutable]] = {}

    # -- construction --------------------------------------------------

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.modname] = info
        self.by_path[info.path] = info
        self.imports[info.modname] = {}
        self.globals[info.modname] = {}
        self._index_imports(info)
        self._index_definitions(info)

    def _index_imports(self, info: ModuleInfo) -> None:
        aliases = self.imports[info.modname]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds the top-level package.
                        top = alias.name.split(".")[0]
                        aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _resolve_from_base(
        info: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        """The absolute module a ``from ... import`` pulls from."""
        if not node.level:
            return node.module or ""
        parts = info.package.split(".") if info.package else []
        strip = node.level - 1
        if strip > len(parts):
            return None
        kept = parts[: len(parts) - strip] if strip else parts
        if node.module:
            kept = kept + node.module.split(".")
        return ".".join(kept)

    def _index_definitions(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{info.modname}.{stmt.name}"
                self.functions[qual] = FunctionInfo(
                    qual, info.modname, stmt.name, None, info.path, stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(info, stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._index_global(info, stmt)

    def _index_class(self, info: ModuleInfo, stmt: ast.ClassDef) -> None:
        qual = f"{info.modname}.{stmt.name}"
        cls = ClassInfo(
            qual, info.modname, stmt.name, info.path, stmt,
            base_names=_base_textual_names(stmt),
        )
        for sub in stmt.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mqual = f"{qual}.{sub.name}"
                method = FunctionInfo(
                    mqual, info.modname, sub.name, stmt.name, info.path, sub
                )
                cls.methods[sub.name] = method
                self.functions[mqual] = method
        self.classes[qual] = cls

    def _index_global(
        self, info: ModuleInfo, stmt: "ast.Assign | ast.AnnAssign"
    ) -> None:
        targets: List[ast.expr]
        value: Optional[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        else:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        kind = _mutable_kind(value)
        if kind is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id in _EXEMPT_GLOBALS:
                continue
            self.globals[info.modname][target.id] = GlobalMutable(
                f"{info.modname}.{target.id}",
                info.modname,
                target.id,
                info.path,
                stmt.lineno,
                stmt.col_offset,
                kind,
            )

    # -- resolution ----------------------------------------------------

    def resolve(self, modname: str, dotted: str) -> str:
        """Canonicalize ``dotted`` as seen from ``modname``.

        Follows import aliases transitively — including re-exports,
        where ``pkg/__init__.py`` does ``from pkg.impl import f`` and a
        client does ``from pkg import f`` — until the name stops
        changing or a cycle/depth limit is hit.
        """
        seen: Set[Tuple[str, str]] = set()
        current_mod, current = modname, dotted
        for _ in range(16):
            if (current_mod, current) in seen:
                break
            seen.add((current_mod, current))
            head, _, rest = current.partition(".")
            aliases = self.imports.get(current_mod, {})
            if head in aliases:
                target = aliases[head]
                current = f"{target}.{rest}" if rest else target
                current_mod = ""  # target is already absolute
                continue
            if current_mod:
                # An unimported bare name refers to this module's scope.
                absolute = f"{current_mod}.{current}"
                current, current_mod = absolute, ""
                continue
            # Absolute name: maybe a re-export (module.symbol where the
            # module's own import table forwards symbol elsewhere).
            owner, _, symbol = current.rpartition(".")
            if (
                symbol
                and owner in self.imports
                and symbol in self.imports[owner]
                and current not in self.functions
                and current not in self.classes
            ):
                current = self.imports[owner][symbol]
                continue
            break
        return current

    def lookup_function(self, target: str) -> Optional[FunctionInfo]:
        """The FunctionInfo a resolved dotted target refers to, if any.

        A class target resolves to its ``__init__``; a
        ``Class.method`` target resolves through the class hierarchy.
        """
        if target in self.functions:
            return self.functions[target]
        if target in self.classes:
            return self.resolve_method(target, "__init__")
        owner, _, attr = target.rpartition(".")
        if owner and owner in self.classes:
            return self.resolve_method(owner, attr)
        return None

    def resolve_method(
        self, class_qualname: str, method: str
    ) -> Optional[FunctionInfo]:
        """Bind ``method`` on a class, walking bases depth-first (MRO-ish)."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.base_names:
                resolved = self.resolve(cls.modname, base)
                if resolved in self.classes:
                    stack.append(resolved)
        return None

    def subclasses_of(self, base_names: Tuple[str, ...]) -> Set[str]:
        """Qualnames of classes transitively deriving from any base name.

        Bases are matched both by resolved qualname and by bare textual
        name, so a fixture subclassing an undefined ``ServeComponent``
        still counts.
        """
        roots: Set[str] = set()
        for cls in self.classes.values():
            for base in cls.base_names:
                bare = base.rpartition(".")[2]
                resolved = self.resolve(cls.modname, base)
                if bare in base_names or resolved.rpartition(".")[2] in base_names:
                    roots.add(cls.qualname)
        # Transitive closure over the known hierarchy.
        changed = True
        while changed:
            changed = False
            for cls in self.classes.values():
                if cls.qualname in roots:
                    continue
                for base in cls.base_names:
                    resolved = self.resolve(cls.modname, base)
                    if resolved in roots:
                        roots.add(cls.qualname)
                        changed = True
                        break
        return roots


def _mutable_kind(value: ast.expr) -> Optional[str]:
    if isinstance(value, ast.List):
        return "list"
    if isinstance(value, ast.Dict):
        return "dict"
    if isinstance(value, ast.Set):
        return "set"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _MUTABLE_CONSTRUCTORS:
            return name
    return None


def build_symbol_table(modules: List[ModuleInfo]) -> SymbolTable:
    """Assemble the project-wide table from parsed modules."""
    table = SymbolTable()
    for info in modules:
        table.add_module(info)
    return table
