"""Pass 2 of the lint engine: flow-aware whole-program rules.

These rules run over the :class:`Project` — the symbol table plus call
graph pass 1 built — instead of one module at a time, which is what
lets them see the defects the per-module pass structurally cannot:

* **DET001** — a serve/engine entry point that *transitively* reaches
  an ambient entropy/wall-clock source, even when the offending call
  hides two imports away behind clean-looking helpers;
* **DET002** — unordered ``set`` iteration whose results flow into an
  ordering-sensitive sink (fingerprints, WAL framing, scatter-gather
  merges) anywhere down the call chain;
* **OWN001** — module-level mutable state shared by more than one
  ``ServeComponent``, exactly the aliasing that silently diverges once
  shards run in separate processes;
* **OWN002** — a registered metric counter incremented by more than
  one owning class anywhere in the program (the single-writer rule,
  enforced globally rather than per call site);
* **OWN004** — a ``tier2_*`` mutator of the fleet-shared second cache
  tier invoked outside the tier's owning modules, the static half of
  the rule that all shared-L2 mutation flows through the serve event
  loop's coordinator.

The sibling syntactic members of these families (DET003 unordered
float accumulation, OWN003 callback capture after handoff) live in
:mod:`repro.lint.rules` — they need no cross-module context.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.rules import (
    SCOPE_WHOLE_PROGRAM,
    Violation,
    register_meta,
    unordered_set_locals,
)
from repro.lint.symbols import (
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    build_symbol_table,
    dotted_name,
)

#: Serving-layer base classes whose subclasses own shard-visible state.
_COMPONENT_BASES: Tuple[str, ...] = ("ServeComponent",)

#: Entry-point heuristics: functions on these name shapes are treated
#: as serve/engine roots for determinism taint (DET001).
_ROOT_NAME_PREFIXES: Tuple[str, ...] = ("serve", "run_", "main")
_ROOT_CLASS_RE = re.compile(r"Engine$")

#: Function names that make a callee ordering-sensitive (DET002):
#: anything hashing, framing WAL records, or merging shard results.
_ORDER_SINK_RE = re.compile(
    r"(fingerprint|digest|checksum|frame|merge|hexdigest)", re.IGNORECASE
)

#: Metric constants look like ``N.WINDOW_OPS`` (OWN002).
_CONST_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


@dataclass
class Project:
    """The whole-program view pass 1 produces: symbols + call graph."""

    table: SymbolTable
    graph: CallGraph


def build_project(modules: List[ModuleInfo]) -> Project:
    table = build_symbol_table(modules)
    return Project(table, build_call_graph(table))


WholeProgramRule = Callable[[Project], Iterator[Violation]]

#: Registry of whole-program checkers (id -> rule function).
WHOLE_PROGRAM_RULES: Dict[str, WholeProgramRule] = {}


def whole_program_rule(
    rule_id: str,
) -> Callable[[WholeProgramRule], WholeProgramRule]:
    """Register a whole-program checker under ``rule_id``."""

    def register(func: WholeProgramRule) -> WholeProgramRule:
        WHOLE_PROGRAM_RULES[rule_id] = func
        register_meta(rule_id, SCOPE_WHOLE_PROGRAM, func.__doc__ or "")
        return func

    return register


def run_whole_program_rules(
    project: Project, rule_ids: Optional[List[str]] = None
) -> List[Violation]:
    """Run the (selected) whole-program rules over a built project."""
    selected = (
        [r for r in rule_ids if r in WHOLE_PROGRAM_RULES]
        if rule_ids is not None
        else list(WHOLE_PROGRAM_RULES)
    )
    findings: List[Violation] = []
    for rule_id in selected:
        findings.extend(WHOLE_PROGRAM_RULES[rule_id](project))
    return findings


# -- entry-point/root detection ----------------------------------------------


def serve_engine_roots(project: Project) -> List[str]:
    """Functions that count as serve/engine entry points, sorted.

    A root is a method of a ``ServeComponent`` subclass or an
    ``*Engine`` class, any function defined in a ``serve`` package, or
    a function named ``serve*``/``run_*``/``main*`` — the surfaces a
    multi-process executor would call into.
    """
    components = project.table.subclasses_of(_COMPONENT_BASES)
    roots: Set[str] = set()
    for info in project.table.functions.values():
        if info.classname is not None:
            class_qual = f"{info.modname}.{info.classname}"
            if class_qual in components or _ROOT_CLASS_RE.search(info.classname):
                roots.add(info.qualname)
                continue
        if any(info.name.startswith(p) for p in _ROOT_NAME_PREFIXES):
            roots.add(info.qualname)
            continue
        if "serve" in info.modname.split("."):
            roots.add(info.qualname)
    return sorted(roots)


# -- DET001: transitive ambient nondeterminism -------------------------------


@whole_program_rule("DET001")
def check_ambient_taint(project: Project) -> Iterator[Violation]:
    """Serve/engine paths must not transitively reach ambient entropy.

    SIM001 bans importing ``random``/``time``/``datetime`` in the file
    it lints, but a serve path that calls a helper that calls
    ``os.urandom()`` two modules away passes every per-module check
    while still diverging run-to-run.  This pass resolves the project
    call graph (imports, aliases, re-exports, ``self.`` method binds)
    and flags every ambient call site — ``random.*``, ``time.*``,
    ``os.urandom``, ``uuid.uuid4``, ``secrets.*``, wall-clock
    ``datetime`` constructors — reachable from a serve/engine entry
    point, naming one offending call chain.  Fix by injecting a seeded
    ``random.Random`` (or routing time through the sim clock) at the
    entry point and threading it down.
    """
    graph = project.graph
    if not graph.ambient:
        return
    tainted = graph.reaching(set(graph.ambient))
    claimed: Dict[str, str] = {}
    for root in serve_engine_roots(project):
        if root not in tainted:
            continue
        for reached in graph.reachable_from([root]):
            if reached in graph.ambient and reached not in claimed:
                claimed[reached] = root
    for func_qual in sorted(claimed):
        root = claimed[func_qual]
        chain = graph.shortest_path(root, func_qual) or [root, func_qual]
        shown = " -> ".join(part.rpartition(".")[2] + "()" for part in chain)
        for site in graph.ambient[func_qual]:
            yield Violation(
                site.path,
                site.line,
                site.col,
                "DET001",
                f"ambient {site.target}() is reachable from serve/engine "
                f"entry {root} (call chain {shown}); inject a seeded "
                f"Random or sim-clock time at the entry point instead",
            )


# -- DET002: unordered iteration into ordering-sensitive sinks ---------------


def _order_sensitive_functions(project: Project) -> Set[str]:
    """Functions that are, or transitively feed, an ordering sink."""
    sinks = {
        qual
        for qual, info in project.table.functions.items()
        if _ORDER_SINK_RE.search(info.name)
    }
    if not sinks:
        return set()
    return project.graph.reaching(sinks)


def _call_is_order_sensitive(
    project: Project,
    info: FunctionInfo,
    call: ast.Call,
    sensitive: Set[str],
) -> bool:
    dotted = dotted_name(call.func)
    if dotted is not None and _ORDER_SINK_RE.search(dotted.rpartition(".")[2]):
        return True
    target = project.graph.resolve_call(info, call)
    return target is not None and target in sensitive


@whole_program_rule("DET002")
def check_unordered_flow_into_sinks(project: Project) -> Iterator[Violation]:
    """No ``set`` iteration order may flow into an ordering-sensitive
    sink (fingerprints, WAL framing, scatter-gather merges).

    Python ``set`` iteration order depends on insertion history and
    string-hash randomization; feeding it into anything that frames
    bytes or folds a digest makes the artifact differ across processes
    even on identical inputs — the exact property multi-process shard
    merge must preserve.  Using the whole-program call graph, a sink
    is any function whose name says it orders bytes (``*fingerprint*``,
    ``*digest*``, ``*frame*``, ``*merge*``, ...) *or any function that
    transitively calls one*.  Flagged: a ``for`` loop over a set whose
    body calls a sink, passing a set expression directly to a sink, or
    iterating a set inside a sink-named function.  Fix with
    ``sorted(...)`` at the iteration point.
    """
    sensitive = _order_sensitive_functions(project)
    for qual in sorted(project.table.functions):
        info = project.table.functions[qual]
        func_node = info.node
        if not isinstance(func_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        unordered = unordered_set_locals(func_node)
        self_is_sink = bool(_ORDER_SINK_RE.search(info.name))
        for sub in ast.walk(func_node):
            if isinstance(sub, ast.For) and _is_unordered_expr(
                sub.iter, unordered
            ):
                body_calls_sink = any(
                    isinstance(inner, ast.Call)
                    and _call_is_order_sensitive(project, info, inner, sensitive)
                    for stmt in sub.body
                    for inner in ast.walk(stmt)
                )
                if body_calls_sink or self_is_sink:
                    yield Violation(
                        info.path,
                        sub.lineno,
                        sub.col_offset,
                        "DET002",
                        f"set iteration order flows into an "
                        f"ordering-sensitive sink in {info.qualname}; "
                        f"iterate sorted(...) so the framed/merged bytes "
                        f"are reproducible",
                    )
            elif isinstance(sub, ast.Call) and _call_is_order_sensitive(
                project, info, sub, sensitive
            ):
                for arg in sub.args:
                    if _is_unordered_expr(arg, unordered):
                        yield Violation(
                            info.path,
                            arg.lineno,
                            arg.col_offset,
                            "DET002",
                            f"unordered set passed directly to an "
                            f"ordering-sensitive sink in {info.qualname}; "
                            f"pass sorted(...) instead",
                        )


def _is_unordered_expr(node: ast.expr, unordered_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in unordered_names
    return False


# -- OWN001: shared mutable module state across components -------------------


def _bound_names(target: ast.expr) -> Iterator[str]:
    """Names a target expression *binds* (not container mutations)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            yield from _bound_names(el)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _global_refs_in(
    project: Project, info: FunctionInfo
) -> Set[str]:
    """Qualnames of module-level mutables a function touches."""
    func_node = info.node
    locals_: Set[str] = set()
    if isinstance(func_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func_node.args
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            locals_.add(a.arg)
        for sub in ast.walk(func_node):
            # Only *binding* targets make a name local; a subscript or
            # attribute store (``registry[k] = v``) mutates an existing
            # object and must still resolve as a global reference.
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    locals_.update(_bound_names(target))
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                locals_.update(_bound_names(sub.target))
            elif isinstance(sub, (ast.For, ast.comprehension)):
                locals_.update(_bound_names(sub.target))
    all_globals = {
        g.qualname
        for per_mod in project.table.globals.values()
        for g in per_mod.values()
    }
    touched: Set[str] = set()
    for sub in ast.walk(info.node):
        dotted: Optional[str] = None
        if isinstance(sub, ast.Attribute):
            dotted = dotted_name(sub)
        elif isinstance(sub, ast.Name) and sub.id not in locals_:
            dotted = sub.id
        if dotted is None:
            continue
        head = dotted.split(".", 1)[0]
        if head in locals_ or head == "self":
            continue
        resolved = project.table.resolve(info.modname, dotted)
        for qual in all_globals:
            if resolved == qual or resolved.startswith(qual + "."):
                touched.add(qual)
    return touched


@whole_program_rule("OWN001")
def check_shared_mutable_state(project: Project) -> Iterator[Violation]:
    """Module-level mutable state must not be shared across serving
    components.

    A module-level ``list``/``dict``/``set`` touched by methods of two
    different ``ServeComponent`` subclasses is invisible coupling: in
    one process it makes shard runs order-dependent, and under a
    multi-process executor the copies silently diverge (each worker
    mutates its own import).  The pass resolves every global reference
    through import aliases across the whole program and flags any
    mutable module global reachable from more than one component
    class.  Fix by moving the state into the owning component (or an
    explicitly passed context object).
    """
    components = project.table.subclasses_of(_COMPONENT_BASES)
    if not components:
        return
    touches: Dict[str, Set[str]] = {}
    for qual in sorted(project.table.functions):
        info = project.table.functions[qual]
        if info.classname is None:
            continue
        class_qual = f"{info.modname}.{info.classname}"
        if class_qual not in components:
            continue
        for global_qual in _global_refs_in(project, info):
            touches.setdefault(global_qual, set()).add(class_qual)
    for per_mod in project.table.globals.values():
        for g in per_mod.values():
            sharers = touches.get(g.qualname, set())
            if len(sharers) >= 2:
                shown = ", ".join(sorted(sharers))
                yield Violation(
                    g.path,
                    g.line,
                    g.col,
                    "OWN001",
                    f"module-level mutable {g.name!r} ({g.kind}) is shared "
                    f"by {len(sharers)} serving components ({shown}); "
                    f"under process executors each worker would mutate its "
                    f"own copy — give it a single owner",
                )


# -- OWN002: global single-writer metric counters ----------------------------


@dataclass(frozen=True)
class _IncSite:
    metric: str
    writer: str
    path: str
    line: int
    col: int


def _is_test_module(modname: str) -> bool:
    """Test modules may poke counters freely; ownership is a
    production-code property."""
    last = modname.rpartition(".")[2]
    return last.startswith("test_") or last == "conftest"


def _metric_inc_sites(project: Project) -> List[_IncSite]:
    sites: List[_IncSite] = []
    for qual in sorted(project.table.functions):
        info = project.table.functions[qual]
        if _is_test_module(info.modname):
            continue
        for sub in ast.walk(info.node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "inc"
                and sub.args
            ):
                continue
            dotted = dotted_name(sub.args[0])
            if dotted is None:
                continue
            resolved = project.table.resolve(info.modname, dotted)
            const = resolved.rpartition(".")[2]
            if not _CONST_RE.match(const):
                continue
            writer = (
                f"{info.modname}.{info.classname}"
                if info.classname is not None
                else info.qualname
            )
            sites.append(
                _IncSite(resolved, writer, info.path, sub.lineno, sub.col_offset)
            )
    return sites


@whole_program_rule("OWN002")
def check_metric_single_writer(project: Project) -> Iterator[Violation]:
    """Each registered metric counter must have exactly one writer
    class, program-wide.

    Fleet metric reduction assumes per-shard counters are owned: when
    two classes both ``inc()`` the same constant, merged windows
    double-count and — once shards execute in parallel processes — the
    interleaving becomes racy and the audited totals nondeterministic.
    PR 5 established the single-writer convention per call site; this
    pass enforces it globally by resolving every ``.inc(N.CONST)``
    first argument across the call graph's modules and flagging any
    constant with more than one distinct owning class.  Test modules
    (``test_*``/``conftest``) are exempt — exercising the registry is
    not ownership.  Fix by routing the increment through the owning
    component (or splitting the metric).
    """
    by_metric: Dict[str, List[_IncSite]] = {}
    for site in _metric_inc_sites(project):
        by_metric.setdefault(site.metric, []).append(site)
    for metric in sorted(by_metric):
        sites = by_metric[metric]
        writers = sorted({site.writer for site in sites})
        if len(writers) < 2:
            continue
        shown = ", ".join(writers)
        for site in sites:
            yield Violation(
                site.path,
                site.line,
                site.col,
                "OWN002",
                f"metric {metric.rpartition('.')[2]} has {len(writers)} "
                f"writers across the program ({shown}); window counters "
                f"need a single owning writer to merge deterministically",
            )


# -- OWN004: shared second-tier mutation stays with its owner ----------------

#: The shared tier's mutation surface is its ``tier2_*`` methods; only
#: the cache's own module and the serve-side coordinator module may
#: call them (both are named ``tier2``).
_TIER2_OWNER_MODULE = "tier2"


@whole_program_rule("OWN004")
def check_tier2_mutation_ownership(project: Project) -> Iterator[Violation]:
    """Fleet-shared Tier2 state may only be mutated through its owning
    component on the serve event loop.

    The second cache tier is the one mutable structure every shard
    aliases, so its determinism story leans entirely on single-writer
    ordering: all probes, offers, resizes, and shard purges flow
    through the ``Tier2Coordinator`` inside loop callbacks.  A stray
    ``tier2_*`` call from an engine, a session, or a metrics helper
    would mutate shared state outside that ordering — correct-looking
    today, nondeterministic the moment call order shifts.  This pass
    flags any ``*.tier2_*(...)`` call in a module other than the
    tier's own implementation modules (``repro.cache.tier2`` /
    ``repro.serve.tier2``).  Test modules are exempt.  Fix by routing
    the mutation through the coordinator's surface (``probe`` /
    ``offer`` / ``set_budget`` / ``drop_shard``).
    """
    for qual in sorted(project.table.functions):
        info = project.table.functions[qual]
        if _is_test_module(info.modname):
            continue
        if info.modname.rpartition(".")[2] == _TIER2_OWNER_MODULE:
            continue
        for sub in ast.walk(info.node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr.startswith("tier2_")
            ):
                continue
            yield Violation(
                info.path,
                sub.lineno,
                sub.col_offset,
                "OWN004",
                f"shared-tier mutator {sub.func.attr}() called from "
                f"{info.modname}; Tier2 state is single-writer — route "
                f"the mutation through the serve loop's Tier2Coordinator",
            )
