"""Figure 7: hit rate vs cache size on the four static workloads.

Reproduces the main static evaluation: six caching schemes swept over
cache sizes on (a) Point Lookup, (b) Short Scan (length 16),
(c) Balanced (1/3 points, 1/3 short scans, 1/3 writes), and
(d) Long Scan (length 64), all Zipfian 0.9.

Shape checks (not absolute numbers) assert the paper's findings:

* (a) result caches (KV/Range/AdCache) >= block cache on points;
  AdCache best-or-tied.
* (b) block cache beats the range-cache family on short scans; AdCache
  tracks block within a small margin by converting its range share.
* (c) AdCache competitive with the best static choice.
* (d) all-or-nothing range caching is worst-or-near-worst; AdCache
  beats vanilla Range Cache via partial admission.

Headline numbers (paper: up to +14% hit rate and -25% SST reads vs the
default block cache on point lookups) are printed and recorded.
"""

from __future__ import annotations

from common import (
    CACHE_SIZES,
    MAIN_STRATEGIES,
    NUM_KEYS,
    display,
    measure,
    print_banner,
    scaled,
)
from repro.bench.report import format_series
from repro.workloads.generator import (
    balanced_workload,
    long_scan_workload,
    point_lookup_workload,
    short_scan_workload,
)

WORKLOADS = {
    "(a) Point Lookup": point_lookup_workload(NUM_KEYS),
    "(b) Short Scan": short_scan_workload(NUM_KEYS),
    "(c) Balanced": balanced_workload(NUM_KEYS),
    "(d) Long Scan": long_scan_workload(NUM_KEYS),
}

NUM_OPS = scaled(5000)
WARMUP = scaled(7000)


def run_grid():
    grid = {}
    for wname, spec in WORKLOADS.items():
        for sname, cache_bytes in CACHE_SIZES.items():
            for strategy in MAIN_STRATEGIES:
                grid[(wname, sname, strategy)] = measure(
                    strategy, spec, cache_bytes, NUM_OPS, WARMUP, seed=5
                )
    return grid


def _series(grid, wname, field="hit_rate"):
    return {
        display(s): [
            getattr(grid[(wname, size, s)], field) for size in CACHE_SIZES
        ]
        for s in MAIN_STRATEGIES
    }


def test_fig07_static_workloads(run_once):
    grid = run_once(run_grid)
    print_banner("Figure 7 — hit rate vs cache size, four static workloads")
    for wname in WORKLOADS:
        print()
        print(
            format_series(
                f"Figure 7 {wname}",
                "cache",
                list(CACHE_SIZES),
                _series(grid, wname),
            )
        )

    sizes = list(CACHE_SIZES)

    def hit(wname, size, strategy):
        return grid[(wname, size, strategy)].hit_rate

    # (a) Point lookups: result caches beat block; AdCache best-or-tied.
    for size in sizes[:3]:  # where the cache is scarce
        assert hit("(a) Point Lookup", size, "range") >= hit(
            "(a) Point Lookup", size, "block"
        ) - 0.02
        assert hit("(a) Point Lookup", size, "adcache") >= hit(
            "(a) Point Lookup", size, "block"
        ) - 0.02

    # Headline: AdCache vs default block cache on point lookups.
    best_gain, best_read_cut = 0.0, 0.0
    for size in sizes:
        block = grid[("(a) Point Lookup", size, "block")]
        ad = grid[("(a) Point Lookup", size, "adcache")]
        best_gain = max(best_gain, ad.hit_rate - block.hit_rate)
        if block.sst_reads:
            best_read_cut = max(
                best_read_cut, 1.0 - ad.sst_reads / block.sst_reads
            )
    print()
    print(
        f"Headline (paper: +14% hit rate, -25% SST reads): "
        f"max hit-rate gain = {best_gain * 100:.1f} pts, "
        f"max SST-read reduction = {best_read_cut * 100:.1f}%"
    )
    assert best_gain > 0.0
    assert best_read_cut > 0.0

    # (b) Short scans: block cache dominates the range-cache family.
    # (The absolute h_estimate floor is above zero here because the
    # paper's IO_estimate seek term assumes a populated L0; with a
    # scan-only workload L0 stays empty, inflating the no-cache
    # baseline equally for every scheme.)
    for size in sizes:
        assert hit("(b) Short Scan", size, "block") > hit(
            "(b) Short Scan", size, "range"
        )
        # KV cache cannot serve scans: it is the floor of the lineup.
        assert hit("(b) Short Scan", size, "kv") <= min(
            hit("(b) Short Scan", size, s)
            for s in MAIN_STRATEGIES
            if s != "kv"
        ) + 1e-6

    # (d) Long scans: partial admission beats all-or-nothing caching.
    ad_wins = sum(
        hit("(d) Long Scan", size, "adcache") >= hit("(d) Long Scan", size, "range")
        for size in sizes
    )
    assert ad_wins >= len(sizes) - 1

    # (c) Balanced: at the largest cache AdCache reaches the best
    # static scheme.  (Mid sizes can lag within the short benchmark
    # runs — the controller is still converging; see EXPERIMENTS.md.)
    size = sizes[-1]
    best_static = max(
        hit("(c) Balanced", size, s) for s in MAIN_STRATEGIES if s != "adcache"
    )
    assert hit("(c) Balanced", size, "adcache") >= best_static - 0.05
