"""Figure 11(b): ablation of AdCache's two mechanisms.

On a long-scan workload the paper stacks four configurations:

    Range Cache  <  admission-only  <  partitioning-only  <  full AdCache

(admission alone limits long-scan pollution, ~+11%; partitioning alone
converts memory to the block cache, ~+55%; both together, ~+61%).
This bench reproduces the ordering and reports the relative gains.
"""

from __future__ import annotations

from common import NUM_KEYS, measure, print_banner, scaled
from repro.bench.report import format_table
from repro.workloads.generator import long_scan_workload

CACHE = 512 * 1024
CONFIGS = ["range", "adcache-admission", "adcache-partition", "adcache"]
LABELS = {
    "range": "Range Cache (baseline)",
    "adcache-admission": "AdCache: admission control only",
    "adcache-partition": "AdCache: adaptive partitioning only",
    "adcache": "AdCache: full system",
}


def run_experiment():
    spec = long_scan_workload(NUM_KEYS)
    return {
        name: measure(
            name, spec, CACHE, num_ops=scaled(5000), warmup_ops=scaled(6000), seed=5
        )
        for name in CONFIGS
    }


def test_fig11b_ablation(run_once):
    results = run_once(run_experiment)
    print_banner("Figure 11(b) — ablation on the long-scan workload")
    base = results["range"].hit_rate
    rows = []
    for name in CONFIGS:
        r = results[name]
        gain = (r.hit_rate - base) / base * 100 if base > 0 else float("nan")
        rows.append([LABELS[name], f"{r.hit_rate:.3f}", f"{gain:+.0f}%"])
    print(format_table(["configuration", "hit rate", "vs Range Cache"], rows))

    hit = {name: results[name].hit_rate for name in CONFIGS}
    # Each mechanism alone beats the baseline...
    assert hit["adcache-admission"] > hit["range"]
    assert hit["adcache-partition"] > hit["range"]
    # ...and the full system is at least as good as the strongest
    # single mechanism (within noise).
    assert hit["adcache"] >= max(hit["adcache-admission"], hit["adcache-partition"]) - 0.05
    assert hit["adcache"] > hit["range"]
