"""Figure 11(a): learning overhead under multi-client load.

The paper's claim: background training does not interfere with serving
— per-client QPS stays flat as clients grow from 1 to 32.  Here the
equivalent measurements are:

* wall-clock throughput with online learning enabled vs frozen, at 1-8
  client threads over sharded caches (ratio ~ 1 means no interference);
* the fraction of wall time spent inside the controller (inference +
  training), which the paper's design amortizes to negligible levels.
"""

from __future__ import annotations

import threading
import time

from common import NUM_KEYS, bench_config, fresh_options, print_banner, scaled
from repro.bench.harness import seed_database
from repro.bench.report import format_table
from repro.core.adcache import AdCacheEngine
from repro.workloads.keys import key_of
from repro.workloads.zipfian import ZipfianGenerator

CACHE = 512 * 1024
OPS_PER_CLIENT = scaled(2500)
CLIENT_COUNTS = [1, 2, 4, 8]


def drive_clients(engine, num_clients: int) -> float:
    """Read-only clients hammering the engine; returns wall seconds."""

    def client(client_id: int) -> None:
        gen = ZipfianGenerator(NUM_KEYS, 0.9, seed=client_id + 1)
        for idx in gen.sample(OPS_PER_CLIENT):
            i = int(idx)
            if i % 4 == 0:
                engine.scan(key_of(min(i, NUM_KEYS - 16)), 16)
            else:
                engine.get(key_of(i))

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(num_clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start


def timed_engine(online: bool, num_shards: int):
    tree = seed_database(NUM_KEYS, fresh_options(), seed=7)
    config = bench_config(CACHE, seed=5, num_shards=num_shards)
    config.online_learning = online
    engine = AdCacheEngine(tree, config)
    # Wrap the controller to account its wall time.
    controller_time = [0.0]
    inner = engine.controller.on_window

    def timed_on_window(window):
        t0 = time.perf_counter()
        record = inner(window)
        controller_time[0] += time.perf_counter() - t0
        return record

    engine.on_window = timed_on_window
    return engine, controller_time


def run_experiment():
    rows = []
    for clients in CLIENT_COUNTS:
        engine_on, t_ctl = timed_engine(online=True, num_shards=4)
        wall_on = drive_clients(engine_on, clients)
        engine_off, _ = timed_engine(online=False, num_shards=4)
        wall_off = drive_clients(engine_off, clients)
        total_ops = clients * OPS_PER_CLIENT
        rows.append(
            {
                "clients": clients,
                "qps_per_client_on": total_ops / wall_on / clients,
                "qps_per_client_off": total_ops / wall_off / clients,
                "controller_share": t_ctl[0] / wall_on,
            }
        )
    return rows


def test_fig11a_overhead(run_once):
    rows = run_once(run_experiment)
    print_banner("Figure 11(a) — learning overhead vs client count")
    print(
        format_table(
            ["clients", "per-client QPS (training)", "per-client QPS (frozen)",
             "training/frozen", "controller wall share"],
            [
                [
                    str(r["clients"]),
                    f"{r['qps_per_client_on']:,.0f}",
                    f"{r['qps_per_client_off']:,.0f}",
                    f"{r['qps_per_client_on'] / r['qps_per_client_off']:.2f}",
                    f"{r['controller_share'] * 100:.1f}%",
                ]
                for r in rows
            ],
        )
    )
    # Training must not cost a meaningful fraction of throughput: the
    # load-bearing check is the training/frozen ratio.  The controller's
    # wall share is informational — it reflects the pure-Python serving
    # path and machine load, not the paper's C++ economics — so it only
    # gets a coarse sanity bound.
    for r in rows:
        ratio = r["qps_per_client_on"] / r["qps_per_client_off"]
        assert ratio > 0.7, r
        assert r["controller_share"] < 0.6, r
