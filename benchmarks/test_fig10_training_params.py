"""Figure 10: training-parameter sensitivity and parameter evolution.

Three panels, all on a workload shift from point-lookup-heavy to
short-scan-heavy (the paper warms on a read-heavy phase, then shifts):

1. **Window size** — smaller windows adapt faster; a frozen pretrained
   model (no online learning, no reward smoothing) shows the sharpest
   post-shift dip.
2. **Smoothing factor alpha** — all settings recover; heavy smoothing
   reacts more slowly.
3. **Parameter evolution** — the applied range ratio falls toward the
   block cache after the shift to short scans, and the scan-admission
   threshold settles near the scan length (16).
"""

from __future__ import annotations

import numpy as np

from common import NUM_KEYS, bench_config, fresh_options, print_banner, scaled
from repro.bench.harness import apply_operation, seed_database
from repro.bench.report import format_series
from repro.bench.strategies import build_engine
from repro.core.adcache import AdCacheEngine
from repro.workloads.generator import (
    WorkloadGenerator,
    point_lookup_workload,
    short_scan_workload,
)

CACHE = 512 * 1024
PHASE1_OPS = scaled(8000)   # warm on point lookups
PHASE2_OPS = scaled(12000)  # shift to short scans


def run_shift(engine) -> AdCacheEngine:
    gen1 = WorkloadGenerator(point_lookup_workload(NUM_KEYS), seed=21)
    for op in gen1.ops(PHASE1_OPS):
        apply_operation(engine, op)
    gen2 = WorkloadGenerator(short_scan_workload(NUM_KEYS), seed=22)
    for op in gen2.ops(PHASE2_OPS):
        apply_operation(engine, op)
    return engine


def engine_with(window_size=None, alpha=None, seed=5):
    overrides = {}
    if window_size is not None:
        overrides["window_size"] = window_size
    if alpha is not None:
        overrides["alpha"] = alpha
    tree = seed_database(NUM_KEYS, fresh_options(), seed=7)
    return AdCacheEngine(tree, bench_config(CACHE, seed=seed, **overrides))


def pretrained_engine():
    tree = seed_database(NUM_KEYS, fresh_options(), seed=7)
    return build_engine("adcache-pretrained", tree, CACHE, seed=5)


def post_shift_curve(engine, phase1_windows):
    """Mean hit rate right after the shift and at the end."""
    h = [r.h_estimate for r in engine.controller.history]
    shift = phase1_windows
    dip = float(np.mean(h[shift : shift + 5])) if len(h) > shift + 5 else 0.0
    end = float(np.mean(h[-8:]))
    return dip, end


def run_experiment():
    out = {}

    # Panel 1: window sizes (plus the frozen pretrained model).
    for window in (100, 250, 1000):
        engine = run_shift(engine_with(window_size=window))
        out[f"window={window}"] = (engine, PHASE1_OPS // window)
    pre = run_shift(pretrained_engine())
    out["pretrained"] = (pre, PHASE1_OPS // pre.config.window_size)

    # Panel 2: alpha sweep at the default window.
    for alpha in (0.0, 0.5, 0.9):
        engine = run_shift(engine_with(alpha=alpha))
        out[f"alpha={alpha}"] = (engine, PHASE1_OPS // engine.config.window_size)
    return out


def test_fig10_training_params(run_once):
    out = run_once(run_experiment)
    print_banner("Figure 10 — training-parameter sensitivity across a shift")

    rows = {}
    for name, (engine, shift_w) in out.items():
        dip, end = post_shift_curve(engine, shift_w)
        rows[name] = (dip, end)
    print(
        format_series(
            "post-shift hit rate (dip = first 5 windows, end = last 8)",
            "setting",
            list(rows),
            {
                "dip": [rows[n][0] for n in rows],
                "end": [rows[n][1] for n in rows],
            },
        )
    )

    # Every online configuration recovers: end >= dip - noise.
    for name, (dip, end) in rows.items():
        if name != "pretrained":
            assert end >= dip - 0.05, (name, dip, end)

    # Panel 3: parameter evolution for the default configuration.
    engine, shift_w = out["window=250"]
    history = engine.controller.history
    ratios = [r.range_ratio for r in history]
    scan_admit = [
        min(64.0, r.scan_a + r.scan_b * (64 - r.scan_a)) for r in history
    ]
    print()
    marks = [0, shift_w - 1, shift_w + 5, len(history) - 1]
    print(
        format_series(
            "parameter evolution (default config)",
            "window",
            [history[i].window_index for i in marks],
            {
                "range_ratio": [ratios[i] for i in marks],
                "scan_admit(l=64)": [scan_admit[i] for i in marks],
                "actor_lr": [history[i].actor_lr for i in marks],
            },
            fmt="{:.4f}",
        )
    )
    # After the shift to short scans the boundary moves toward the
    # block cache relative to its pre-shift level.
    pre_ratio = float(np.mean(ratios[max(0, shift_w - 5) : shift_w]))
    post_ratio = float(np.mean(ratios[-8:]))
    assert post_ratio <= pre_ratio + 0.15
