"""Figure 6: the eviction footprint of scans in each cache layout.

The paper's illustration: with B = 4 entries/block, a length-16 scan
touches ~8 blocks in the block cache (each overlapping sorted run
contributes at least one block, double the ideal 4), while a length-64
scan admitted whole into the range cache displaces 64 entries.  This
bench measures both footprints on the live engine.
"""

from __future__ import annotations

from common import build, print_banner
from repro.bench.report import format_table
from repro.workloads.keys import key_of


def run_experiment():
    out = {}

    # Block-cache footprint of one length-16 scan on a multi-run tree.
    engine = build("block", cache_bytes=4 << 20)
    runs = engine.tree.num_sorted_runs
    inserted_before = engine.block_cache.stats.insertions
    engine.scan(key_of(1000), 16)
    out["block_blocks_16"] = engine.block_cache.stats.insertions - inserted_before
    out["ideal_blocks_16"] = 16 // engine.tree.options.entries_per_block
    out["runs"] = runs

    # Range-cache footprint of one length-64 scan (all-or-nothing).
    engine2 = build("range", cache_bytes=4 << 20)
    before = len(engine2.range_cache)
    engine2.scan(key_of(1000), 64)
    out["range_entries_64"] = len(engine2.range_cache) - before

    # The same scan under AdCache's partial admission (a=16, b=0.5).
    engine3 = build("adcache", cache_bytes=4 << 20)
    engine3.scan_admission.set_params(16.0, 0.5)
    engine3.controller.config.online_learning = False
    before = len(engine3.range_cache)
    engine3.scan(key_of(1000), 64)
    out["adcache_entries_64"] = len(engine3.range_cache) - before
    return out


def test_fig06_scan_footprint(run_once):
    out = run_once(run_experiment)
    print_banner("Figure 6 — cache footprint of scans (B = 4 entries/block)")
    print(
        format_table(
            ["measurement", "value"],
            [
                ["sorted runs overlapped", str(out["runs"])],
                ["blocks filled by len-16 scan (block cache)", str(out["block_blocks_16"])],
                ["ideal blocks (16 / B)", str(out["ideal_blocks_16"])],
                ["entries filled by len-64 scan (range cache)", str(out["range_entries_64"])],
                ["entries filled by len-64 scan (AdCache, a=16 b=0.5)", str(out["adcache_entries_64"])],
            ],
        )
    )
    # Paper: the scan touches more than the ideal block count because
    # every overlapping sorted run contributes at least one block.
    assert out["block_blocks_16"] > out["ideal_blocks_16"]
    assert out["block_blocks_16"] >= out["runs"]
    # All-or-nothing range admission takes the full 64 entries...
    assert out["range_entries_64"] == 64
    # ...while partial admission bounds it to b*(64-16) = 24.
    assert out["adcache_entries_64"] <= 24
