"""Table 2: memory overhead of the RL model and online training.

The paper reports, for the two 2x256-hidden networks at float32:
~550 KB of weights, ~140k parameters, and ~2 MB total once gradients
and Adam moment estimates are counted.  This bench measures the real
implementation's footprint.
"""

from __future__ import annotations

from common import print_banner
from repro.bench.report import format_table
from repro.core.adcache import ACTION_DIM
from repro.rl.actor_critic import ActorCriticAgent
from repro.rl.features import STATE_DIM


def run_experiment():
    agent = ActorCriticAgent(STATE_DIM, ACTION_DIM, hidden_dim=256, seed=0)
    overhead = agent.memory_overhead_bytes()
    overhead["parameters"] = agent.num_parameters
    return overhead


def test_tab02_memory_overhead(run_once):
    overhead = run_once(run_experiment)
    print_banner("Table 2 — memory overhead of the RL model")
    kb = lambda b: f"{b / 1024:.0f} KB"  # noqa: E731
    print(
        format_table(
            ["component", "measured", "paper"],
            [
                ["parameters", f"{overhead['parameters']:,}", "~140,000"],
                ["model weights", kb(overhead["model_weights"]), "~550 KB"],
                ["gradients", kb(overhead["gradients"]), "~550 KB"],
                ["optimizer states", kb(overhead["optimizer_states"]), "~1.1 MB"],
                ["total (training)", kb(overhead["total"]), "~2 MB"],
            ],
        )
    )
    assert 130_000 <= overhead["parameters"] <= 160_000
    assert 450 * 1024 <= overhead["model_weights"] <= 650 * 1024
    assert overhead["optimizer_states"] == 2 * overhead["model_weights"]
    assert 1_800_000 <= overhead["total"] <= 2_600_000
