"""Chaos experiment: resilience of the full AdCache stack under faults.

Runs the same seeded mixed workload through a fault-free engine and an
engine subjected to transient read errors (1%), permanent block
corruption (0.1%), periodic crash/recovery cycles, and a controller
stats blackout.  The resilience contract: query results are
byte-identical to the clean run, every fault is absorbed (retried or
repaired), the degraded-mode guard activates during the blackout and
recovers after it, and the estimated hit rate regresses only modestly
(crashes flush the caches; faults must not wreck steady-state caching).
"""

from __future__ import annotations

from common import BENCH_WINDOW, NUM_KEYS, fresh_options, print_banner, scaled
from repro.bench.report import format_table
from repro.faults.chaos import report_rows, run_chaos

TRANSIENT_RATE = 0.01
CORRUPTION_RATE = 0.001
BLACKOUT_WINDOW = 12
CRASH_EVERY = 5000


def run_experiment():
    return run_chaos(
        ops=scaled(20_000),
        num_keys=NUM_KEYS,
        cache_kb=256,
        strategy="adcache",
        options=fresh_options(),
        transient_read_rate=TRANSIENT_RATE,
        corruption_rate=CORRUPTION_RATE,
        crash_every=CRASH_EVERY if scaled(20_000) > CRASH_EVERY else 0,
        blackout_window=BLACKOUT_WINDOW,
        window_size=BENCH_WINDOW,
        seed=0,
    )


def test_chaos_resilience(run_once):
    report = run_once(run_experiment)
    print_banner(
        f"Chaos — {TRANSIENT_RATE:.0%} transient / {CORRUPTION_RATE:.1%} "
        f"corruption over {report.ops:,} ops"
    )
    print(format_table(["metric", "value"], [list(r) for r in report_rows(report)]))

    # Correctness: faults may never change what queries return.
    assert report.wrong_reads == 0
    # The schedule actually exercised every fault path.
    assert report.faults.transient_injected > 0
    assert report.faults.corruptions_injected > 0
    assert report.read_retries == report.faults.transient_injected
    assert report.corruption_recoveries == report.faults.corruptions_injected
    assert report.retry_latency_us > 0
    # The blackout tripped the degraded guard, and the controller came back.
    assert report.degraded_activations >= 1
    assert report.degraded_recoveries >= 1
    # Bounded performance damage: crash-flushed caches and fault stalls
    # must not collapse the hit rate.
    assert abs(report.hit_rate_regression) < 0.10
