"""Scenario-atlas experiment: the full scenarios × strategies matrix.

Runs every registered scenario against the four headline strategies at
experiment scale (larger keyspaces and budgets than the unit-test
sweep), with the double-run fingerprint gate on in every cell.  This is
the evaluation the dynamic-workload papers (RusKey, ArceKV) lead with,
pointed at the serving fleet instead of a single engine.

The claims under test:

* every cell of the matrix is bit-for-bit reproducible (double runs
  agree), even under adversarial phase schedules — flash crowds, scan
  storms, write floods, tenant churn, key-space growth;
* request conservation holds in every cell;
* every scenario crosses all of its phase boundaries (the obs phase
  counter equals the schedule's phase count);
* the adaptive controller beats the learned-eviction baselines
  (range-lecar, range-cacheus) on simulated I/O per op in more
  scenarios than it loses.  (At this scaled-down fleet geometry the
  plain block cache wins most scenarios outright — 1 KB logical values
  make range-cache entries ~250x the footprint of a cached block, so
  small budgets favour blocks; the honest matrix reports that.)
"""

from __future__ import annotations

import pytest

from common import print_banner, scaled
from repro.workloads.atlas import AtlasConfig, run_atlas
from repro.workloads.scenarios import build_scenario

CONFIG = AtlasConfig(
    strategies=("adcache", "range-lecar", "range-cacheus", "block"),
    seed=0,
    num_keys=3000,
    tenants=4,
    phase_ops=max(200, scaled(800)),
    arrival_rate_ops_s=2000.0,
    num_shards=2,
    cache_kb=256,
    window_size=250,
    rebalance_every=1000,
    double_run=True,
)


@pytest.mark.slow
def test_atlas_matrix(run_once):
    result = run_once(run_atlas, CONFIG)

    print_banner(
        f"Scenario atlas — {len(CONFIG.scenarios)} scenarios x "
        f"{len(CONFIG.strategies)} strategies, seed {CONFIG.seed}, "
        f"double-run fingerprint gate"
    )
    print(result.to_markdown())

    # Every cell reproduced bit for bit and conserved its requests.
    assert result.deterministic, [
        (c.scenario, c.strategy) for c in result.failures()
    ]
    params = CONFIG.scenario_params()
    for cell in result.cells:
        assert cell.issued == cell.completed + cell.rejected
        schedule = build_scenario(cell.scenario, params)
        assert cell.phase_transitions == len(schedule.phases)
        assert cell.issued >= 0.9 * schedule.total_ops

    # One winner per scenario.
    assert sum(result.wins.values()) == len(CONFIG.scenarios)

    # Head-to-head against the learned baselines, adcache wins more
    # scenarios than it loses on simulated I/O per op.
    io = {(c.scenario, c.strategy): c.io_per_op for c in result.cells}
    wins = losses = 0
    for scenario in CONFIG.scenarios:
        for baseline in ("range-lecar", "range-cacheus"):
            if io[(scenario, "adcache")] < io[(scenario, baseline)]:
                wins += 1
            elif io[(scenario, "adcache")] > io[(scenario, baseline)]:
                losses += 1
    print(f"adcache vs learned baselines: {wins} wins, {losses} losses")
    assert wins > losses
