"""Serving-scale experiment: throughput and tail latency under sharding.

Sweeps the multi-tenant serving simulator across client counts and
shard counts, comparing the full AdCache engine against the static
block-cache baseline in every cell.  Each cell is one deterministic
discrete-event run: open-loop clients issue a balanced workload into
bounded per-shard queues, the global arbiter re-splits the fleet cache
budget at window boundaries, and per-request latency (queue wait +
metered service time) folds into log-bucketed histograms.

The claims under test:

* the simulator conserves requests at every scale (issued = completed
  + shed, per tenant and globally),
* adding shards increases delivered throughput for a fixed client
  count (more servers drain the same offered load faster), and
* AdCache's adaptive split beats the static block cache on p99 in at
  least one swept configuration — tail latency is where cache misses
  hurt, because a miss inflates service time and everything queued
  behind it.
"""

from __future__ import annotations

from common import BENCH_WINDOW, NUM_KEYS, print_banner, scaled
from repro.bench.report import format_table
from repro.serve import ServeConfig, run_serve

CLIENT_COUNTS = [4, 8, 16]
SHARD_COUNTS = [2, 4]
STRATEGIES = ["block", "adcache"]
CACHE_BYTES = 256 * 1024
OPS = scaled(6_000)


def run_cell(strategy: str, clients: int, shards: int):
    config = ServeConfig(
        strategy=strategy,
        num_clients=clients,
        num_shards=shards,
        total_ops=OPS,
        num_keys=NUM_KEYS,
        cache_bytes=CACHE_BYTES,
        window_size=BENCH_WINDOW,
        seed=0,
        keep_trace=False,
    )
    return run_serve(config)


def run_experiment():
    results = {}
    for clients in CLIENT_COUNTS:
        for shards in SHARD_COUNTS:
            for strategy in STRATEGIES:
                results[(clients, shards, strategy)] = run_cell(
                    strategy, clients, shards
                )
    return results


def test_serve_scalability(run_once):
    results = run_once(run_experiment)

    print_banner(
        f"Serving scalability — {OPS:,} ops, {CACHE_BYTES // 1024} KB fleet "
        f"budget, clients x shards, AdCache vs static block cache"
    )
    rows = []
    for (clients, shards, strategy), r in sorted(results.items()):
        rows.append(
            [
                str(clients),
                str(shards),
                strategy,
                f"{r.throughput_qps:,.0f}",
                f"{r.latency.p50:,.0f}",
                f"{r.latency.p99:,.0f}",
                f"{r.rejected:,}",
            ]
        )
    print(
        format_table(
            ["clients", "shards", "strategy", "qps", "p50 us", "p99 us", "shed"],
            rows,
        )
    )

    # Conservation holds in every cell at every scale.
    for r in results.values():
        assert r.issued == OPS
        assert r.completed + r.rejected == r.issued
        assert all(t.completed + t.rejected == t.issued for t in r.tenants)
        assert r.latency.count == r.completed

    # More shards -> more delivered throughput for a fixed client count.
    for clients in CLIENT_COUNTS:
        for strategy in STRATEGIES:
            few = results[(clients, SHARD_COUNTS[0], strategy)]
            many = results[(clients, SHARD_COUNTS[-1], strategy)]
            assert many.throughput_qps > few.throughput_qps

    # AdCache's adaptive split wins the tail in at least one configuration.
    adcache_wins = [
        (clients, shards)
        for clients in CLIENT_COUNTS
        for shards in SHARD_COUNTS
        if results[(clients, shards, "adcache")].latency.p99
        <= results[(clients, shards, "block")].latency.p99
    ]
    print(f"adcache p99 <= block p99 in {len(adcache_wins)}/6 cells: {adcache_wins}")
    assert adcache_wins
