"""Figure 9: hit rate vs workload skewness.

The paper's setup: 50% updates, equal parts point lookups and short
scans, Zipfian skew swept (their axis reaches 1.2).  Expected shapes:

* most schemes improve with skew (stronger locality);
* KV Cache stays low and flat (blind to scans);
* the range-cache family overtakes the block cache at high skew (block
  caches waste space on cold keys sharing blocks with hot ones);
* AdCache is best-or-tied across the sweep.
"""

from __future__ import annotations

from common import MAIN_STRATEGIES, NUM_KEYS, display, measure, print_banner, scaled
from repro.bench.report import format_series
from repro.workloads.generator import WorkloadSpec

CACHE = 512 * 1024
SKEWS = [0.6, 0.8, 0.9, 1.0, 1.2, 1.3]
NUM_OPS = scaled(4000)
WARMUP = scaled(4000)


def spec_for(skew: float) -> WorkloadSpec:
    return WorkloadSpec(
        num_keys=NUM_KEYS,
        get_ratio=0.25,
        short_scan_ratio=0.25,
        write_ratio=0.5,
        point_skew=skew,
        scan_skew=skew,
        name=f"skew_{skew}",
    )


def run_experiment():
    grid = {}
    for skew in SKEWS:
        spec = spec_for(skew)
        for strategy in MAIN_STRATEGIES:
            grid[(skew, strategy)] = measure(
                strategy, spec, CACHE, NUM_OPS, WARMUP, seed=5
            )
    return grid


def test_fig09_skewness(run_once):
    grid = run_once(run_experiment)
    print_banner("Figure 9 — hit rate vs Zipfian skewness")
    series = {
        display(s): [grid[(skew, s)].hit_rate for skew in SKEWS]
        for s in MAIN_STRATEGIES
    }
    print(format_series("Figure 9", "skew", SKEWS, series))

    def hit(skew, strategy):
        return grid[(skew, strategy)].hit_rate

    # Locality helps: every scheme that can cache scans improves from
    # the flattest to the most skewed setting.
    top = SKEWS[-1]
    for strategy in ("block", "range", "adcache"):
        assert hit(top, strategy) > hit(0.6, strategy)

    # KV cache is low and comparatively flat (cannot absorb scans).
    kv_span = max(hit(s, "kv") for s in SKEWS) - min(hit(s, "kv") for s in SKEWS)
    assert max(hit(s, "kv") for s in SKEWS) < 0.35
    assert kv_span < 0.25

    # The block cache's edge erodes with skew (it wastes memory on cold
    # keys sharing blocks with hot ones) until result caching overtakes
    # it at the skewed end — the paper's crossover.
    gap_low = hit(0.6, "block") - hit(0.6, "range")
    gap_high = hit(1.2, "block") - hit(1.2, "range")
    assert gap_high < gap_low / 3
    assert hit(top, "range") >= hit(top, "block") - 0.01

    # AdCache stays within reach of the best scheme at every skew.
    for skew in SKEWS:
        best = max(hit(skew, s) for s in MAIN_STRATEGIES)
        assert hit(skew, "adcache") >= best - 0.15

    ad = grid[(top, "adcache")]
    block = grid[(top, "block")]
    print(
        f"\nHeadline (paper: +12% hit rate, -34.3% SST reads at high skew): "
        f"gain = {(ad.hit_rate - block.hit_rate) * 100:.1f} pts, "
        f"SST-read cut = {(1 - ad.sst_reads / max(1, block.sst_reads)) * 100:.1f}%"
    )
