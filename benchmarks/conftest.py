"""Benchmark-suite fixtures.

Each experiment executes once inside ``benchmark.pedantic`` (these are
system experiments, not microbenchmarks — a single deterministic round
is the measurement) and prints the regenerated table/figure to stdout.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
