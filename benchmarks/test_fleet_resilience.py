"""Availability experiment: the serving fleet under shard crashes.

Kills two of four shard executors mid-run (seeded fleet fault plan) and
measures what the resilience layer preserves, against a fault-free run
of the identical configuration:

* **durability** — zero acknowledged writes lost: every write was
  WAL-shipped to the shard's passive replica before the ack, and
  promotion replays the backlog through the engine's crash-recovery
  path;
* **correctness** — every scan completes exact or *explicitly* partial
  (counted in ``scans_partial``), never silently wrong;
* **availability** — the owner tenant's p99 stays within a small
  multiple of the fault-free p99: crashes cost milliseconds of failover,
  not the run; and
* **reproducibility** — the whole chaos scenario is byte-identical
  across same-seed runs, failover timing included.

Marked ``slow``: this is the long-form harness behind the CI
``chaos-serve-smoke`` job (which runs it at reduced scale via
``REPRO_BENCH_SCALE``).
"""

from __future__ import annotations

import pytest

from common import BENCH_WINDOW, print_banner, scaled
from repro.bench.report import format_table
from repro.faults.fleet import FleetFaultConfig
from repro.serve import ResilienceConfig, ServeConfig, run_serve

NUM_KEYS = 2_000
CACHE_BYTES = 256 * 1024
OPS = scaled(8_000)
CLIENTS = 4
SHARDS = 4
CRASHES = 2
SEED = 11

#: Owner-tenant p99 under chaos must stay within this multiple of the
#: fault-free p99.  Failover parks one shard for a few simulated ms, so
#: some queueing spill is expected; an unbounded tail is the regression
#: this harness exists to catch.
P99_BOUND = 4.0


def fleet_config(with_faults: bool) -> ServeConfig:
    resilience = None
    if with_faults:
        resilience = ResilienceConfig(
            fleet_faults=FleetFaultConfig(
                crashes=CRASHES,
                earliest_us=50_000.0,
                latest_us=400_000.0,
                seed=SEED,
            ),
            hedge_quantile=0.95,
        )
    return ServeConfig(
        num_clients=CLIENTS,
        num_shards=SHARDS,
        total_ops=OPS,
        num_keys=NUM_KEYS,
        cache_bytes=CACHE_BYTES,
        window_size=BENCH_WINDOW,
        queue_depth=32,
        seed=SEED,
        keep_trace=False,
        resilience=resilience,
    )


def run_experiment():
    baseline = run_serve(fleet_config(with_faults=False))
    chaos_a = run_serve(fleet_config(with_faults=True))
    chaos_b = run_serve(fleet_config(with_faults=True))
    return baseline, chaos_a, chaos_b


@pytest.mark.slow
def test_fleet_resilience(run_once):
    baseline, chaos, rerun = run_once(run_experiment)

    print_banner(
        f"Fleet resilience — {OPS:,} ops, {SHARDS} shards, {CRASHES} "
        f"crashes mid-run, WAL-shipped replicas, hedged reads @ p95"
    )
    rows = []
    for label, r in (("fault-free", baseline), ("chaos", chaos)):
        rows.append(
            [
                label,
                f"{r.completed:,}",
                f"{r.rejected:,}",
                f"{r.latency.p50:,.0f}",
                f"{r.latency.p99:,.0f}",
                str(r.crashes),
                str(r.promotions),
                str(r.scans_partial),
                f"{r.hedge_wins}/{r.hedges}",
            ]
        )
    print(
        format_table(
            ["run", "done", "shed", "p50 us", "p99 us", "crashes",
             "promoted", "partial", "hedge w/i"],
            rows,
        )
    )
    for shard in chaos.shards:
        if shard.crashed:
            print(
                f"shard {shard.shard_id}: failover "
                f"{shard.failover_us / 1000.0:.2f} ms "
                f"({shard.wal_replayed} WAL records replayed)"
            )
    sheds = " ".join(
        f"{k}={v}" for k, v in sorted(chaos.shed_by_reason.items())
    )
    print(f"chaos sheds: {sheds}")

    # Reproducibility: the disaster is byte-identical under its seed.
    assert chaos.fingerprint() == rerun.fingerprint()
    assert chaos.breaker_log == rerun.breaker_log

    # The planned crashes all happened and every one promoted a replica.
    assert chaos.crashes == CRASHES
    assert chaos.promotions == CRASHES
    assert all(s.promoted for s in chaos.shards if s.crashed)

    # Durability: every acknowledged write reads back from the fleet.
    assert chaos.acked_writes_checked > 0
    assert chaos.lost_acked_writes == 0

    # Correctness: conservation holds; scans are exact or counted partial.
    assert chaos.issued == chaos.completed + chaos.rejected
    assert all(t.completed + t.rejected == t.issued for t in chaos.tenants)
    assert chaos.scans_partial > 0  # dead-shard scatter-gather happened
    assert chaos.scans_partial <= chaos.completed

    # The fault-free sibling run saw none of this.
    assert baseline.crashes == 0
    assert baseline.scans_partial == 0
    assert not baseline.config.resilience_active

    # Availability: the owner tenant's tail survives the failover.
    owner_chaos = chaos.tenants[0].latency.p99
    owner_base = baseline.tenants[0].latency.p99
    assert owner_chaos <= P99_BOUND * owner_base, (
        f"owner p99 exploded under chaos: {owner_chaos:,.0f} us vs "
        f"{owner_base:,.0f} us fault-free (bound {P99_BOUND}x)"
    )
