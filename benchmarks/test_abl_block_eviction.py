"""Ablation: block-cache eviction policy (LRU vs CLOCK vs ARC).

RocksDB offers both LRU and Clock caches; ARC underlies AC-Key's
adaptive design.  This ablation swaps the block cache's policy under a
mixed workload with scan pollution to show why the paper's contribution
targets *structure and admission* rather than eviction alone: the
spread between eviction policies is small next to the block-vs-range
and admission effects.
"""

from __future__ import annotations

from common import NUM_KEYS, fresh_options, print_banner, scaled
from repro.bench.harness import run_workload, seed_database
from repro.bench.report import format_table
from repro.cache.arc import ARCPolicy
from repro.cache.block_cache import BlockCache
from repro.cache.clock import ClockPolicy
from repro.cache.lru import LRUPolicy
from repro.core.engine import KVEngine
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

CACHE = 512 * 1024

POLICIES = {
    "LRU": LRUPolicy,
    "CLOCK": ClockPolicy,
    "ARC": lambda: ARCPolicy(capacity_hint=CACHE // 4096),
}


def run_experiment():
    spec = WorkloadSpec(
        num_keys=NUM_KEYS,
        get_ratio=0.5,
        short_scan_ratio=0.3,
        long_scan_ratio=0.2,
        name="mixed_scan_pollution",
    )
    results = {}
    for name, factory in POLICIES.items():
        opts = fresh_options()
        tree = seed_database(NUM_KEYS, opts, seed=7)
        cache = BlockCache(
            CACHE, opts.block_size, tree.disk.read_block, policy_factory=factory
        )
        engine = KVEngine(tree, block_cache=cache)
        generator = WorkloadGenerator(spec, seed=105)
        results[name] = run_workload(
            engine, generator, num_ops=scaled(4000), warmup_ops=scaled(4000),
            name=name,
        )
    return results


def test_abl_block_eviction(run_once):
    results = run_once(run_experiment)
    print_banner("Ablation — block-cache eviction policy under scan pollution")
    rows = [
        [name, f"{r.hit_rate:.3f}", f"{r.sst_reads:,}"]
        for name, r in results.items()
    ]
    print(format_table(["policy", "hit rate", "SST reads"], rows))

    hits = {name: r.hit_rate for name, r in results.items()}
    # All policies function correctly and land in a plausible band...
    for name, h in hits.items():
        assert 0.0 < h < 1.0, name
    # ...and the spread among eviction policies is small compared to
    # the structural effects the paper targets (tens of points).
    assert max(hits.values()) - min(hits.values()) < 0.10
