"""Figure 8 + Table 4: the dynamic workload A -> B -> C -> D -> E -> F.

Each phase's operation mix comes from Table 3.  All six schemes run the
same phase sequence with state carried across phases; per-phase hit
rate and simulated QPS are printed (Figure 8) and ranked (Table 4).

Shape checks: AdCache's average rank for both throughput and hit rate
is the best of the lineup (the paper reports 1.3/1.3 averages), and
RocksDB's block cache ranks well in the read phases while result
caching takes over under write pressure.
"""

from __future__ import annotations

from common import MAIN_STRATEGIES, NUM_KEYS, build, print_banner, scaled
from repro.bench.harness import run_phases
from repro.bench.report import format_table, ranking_table
from repro.workloads.dynamic import dynamic_phase_specs

CACHE = 512 * 1024
OPS_PER_PHASE = scaled(6000)


def run_experiment():
    phases = dynamic_phase_specs(NUM_KEYS)
    phase_results = {name: {} for name, _ in phases}
    for strategy in MAIN_STRATEGIES:
        engine = build(strategy, CACHE, seed=3)
        results = run_phases(engine, phases, ops_per_phase=OPS_PER_PHASE, seed=9)
        for result in results:
            phase_results[result.name][strategy] = result
    return phase_results


def test_fig08_dynamic_workloads(run_once):
    phase_results = run_once(run_experiment)

    print_banner("Figure 8 — hit rate and throughput across phases A-F")
    rows = []
    for phase, per_strategy in phase_results.items():
        for strategy in MAIN_STRATEGIES:
            r = per_strategy[strategy]
            rows.append(
                [phase, strategy, f"{r.hit_rate:.3f}", f"{r.qps:,.0f}", str(r.sst_reads)]
            )
    print(format_table(["phase", "strategy", "hit rate", "QPS", "SST reads"], rows))

    print_banner("Table 4 — rankings (throughput/hit rate), lower is better")
    table, averages = ranking_table(phase_results)
    print(table)

    # AdCache: top-two average rank on both axes across the sequence.
    # (The paper reports 1.3/1.3; in this simulator scan-seek economics
    # keep the block cache ahead even in the write phases — see
    # EXPERIMENTS.md — so AdCache's adaptation shows as tracking the
    # per-phase winner rather than overtaking it.)
    ad_qps_rank, ad_hit_rank = averages["adcache"]
    assert ad_qps_rank <= 2.01, averages
    assert ad_hit_rank <= 2.01, averages
    # It dominates every result-cache baseline on both axes.
    for strategy in ("kv", "range", "range-lecar", "range-cacheus"):
        qps_rank, hit_rank = averages[strategy]
        assert ad_qps_rank < qps_rank and ad_hit_rank < hit_rank, strategy

    # Adaptivity: AdCache stays within a small margin of the best
    # static scheme's hit rate in every phase, and essentially matches
    # it once converged (phases C-F follow two phases of learning).
    for phase, per_strategy in phase_results.items():
        best = max(r.hit_rate for r in per_strategy.values())
        assert per_strategy["adcache"].hit_rate >= best - 0.10, phase
    for phase in ("C", "D", "E", "F"):
        per_strategy = phase_results[phase]
        best = max(r.hit_rate for r in per_strategy.values())
        assert per_strategy["adcache"].hit_rate >= best - 0.03, phase

    # Dynamic-workload headline: average AdCache throughput vs block.
    import numpy as np

    ad_qps = np.mean([phase_results[p]["adcache"].qps for p in phase_results])
    block_qps = np.mean([phase_results[p]["block"].qps for p in phase_results])
    print(
        f"\nHeadline (paper: ~12% average throughput gain): "
        f"AdCache/block average QPS ratio = {ad_qps / block_qps:.2f}"
    )
