"""Shared configuration and helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures at
simulator scale.  The scaled-down geometry keeps the paper's *ratios*
(cache:database size, entries per block, level shape) while shrinking
absolute sizes so the whole suite runs on a laptop:

* database: ``NUM_KEYS`` keys of 24 B + 1000 B logical entries,
* LSM: 4-entry blocks, 64-entry SSTables, size ratio 10, L0 triggers
  4/4/8 — the paper's configuration with smaller files,
* cache sizes swept as a fraction of the database footprint, matching
  the spirit of the paper's 100 GB / tens-of-GB sweep.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.3``) to shrink operation counts for
a quick pass; results get noisier but shapes survive.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.harness import RunResult, run_workload, seed_database
from repro.bench.strategies import DISPLAY_NAMES, build_engine
from repro.core.config import AdCacheConfig
from repro.lsm.options import LSMOptions
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

#: Operation-count multiplier from the environment (default full scale).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Keys in the benchmark database (logical footprint ~4 MB).
NUM_KEYS = 4000

#: LSM geometry: paper configuration, laptop-sized files.
BENCH_OPTS = dict(memtable_entries=32, entries_per_sstable=64)

#: Cache budgets swept in Figure 7 (fractions of the DB footprint).
CACHE_SIZES = {
    "3%": 128 * 1024,
    "6%": 256 * 1024,
    "12%": 512 * 1024,
    "25%": 1024 * 1024,
}

#: The six schemes of Section 5.1, in the paper's presentation order.
MAIN_STRATEGIES = ["block", "kv", "range", "range-lecar", "range-cacheus", "adcache"]

#: Controller cadence for benchmark-scale runs (see AdCacheConfig docs).
BENCH_WINDOW = 250


def scaled(ops: int) -> int:
    """Apply the REPRO_BENCH_SCALE multiplier with a sane floor."""
    return max(500, int(ops * SCALE))


def fresh_options() -> LSMOptions:
    """A new LSMOptions with the benchmark geometry."""
    return LSMOptions(**BENCH_OPTS)


def bench_config(cache_bytes: int, seed: int = 0, **overrides) -> AdCacheConfig:
    """AdCache configuration used across benchmarks."""
    kwargs = dict(
        total_cache_bytes=cache_bytes,
        window_size=BENCH_WINDOW,
        hidden_dim=64,
        seed=seed,
    )
    kwargs.update(overrides)
    return AdCacheConfig(**kwargs)


def build(strategy: str, cache_bytes: int, seed: int = 0, num_keys: int = NUM_KEYS):
    """Fresh seeded tree + engine for one strategy."""
    tree = seed_database(num_keys, fresh_options(), seed=7)
    if strategy.startswith("adcache"):
        from repro.core.adcache import AdCacheEngine

        flags = dict(
            enable_partitioning="admission" not in strategy,
            enable_admission="partition" not in strategy,
        )
        if strategy == "adcache-pretrained":
            return build_engine(strategy, tree, cache_bytes, seed=seed)
        return AdCacheEngine(tree, bench_config(cache_bytes, seed=seed, **flags))
    return build_engine(strategy, tree, cache_bytes, seed=seed)


def measure(
    strategy: str,
    spec: WorkloadSpec,
    cache_bytes: int,
    num_ops: int,
    warmup_ops: int,
    seed: int = 0,
) -> RunResult:
    """One (strategy, workload, cache size) cell."""
    engine = build(strategy, cache_bytes, seed=seed)
    generator = WorkloadGenerator(spec, seed=seed + 100)
    return run_workload(
        engine,
        generator,
        num_ops=num_ops,
        warmup_ops=warmup_ops,
        name=f"{strategy}/{spec.name}",
    )


def display(strategy: str) -> str:
    """Paper legend name for a strategy key."""
    return DISPLAY_NAMES.get(strategy, strategy)


def print_banner(title: str) -> None:
    """Header separating benchmark outputs in the console."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
