"""Ablation: compaction-invalidation countermeasures for block caches.

Two design points the paper discusses around its motivation:

* **Leaper-style prefetch** — repopulate the cache with the output
  blocks covering previously-hot ranges after each compaction;
* **active purge** — drop dead blocks eagerly instead of letting them
  age out (RocksDB lets them decay; purging frees budget sooner).

Both are measured against the plain block cache on a hot-read +
update-churn workload, alongside the range cache (which needs neither —
the paper's structural answer to the same problem).
"""

from __future__ import annotations

from common import fresh_options, print_banner, scaled
from repro.bench.harness import seed_database
from repro.bench.report import format_table
from repro.cache.block_cache import BlockCache
from repro.cache.prefetcher import CompactionPrefetcher
from repro.cache.range_cache import RangeCache
from repro.core.engine import KVEngine
from repro.workloads.keys import key_of, value_of

NUM_KEYS = 2000
CACHE = 64 * 4096
#: 100 hot keys spanning ~50 blocks — comfortably inside the cache.
HOT = [key_of(i) for i in range(0, 200, 2)]
#: Update churn over a range overlapping the hot set, so compactions
#: rewrite the hot files without touching most of the key space.
CHURN_SPAN = 400
CHURN = scaled(800)


def build_block_engine(mode: str):
    opts = fresh_options()
    tree = seed_database(NUM_KEYS, opts, seed=7)
    cache = BlockCache(CACHE, opts.block_size, tree.disk.read_block)
    engine = KVEngine(tree, block_cache=cache)
    if mode == "prefetch":
        CompactionPrefetcher.attach(tree, cache)
    elif mode == "purge":
        tree.add_compaction_listener(
            lambda event: [cache.purge_sst(sst) for sst in event.input_sst_ids]
        )
    return engine


def hot_misses_after_churn(engine) -> int:
    for _ in range(3):
        for key in HOT:
            engine.get(key)
    for i in range(CHURN):
        engine.put(key_of(i % CHURN_SPAN), value_of(i % CHURN_SPAN, 1))
    before = engine.tree.disk.block_reads_total
    for key in HOT:
        engine.get(key)
    return engine.tree.disk.block_reads_total - before


def run_experiment():
    results = {}
    for mode in ("plain", "purge", "prefetch"):
        results[f"block/{mode}"] = hot_misses_after_churn(build_block_engine(mode))
    # The structural alternative: a result cache, immune by design.
    opts = fresh_options()
    tree = seed_database(NUM_KEYS, opts, seed=7)
    engine = KVEngine(tree, range_cache=RangeCache(CACHE, entry_charge=1024))
    results["range cache"] = hot_misses_after_churn(engine)
    return results


def test_abl_prefetch_purge(run_once):
    results = run_once(run_experiment)
    print_banner("Ablation — surviving compaction invalidation (hot re-read misses)")
    print(
        format_table(
            ["configuration", "disk reads re-fetching hot set"],
            [[name, str(v)] for name, v in results.items()],
        )
    )
    # Prefetching recovers a large share of the invalidated hot set.
    assert results["block/prefetch"] < results["block/plain"]
    # The result cache needs no countermeasure at all.
    assert results["range cache"] == 0
    # Purging helps at most marginally (it frees budget but cannot
    # restore the lost blocks) — it must not *hurt* materially.
    assert results["block/purge"] <= results["block/plain"] * 1.25
