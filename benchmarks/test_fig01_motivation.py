"""Figure 1: no single static caching strategy wins everywhere.

The motivation figure contrasts block-based and result-based caching
across workload patterns: block caching wins read-mostly short-scan
traffic, result caching wins update-heavy point traffic (compaction
invalidation).  This bench reproduces the crossover with the two pure
strategies on the two patterns.
"""

from __future__ import annotations

from common import NUM_KEYS, measure, print_banner, scaled
from repro.bench.report import format_table
from repro.workloads.generator import WorkloadSpec

CACHE = 512 * 1024

PATTERNS = {
    "read-heavy short scans": WorkloadSpec(
        num_keys=NUM_KEYS, get_ratio=0.3, short_scan_ratio=0.65, write_ratio=0.05,
        name="read_scan",
    ),
    "update-heavy point lookups": WorkloadSpec(
        num_keys=NUM_KEYS, get_ratio=0.5, write_ratio=0.5, name="update_point"
    ),
}


def run_experiment():
    results = {}
    for pattern, spec in PATTERNS.items():
        for strategy in ("block", "range"):
            res = measure(
                strategy, spec, CACHE, num_ops=scaled(4000), warmup_ops=scaled(3000)
            )
            results[(pattern, strategy)] = res
    return results


def test_fig01_motivation(run_once):
    results = run_once(run_experiment)
    print_banner("Figure 1 — block vs result caching across workload patterns")
    rows = []
    for pattern in PATTERNS:
        block = results[(pattern, "block")]
        range_ = results[(pattern, "range")]
        winner = "block" if block.hit_rate > range_.hit_rate else "range"
        rows.append(
            [
                pattern,
                f"{block.hit_rate:.3f}",
                f"{range_.hit_rate:.3f}",
                winner,
            ]
        )
    print(format_table(["pattern", "block cache", "range cache", "winner"], rows))

    # The crossover is the motivation: each strategy wins one pattern.
    assert (
        results[("read-heavy short scans", "block")].hit_rate
        > results[("read-heavy short scans", "range")].hit_rate
    )
    assert (
        results[("update-heavy point lookups", "range")].hit_rate
        > results[("update-heavy point lookups", "block")].hit_rate
    )
